"""Benchmark fixtures: experiment registry + report printing.

Each benchmark builds an :class:`~repro.bench.harness.Experiment`,
fills in measurements (simulated cycles, counts, ratios), asserts the
paper's qualitative shape, and registers the experiment through the
``report`` fixture. After the run, every registered report is printed
in the terminal summary — the regenerated "tables and figures".
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import Experiment

_REPORTS: List[Experiment] = []


@pytest.fixture
def report():
    """Register an Experiment for the end-of-run summary."""

    def _register(experiment: Experiment) -> Experiment:
        _REPORTS.append(experiment)
        return experiment

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for experiment in _REPORTS:
        terminalreporter.write_line("")
        for line in experiment.report().splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
