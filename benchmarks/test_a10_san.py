"""A10 — repro.sanitize: arming the sanitizer is invisible to the clock.

Not a paper experiment: this guards the repo's own sanitize plane. The
race detector and heap sanitizer observe every load/store on public
segments, every sync edge, and every shmalloc call — and must charge
**zero** simulated cycles for it. Both the disarmed and the armed run
of the E2 module fanout must hit the A7/A8/A9/E10/E11 cycle pin
*exactly*; the per-category breakdown may not move either. The armed
host-side overhead (the real price of shadow memory) is recorded in
``BENCH_A10_SAN.json`` so successive runs leave a trajectory, along
with a corpus soak verifying reports are replay-stable.
"""

from __future__ import annotations

import time

from repro import boot
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.sanitize import cancel_sanitize, request_sanitize
from repro.sanitize.corpus import case_named

WIDTH = 12
USED = 12

#: The pin shared with A7/A8/A9/E10/E11: the exact simulated cycle
#: count of the module fanout. The sanitizer — disarmed *or armed* —
#: may not move it by a single cycle (it never charges the clock).
VOLATILE_FANOUT_CYCLES = 2_603_166


def run_fanout(armed: bool):
    """The E2 fanout, with or without the sanitizer watching."""
    sanitizer = request_sanitize() if armed else None
    try:
        system = boot()
        kernel = system.kernel
        shell = make_shell(kernel)
        wall_start = time.perf_counter()
        graph = build_module_fanout(kernel, shell, width=WIDTH,
                                    used=USED,
                                    module_dir="/shared/fan")
        proc = kernel.create_machine_process("p", graph.executable)
        code = kernel.run_until_exit(proc)
        wall = time.perf_counter() - wall_start
    finally:
        if armed:
            cancel_sanitize()
    assert code == fanout_expected_exit(USED)
    if sanitizer is not None:
        assert sanitizer.report.clean, sanitizer.report.render()
    return wall, kernel.clock.cycles, dict(kernel.clock.by_category)


def run_corpus_soak():
    """One seeded race case, twice: reports must be byte-identical."""
    case = case_named("counter-unsync")
    wall_start = time.perf_counter()
    first = case.run()
    second = case.run()
    wall = time.perf_counter() - wall_start
    return wall, first, second


def test_a10_sanitizer_is_cycle_neutral(report, benchmark):
    def run():
        off = run_fanout(armed=False)
        on = run_fanout(armed=True)
        soak = run_corpus_soak()
        return off, on, soak

    off, on, soak = benchmark.pedantic(run, rounds=1, iterations=1)
    wall_off, cycles_off, categories_off = off
    wall_on, cycles_on, categories_on = on
    soak_wall, first, second = soak

    experiment = Experiment(
        "A10_SAN",
        f"armed sanitizer over a {WIDTH}-module fanout",
        "the sanitize plane is pay-for-use: shadow memory, locksets, "
        "and vector clocks all live on the host; armed and disarmed "
        "runs are cycle-for-cycle identical and race reports replay "
        "byte-identically per seed",
    )
    experiment.add("simulated cycles (disarmed)", cycles_off,
                   detail=f"the shared pin: {VOLATILE_FANOUT_CYCLES}")
    experiment.add("simulated cycles (armed)", cycles_on)
    experiment.add("cycle delta", cycles_on - cycles_off,
                   detail="must be exactly zero")
    experiment.add("armed host overhead",
                   round(wall_on / wall_off, 2)
                   if wall_off > 0 else 0, unit="x",
                   detail="host wall-clock ratio, armed / disarmed")
    experiment.add("soak races found", len(first.races),
                   detail="counter-unsync seeded corpus case")
    experiment.add("soak replay-stable",
                   1 if first.render() == second.render() else 0,
                   unit="ok")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "fanout_disarmed": wall_off,
        "fanout_armed": wall_on,
        "corpus_soak": soak_wall,
    })

    # The tentpole guarantee, both directions of the pin.
    assert cycles_off == VOLATILE_FANOUT_CYCLES
    assert cycles_on == VOLATILE_FANOUT_CYCLES
    assert categories_on == categories_off
    # The seeded case fires, deterministically.
    assert first.races
    assert first.render() == second.render()
