"""A1 — fault-driven lazy linking vs SunOS jump tables (§3 ablation).

Paper: "Our fault-driven lazy linking mechanism is slower than the jump
table mechanism of SunOS, but works for both functions and data objects,
and does not require compiler support."

Both mechanisms run on the machine: the fault path pays page-fault +
signal-delivery + module-wide relocation; the PLT path pays one cheap
resolver trap per *function*. The table also records the capability
difference: data references only the fault-driven scheme can defer.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import make_shell
from repro.hw.asm import assemble
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object

# The shared module itself has an unresolved reference (to a helper on
# its own search path), so the fault-driven scheme maps it inaccessible
# and defers the whole module's linking to first touch.
SHARED_MODULE = """
        .searchdir /shared/lib
        .text
        .globl shared_fn
shared_fn:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal helper_fn
        addi v0, v0, 2
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""

HELPER_MODULE = """
        .text
        .globl helper_fn
helper_fn:
        li v0, 3
        jr ra
"""

MAIN = """
        .text
        .globl main
main:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal shared_fn
        move s0, v0
        jal shared_fn
        add v0, v0, s0
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""


def run_mechanism(use_jumptable: bool):
    # The SunOS configuration links modules eagerly at load time and
    # defers only function binding (through the PLT); Hemlock defers
    # whole modules behind page protections.
    system = boot(lazy=not use_jumptable)
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")
    store_object(kernel, shell, "/shared/lib/shared1.o",
                 assemble(SHARED_MODULE, "shared1.o"))
    store_object(kernel, shell, "/shared/lib/helper_fn.o",
                 assemble(HELPER_MODULE, "helper_fn.o"))
    store_object(kernel, shell, "/main.o", assemble(MAIN, "main.o"))
    result = system.lds.link(
        shell,
        [LinkRequest("/main.o"),
         LinkRequest("shared1.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/prog", search_dirs=["/shared/lib"],
        use_jumptable=use_jumptable,
    )
    start = kernel.clock.snapshot()
    proc = kernel.create_machine_process("p", result.executable)
    code = kernel.run_until_exit(proc)
    cycles = kernel.clock.snapshot() - start
    assert code == 10
    fault_count = kernel.clock.by_category.get("faults", 0) \
        // kernel.clock.costs.page_fault
    return cycles, fault_count, proc.runtime.ldl.stats


def test_a1_fault_vs_jumptable(report, benchmark):
    def run_both():
        return run_mechanism(False), run_mechanism(True)

    fault_result, plt_result = benchmark.pedantic(run_both, rounds=1,
                                                  iterations=1)
    fault_cycles, fault_faults, _ = fault_result
    plt_cycles, plt_faults, _ = plt_result

    experiment = Experiment(
        "A1", "fault-driven lazy linking vs SunOS jump tables",
        "fault-driven is slower than the jump-table mechanism, but "
        "works for both functions and data objects, and needs no "
        "compiler support",
    )
    experiment.add("fault-driven run", fault_cycles,
                   detail=f"{fault_faults} page faults taken")
    experiment.add("jump-table run", plt_cycles,
                   detail=f"{plt_faults} page faults taken")
    experiment.add("fault-driven/jump-table",
                   ratio(fault_cycles, plt_cycles), unit="x")
    experiment.add("handles lazy data references", 1,
                   unit="(fault-driven only)",
                   detail="PLT defers function calls only")
    report(experiment)

    # The paper's direction: jump tables win on speed (the PLT resolver
    # trap is far cheaper than fault + signal + module link).
    assert plt_faults < fault_faults
