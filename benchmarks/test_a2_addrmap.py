"""A2 — address→file lookup: linear table vs B-tree (§3 ablation).

The 32-bit prototype uses a linear lookup table "for the sake of
simplicity"; the planned 64-bit system replaces it with a B-tree. The
sweep shows the crossover as the number of shared files grows — the
reason the linear table is fine at 1024 files and untenable when "the
shared file system includes all of secondary store".
"""

from __future__ import annotations

from repro.bench.harness import Experiment
from repro.sfs.addrmap import BTreeAddressMap, LinearAddressMap
from repro.sfs.sharedfs import SEGMENT_SPAN, SFS_BASE
from repro.util.rng import DeterministicRng

LOOKUPS = 200


def comparisons_for(map_factory, nfiles: int) -> int:
    amap = map_factory()
    amap.rebuild([
        (SFS_BASE + index * SEGMENT_SPAN, SEGMENT_SPAN, index)
        for index in range(nfiles)
    ])
    # rebuild() must reset the counter on BOTH implementations (it once
    # reset only the B-tree's), so the sweep measures translation cost
    # from a clean baseline.
    assert amap.comparisons == 0
    rng = DeterministicRng(42)
    for _ in range(LOOKUPS):
        index = rng.randint(0, nfiles - 1)
        hit = amap.lookup_address(SFS_BASE + index * SEGMENT_SPAN + 64)
        assert hit == (index, 64)
    return amap.comparisons


def test_a2_linear_vs_btree(report, benchmark):
    sizes = (16, 64, 256, 1024)

    def sweep():
        return {
            n: (comparisons_for(LinearAddressMap, n),
                comparisons_for(BTreeAddressMap, n))
            for n in sizes
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    experiment = Experiment(
        "A2", f"address→inode lookup: {LOOKUPS} translations",
        "linear table is simple and adequate for 1024 inodes; the "
        "64-bit design needs the B-tree",
    )
    for nfiles, (linear, btree) in series.items():
        experiment.add(f"{nfiles:4d} files, linear table", linear,
                       unit="comparisons")
        experiment.add(f"{nfiles:4d} files, B-tree", btree,
                       unit="comparisons")
    report(experiment)

    # Linear scales ~linearly with file count; the B-tree ~log.
    assert series[1024][0] > series[16][0] * 20
    assert series[1024][1] < series[16][1] * 6
    # At the prototype's own maximum the B-tree already wins big.
    assert series[1024][1] * 5 < series[1024][0]


def test_a2_maps_agree(report, benchmark):
    """Correctness guard for the sweep: both maps give identical
    translations over a randomized register/unregister workload."""

    def run():
        linear = LinearAddressMap()
        btree = BTreeAddressMap()
        rng = DeterministicRng(7)
        live = set()
        for _step in range(600):
            if live and rng.random() < 0.3:
                victim = rng.choice(sorted(live))
                live.discard(victim)
                linear.unregister(victim)
                btree.unregister(victim)
            else:
                index = rng.randint(0, 1023)
                if index in live:
                    continue
                live.add(index)
                base = SFS_BASE + index * SEGMENT_SPAN
                linear.register(base, SEGMENT_SPAN, index)
                btree.register(base, SEGMENT_SPAN, index)
            probe = SFS_BASE + rng.randint(0, 1023) * SEGMENT_SPAN \
                + rng.randint(0, SEGMENT_SPAN - 1)
            assert linear.lookup_address(probe) == \
                btree.lookup_address(probe)
        return len(live)

    live_count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert live_count > 0
