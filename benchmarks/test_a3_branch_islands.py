"""A3 — branch islands: the cost of the 26-bit jump limit (§3 ablation).

"lds and ldl arrange for over-long branches to be replaced with jumps to
new, nearby code fragments that load the appropriate target address into
a register and jump indirectly." The ablation measures the text-size and
dynamic-instruction overhead islands impose on cross-region calls,
against the (hypothetical) direct call an unlimited jump would allow.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell
from repro.hw.asm import assemble
from repro.linker.branch_islands import ISLAND_SIZE, insert_branch_islands
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object


def build_caller(ncalls: int) -> str:
    calls = "".join(
        f"        jal shared_fn_{index % 4}\n"
        f"        add s0, s0, v0\n"
        for index in range(ncalls)
    )
    return f"""
        .text
        .globl main
main:
        addi sp, sp, -8
        sw ra, 0(sp)
        move s0, zero
{calls}        move v0, s0
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""


SHARED = """
        .text
        .globl shared_fn_0
shared_fn_0:
        li v0, 1
        jr ra
        .globl shared_fn_1
shared_fn_1:
        li v0, 2
        jr ra
        .globl shared_fn_2
shared_fn_2:
        li v0, 3
        jr ra
        .globl shared_fn_3
shared_fn_3:
        li v0, 4
        jr ra
"""


def run_islands(ncalls: int):
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")
    store_object(kernel, shell, "/shared/lib/fns.o",
                 assemble(SHARED, "fns.o"))

    raw = assemble(build_caller(ncalls), "main.o")
    text_before = len(raw.text)
    islands = insert_branch_islands(
        raw.clone(),
        lambda s: s.startswith("shared_fn"),
    )

    store_object(kernel, shell, "/main.o", raw)
    result = system.lds.link(
        shell,
        [LinkRequest("/main.o"),
         LinkRequest("fns.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/prog", search_dirs=["/shared/lib"],
    )
    text_after = result.executable.layout["text"].size

    proc = kernel.create_machine_process("p", result.executable)
    code = kernel.run_until_exit(proc)
    expected = sum((index % 4) + 1 for index in range(ncalls))
    assert code == expected
    instructions = proc.cpu.instructions_executed
    # Each islanded call executes 3 extra instructions (lui/ori/jr).
    direct_estimate = instructions - 3 * ncalls
    return text_before, text_after, islands, instructions, \
        direct_estimate


def test_a3_branch_islands(report, benchmark):
    ncalls = 64
    results = benchmark.pedantic(run_islands, args=(ncalls,), rounds=1,
                                 iterations=1)
    text_before, text_after, islands, executed, direct = results

    experiment = Experiment(
        "A3", f"branch islands for {ncalls} cross-region calls",
        "26-bit jumps cannot reach the 1 GiB shared region; calls are "
        "routed through lui/ori/jr fragments",
    )
    experiment.add("islands inserted", islands, unit="islands")
    experiment.add("text before islands", text_before, unit="bytes")
    experiment.add("island text overhead", islands * ISLAND_SIZE,
                   unit="bytes")
    experiment.add("instructions executed (islands)", executed,
                   unit="instructions")
    experiment.add("estimated direct-call instructions", direct,
                   unit="instructions")
    experiment.add("per-call dynamic overhead", 3, unit="instructions",
                   detail="lui + ori + jr vs one jal")
    report(experiment)

    # Islands are deduplicated per (symbol, addend): 64 call sites to 4
    # distinct far symbols share 4 islands, not 64.
    assert islands == 4
    assert text_after >= text_before + islands * ISLAND_SIZE
    assert executed > direct
