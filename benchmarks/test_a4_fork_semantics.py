"""A4 — fork semantics (§5): private copied COW, public shared.

"The child process that results from a fork receives a copy of each
segment in the private portion of the parent's address space, and
shares the single copy of each segment in the public portion."
Also measures the COW economy: forking a large private image copies no
frames until someone writes.
"""

from __future__ import annotations

from repro import boot
from repro.apps.libsys import build_libsys
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.linker.segments import read_segment_meta
from repro.toyc import compile_source

PUBLIC_MODULE = "int pub_counter = 0;"

FORKER = """
extern int pub_counter;
int priv_counter = 0;
int main() {
    int child;
    child = fork();
    priv_counter = priv_counter + 1;
    pub_counter = pub_counter + 1;
    if (child == 0) { return priv_counter; }
    return priv_counter + 10;
}
"""


def run_fork():
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")
    store_object(kernel, shell, "/shared/lib/pub.o",
                 compile_source(PUBLIC_MODULE, "pub.o"))
    store_object(kernel, shell, "/main.o",
                 compile_source(FORKER, "main.o"))
    exe = system.lds.link(
        shell,
        [LinkRequest("/main.o"),
         LinkRequest("pub.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin", search_dirs=["/shared/lib"],
        archives=[build_libsys()],
    ).executable

    parent = kernel.create_machine_process("parent", exe)
    frames_before_fork = kernel.physmem.allocated
    kernel.schedule()
    child = [p for p in kernel.processes.values()
             if p.ppid == parent.pid][0]

    # Each side incremented its own private counter exactly once.
    meta, base, _len = read_segment_meta(kernel, shell,
                                         "/shared/lib/pub")
    pub_addr = meta.symbols["pub_counter"].value
    offset = pub_addr - base
    raw = kernel.vfs.read_whole("/shared/lib/pub")[offset: offset + 4]
    pub_value = int.from_bytes(raw, "little")
    return (parent.exit_code, child.exit_code, pub_value,
            frames_before_fork, kernel)


def test_a4_fork_semantics(report, benchmark):
    parent_code, child_code, pub_value, frames, kernel = \
        benchmark.pedantic(run_fork, rounds=1, iterations=1)

    experiment = Experiment(
        "A4", "fork: private copied (COW), public shared",
        "parent and child come out of fork with identical state; "
        "private data diverges, the single public copy accumulates "
        "both sides' writes",
    )
    experiment.add("parent exit (priv_counter + 10)", parent_code,
                   unit="value")
    experiment.add("child exit (its own priv_counter)", child_code,
                   unit="value")
    experiment.add("public counter after both", pub_value, unit="value")
    experiment.add("frames resident at fork", frames, unit="frames")
    report(experiment)

    # Private: each side saw exactly its own increment.
    assert parent_code == 11
    assert child_code == 1
    # Public: both increments landed in the one shared copy.
    assert pub_value == 2


def test_a4_cow_frame_economy(report, benchmark):
    """Fork copies page tables, not pages."""

    def run():
        system = boot()
        kernel = system.kernel
        shell = make_shell(kernel)
        # Build a big private footprint.
        shell.address_space.map(0x20000000, 2 << 20, prot=0x7)
        shell.address_space.write_bytes(0x20000000, b"q" * (2 << 20))
        before = kernel.physmem.allocated
        child_space = shell.address_space.fork("child")
        after_fork = kernel.physmem.allocated
        child_space.store_word(0x20000000, 1)
        after_write = kernel.physmem.allocated
        return before, after_fork, after_write

    before, after_fork, after_write = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    experiment = Experiment(
        "A4b", "copy-on-write economy across fork (2 MiB private)",
        "fork is cheap because pages copy lazily",
    )
    experiment.add("frames before fork", before, unit="frames")
    experiment.add("frames after fork", after_fork, unit="frames")
    experiment.add("frames after child's 1st write", after_write,
                   unit="frames")
    report(experiment)

    assert after_fork == before
    assert after_write == before + 1
