"""A5 — the 64-bit shared file system (§3/§6 future work, built).

The 32-bit prototype caps out at 1024 inodes of 1 MiB; the 64-bit
design gives every segment a per-inode address field in a vast region,
indexed by a B-tree. This bench pushes past the old limits and shows
translation cost staying logarithmic.
"""

from __future__ import annotations

import pytest

from repro import boot
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell
from repro.errors import FileLimitError
from repro.sfs.sharedfs import MAX_INODES
from repro.sfs.sfs64 import SharedFilesystem64
from repro.util.rng import DeterministicRng
from repro.vm.pages import PhysicalMemory

LOOKUPS = 300


def populate(nfiles: int) -> SharedFilesystem64:
    sfs = SharedFilesystem64(PhysicalMemory())
    for index in range(nfiles):
        sfs.create_file(sfs.root, f"seg{index}", uid=0)
    return sfs


def lookup_cost(sfs: SharedFilesystem64, nfiles: int) -> int:
    rng = DeterministicRng(5)
    inodes = [inode for inode in sfs.inodes() if inode.is_file]
    before = sfs.addrmap.comparisons
    for _ in range(LOOKUPS):
        inode = rng.choice(inodes)
        base = sfs.address_of_inode(inode.number)
        hit = sfs.inode_of_address(base + 16)
        assert hit is not None and hit[0] is inode
    return sfs.addrmap.comparisons - before


def test_a5_sfs64_scaling(report, benchmark):
    sizes = (256, 1024, 4096, 8192)

    def sweep():
        return {n: lookup_cost(populate(n), n) for n in sizes}

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    experiment = Experiment(
        "A5", f"64-bit SFS: {LOOKUPS} address translations",
        "the 64-bit system relaxes the 1024-inode / 1 MiB limits and "
        "replaces the linear table with a per-inode address field plus "
        "a B-tree",
    )
    for nfiles, comparisons in series.items():
        over = " (beyond the 32-bit cap)" if nfiles > MAX_INODES else ""
        experiment.add(f"{nfiles:5d} segments", comparisons,
                       unit="comparisons", detail=over.strip())
    report(experiment)

    # Logarithmic growth: 32x the files costs ~<2.5x the comparisons.
    assert series[8192] < series[256] * 3


def test_a5_limits_gone(report, benchmark):
    def run():
        # 32-bit prototype: the 1025th file fails.
        system32 = boot(wide_addresses=False)
        sfs32 = system32.kernel.sfs
        created32 = 0
        try:
            for index in range(MAX_INODES + 10):
                sfs32.create_file(sfs32.root, f"f{index}", uid=0)
                created32 += 1
        except FileLimitError:
            pass
        # 64-bit: sail straight past.
        system64 = boot(wide_addresses=True)
        sfs64 = system64.kernel.sfs
        for index in range(MAX_INODES + 10):
            sfs64.create_file(sfs64.root, f"f{index}", uid=0)
        shell = make_shell(system64.kernel)
        from repro.runtime.libshared import runtime_for

        runtime = runtime_for(system64.kernel, shell)
        big_base = runtime.create_segment("/shared/huge", 8 << 20)
        return created32, sfs64.inode_count(), big_base

    created32, count64, big_base = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    experiment = Experiment(
        "A5b", "prototype limits vs the 64-bit design",
        "1024 inodes and 1 MiB files on 32-bit; neither on 64-bit",
    )
    experiment.add("files created before failure, 32-bit", created32,
                   unit="files")
    experiment.add("files created, 64-bit", count64 - 1, unit="files",
                   detail="(minus the root directory)")
    experiment.add("8 MiB segment base, 64-bit", big_base, unit="addr",
                   detail=f"0x{big_base:012x}")
    report(experiment)

    assert created32 == MAX_INODES - 1  # root dir consumed one inode
    assert count64 - 1 > MAX_INODES
    assert big_base >= 1 << 32


@pytest.mark.parametrize("wide", [False, True], ids=["32bit", "64bit"])
def test_a5_pointer_chasing_parity(wide, benchmark):
    """The full pointer-chasing machinery behaves identically in both
    configurations — only the limits differ."""

    def run():
        system = boot(wide_addresses=wide)
        kernel = system.kernel
        shell = make_shell(kernel)
        from repro.runtime.libshared import runtime_for
        from repro.runtime.views import Mem

        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/seg", 8192)
        mem = Mem(kernel, shell)
        mem.store_u32(base, 42)
        other = make_shell(kernel, "other")
        runtime_for(kernel, other)
        return Mem(kernel, other).load_u32(base)

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 42
