"""A6 — scoped linking vs a traditional flat namespace (§3 ablation).

"Some of these external symbols may have the same name as external
symbols exported by the main program, even though they are actually
unrelated. This possibility introduces a potentially serious naming
conflict. The problem is that linkers map from a rich hierarchy of
abstractions to a flat address space."

The probe: an application ships its own ``helper`` and links in a
subsystem that also has a private ``helper`` on its own search path.
Under scoped linking the subsystem gets *its* helper (returns 1); under
a flat namespace it is captured by the application's (returns 2) —
silent, wrong, and exactly the failure scoped linking exists to prevent.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell
from repro.hw.asm import assemble
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object

SUBSYS_HELPER = """
        .text
        .globl helper
helper:
        li v0, 1            # the subsystem's own helper
        jr ra
"""

APP_HELPER = """
        .text
        .globl helper
helper:
        li v0, 2            # the application's unrelated helper
        jr ra
"""

SUBSYS = """
        .searchdir /shared/sub
        .text
        .globl subsys_fn
subsys_fn:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal helper
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""

MAIN = """
        .text
        .globl main
main:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal subsys_fn
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""


def run_conflict(scoped: bool):
    system = boot(scoped=scoped)
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/app")
    kernel.vfs.makedirs("/shared/sub")
    store_object(kernel, shell, "/shared/sub/helper.o",
                 assemble(SUBSYS_HELPER, "helper.o"))
    store_object(kernel, shell, "/shared/app/helper.o",
                 assemble(APP_HELPER, "helper.o"))
    store_object(kernel, shell, "/shared/app/subsys.o",
                 assemble(SUBSYS, "subsys.o"))
    store_object(kernel, shell, "/main.o", assemble(MAIN, "main.o"))
    result = system.lds.link(
        shell,
        [LinkRequest("/main.o"),
         LinkRequest("subsys.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin", search_dirs=["/shared/app"],
    )
    proc = kernel.create_machine_process("p", result.executable)
    code = kernel.run_until_exit(proc)
    return code, proc.runtime.ldl.stats


def test_a6_scoped_vs_flat(report, benchmark):
    def run_both():
        return run_conflict(scoped=True), run_conflict(scoped=False)

    (scoped_code, scoped_stats), (flat_code, flat_stats) = \
        benchmark.pedantic(run_both, rounds=1, iterations=1)

    experiment = Experiment(
        "A6", "scoped linking vs a flat namespace under a name conflict",
        "scoped linking preserves abstraction: a subsystem's symbols "
        "resolve against its own module list and search path first",
    )
    experiment.add("subsys_fn result, scoped", scoped_code, unit="value",
                   detail="1 = the subsystem's own helper (correct)")
    experiment.add("subsys_fn result, flat", flat_code, unit="value",
                   detail="2 = silently captured by the app's helper")
    experiment.add("scope lookups, scoped", scoped_stats.scope_lookups,
                   unit="lookups")
    experiment.add("scope lookups, flat", flat_stats.scope_lookups,
                   unit="lookups")
    report(experiment)

    assert scoped_code == 1   # abstraction preserved
    assert flat_code == 2     # abstraction broken, silently
