"""A7 — reprolint: static verification is free in simulated time.

Not a paper experiment: this guards the repo's own verification gate.
Arming the ``lds``/``ldl`` reprolint gate must leave every simulated
number — total cycles and the per-category breakdown — bit-identical
to the gate-off run, because the analyzer only ever reads in-memory
objects and never issues a syscall. The host-side cost of sweeping
``reprolint --strict`` across the whole module farm is recorded in
``BENCH_A7_LINT.json`` so successive runs leave a trajectory.
"""

from __future__ import annotations

import os
import time

from repro import boot
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.tools.cli import reprolint_main

WIDTH = 12
USED = 12


def run_fanout(verify: bool):
    """The E2 fanout with the lint gate toggled via REPRO_LINT."""
    saved = os.environ.get("REPRO_LINT")
    os.environ["REPRO_LINT"] = "1" if verify else "0"
    try:
        system = boot()
        kernel = system.kernel
        shell = make_shell(kernel)
        wall_start = time.perf_counter()
        graph = build_module_fanout(kernel, shell, width=WIDTH,
                                    used=USED, module_dir="/shared/fan")
        proc = kernel.create_machine_process("p", graph.executable)
        code = kernel.run_until_exit(proc)
        wall = time.perf_counter() - wall_start
        assert code == fanout_expected_exit(USED)
        return wall, kernel.clock.cycles, \
            dict(kernel.clock.by_category), kernel, shell
    finally:
        if saved is None:
            os.environ.pop("REPRO_LINT", None)
        else:
            os.environ["REPRO_LINT"] = saved


def lint_everything(kernel, shell):
    """reprolint --strict over the farm: templates, segments, image."""
    paths = ["/opt/fanout/main"]
    for index in range(WIDTH):
        paths.append(f"/shared/fan/mod{index}.o")
        paths.append(f"/shared/fan/helper_{index}.o")
    for index in range(USED):
        # Running main created these public segments lazily.
        paths.append(f"/shared/fan/mod{index}")
    wall_start = time.perf_counter()
    out = reprolint_main(kernel, shell, ["--strict"] + paths)
    wall = time.perf_counter() - wall_start
    return wall, out, len(paths)


def test_a7_lint_gate_is_cycle_neutral(report, benchmark):
    def run():
        off = run_fanout(verify=False)
        on = run_fanout(verify=True)
        sweep = lint_everything(on[3], on[4])
        return off, on, sweep

    off, on, sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    wall_off, cycles_off, categories_off, _k, _s = off
    wall_on, cycles_on, categories_on, _k, _s = on
    lint_wall, lint_out, npaths = sweep
    info_notes = lint_out.count("REL004")

    experiment = Experiment(
        "A7_LINT",
        f"reprolint gate over a {WIDTH}-module fanout",
        "static verification reads only in-memory objects: the gate "
        "adds zero simulated cycles to link and load",
    )
    experiment.add("simulated cycles (gate off)", cycles_off)
    experiment.add("simulated cycles (gate on)", cycles_on)
    experiment.add("cycle delta", cycles_on - cycles_off,
                   detail="must be exactly zero")
    experiment.add("files linted", npaths, unit="files",
                   detail="templates + public segments + executable")
    experiment.add("advisory findings", info_notes, unit="findings",
                   detail="REL004 far-call notes on templates")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "fanout_gate_off": wall_off,
        "fanout_gate_on": wall_on,
        "reprolint_sweep": lint_wall,
    })

    # The tentpole guarantee: arming the gate perturbs nothing the
    # simulated machine can observe.
    assert cycles_on == cycles_off
    assert categories_on == categories_off
    # --strict did not raise, and every path rendered a clean tally.
    assert lint_out.count("0 error") == npaths
    # Cross-module call sites exist, so the sweep saw real work.
    assert info_notes > 0
