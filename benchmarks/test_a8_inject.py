"""A8 — repro.inject: disabled and inert planes are free in simulated time.

Not a paper experiment: this guards the repo's own fault-injection
subsystem. An installed injector whose plans never fire must leave every
simulated number — total cycles and the per-category breakdown —
bit-identical to a run with no injector at all: the planes decide, they
never charge (backoff cycles are charged by the *hardened retry layers*,
and only when a fault actually triggers). The host-side cost of a short
seeded ``reprochaos`` soak is recorded in ``BENCH_A8_INJECT.json`` so
successive runs leave a trajectory.
"""

from __future__ import annotations

import io
import os
import time

from repro import boot
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.inject import FaultKind, FaultPlan, Plane, install_injector
from repro.tools.cli import reprochaos_main

WIDTH = 12
USED = 12

#: A plan that matches nothing: the planes run their full decision path
#: (the armed, worst case) without ever actually injecting.
INERT_PLANS = (
    FaultPlan(Plane.SYSCALL, FaultKind.ERROR, match="/never/matches/*"),
    FaultPlan(Plane.IO, FaultKind.ERROR, match="/never/matches/*"),
    FaultPlan(Plane.LINKER, FaultKind.ERROR, match="/never/matches/*"),
    FaultPlan(Plane.VMFAULT, FaultKind.SPURIOUS,
              match="/never/matches/*"),
)


def run_fanout(armed: bool):
    """The E2 fanout with inert fault planes armed or absent."""
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    injector = install_injector(kernel, INERT_PLANS, seed=1993) \
        if armed else None
    wall_start = time.perf_counter()
    graph = build_module_fanout(kernel, shell, width=WIDTH, used=USED,
                                module_dir="/shared/fan")
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    wall = time.perf_counter() - wall_start
    assert code == fanout_expected_exit(USED)
    if injector is not None:
        assert injector.stats.checked > 0, "planes never consulted"
        assert injector.stats.triggered == 0, "inert plan fired"
    return wall, kernel.clock.cycles, dict(kernel.clock.by_category)


def run_soak():
    """A short seeded reprochaos campaign (host-side wall clock)."""
    examples = os.path.join(os.path.dirname(__file__), "..", "examples")
    script = os.path.normpath(os.path.join(examples, "quickstart.py"))
    out = io.StringIO()
    wall_start = time.perf_counter()
    status = reprochaos_main(
        ["--seed", "1993", "--runs", "2", "--rate", "0.02", script],
        stdout=out,
    )
    wall = time.perf_counter() - wall_start
    return wall, status, out.getvalue()


def test_a8_inject_planes_are_cycle_neutral(report, benchmark):
    def run():
        off = run_fanout(armed=False)
        on = run_fanout(armed=True)
        soak = run_soak()
        return off, on, soak

    off, on, soak = benchmark.pedantic(run, rounds=1, iterations=1)
    wall_off, cycles_off, categories_off = off
    wall_on, cycles_on, categories_on = on
    soak_wall, soak_status, soak_out = soak

    experiment = Experiment(
        "A8_INJECT",
        f"inert fault planes over a {WIDTH}-module fanout",
        "the injection planes decide but never charge: armed-but-inert "
        "plans add zero simulated cycles; a seeded reprochaos soak "
        "contains every fault and replays bit-identically",
    )
    experiment.add("simulated cycles (planes absent)", cycles_off)
    experiment.add("simulated cycles (planes inert)", cycles_on)
    experiment.add("cycle delta", cycles_on - cycles_off,
                   detail="must be exactly zero")
    experiment.add("soak verdict", 1 if soak_status == 0 else 0,
                   unit="ok",
                   detail="reprochaos: contained + replay-identical")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "fanout_planes_absent": wall_off,
        "fanout_planes_inert": wall_on,
        "reprochaos_soak": soak_wall,
    })

    # The tentpole guarantee: armed planes perturb nothing the simulated
    # machine can observe until a fault actually triggers.
    assert cycles_on == cycles_off
    assert categories_on == categories_off
    # The soak neither killed a kernel nor drifted on replay.
    assert soak_status == 0, soak_out
    assert "reprochaos: OK" in soak_out
