"""A9 — repro.disk: durability is free until you mount a disk.

Not a paper experiment: this guards the durable block store the same
way A7 guards the verifier and A8 guards the fault planes. A kernel
booted *without* a disk must produce bit-identical simulated numbers to
the seed repo — the journaling hooks in every FS/SFS mutator are a
single ``journal is None`` test, and journal cycles are charged only
when a store is actually mounted. The disk-attached run reports the
journaling overhead (the "journal" cycle category) and the full
crash-at-every-record matrix is replayed and its verdict recorded in
``BENCH_A9_DISK.json``.
"""

from __future__ import annotations

import time

from repro import boot
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.disk import BlockDevice, run_crash_matrix

WIDTH = 12
USED = 12

#: The armed-but-idle pin shared with A7/A8: the exact simulated cycle
#: count of the module fanout on a freshly booted, all-volatile machine.
VOLATILE_FANOUT_CYCLES = 2_603_166


def run_fanout(durable: bool):
    """The E2 fanout, volatile or with a durable store mounted."""
    device = BlockDevice(nblocks=32768, seed=9) if durable else None
    system = boot(disk=device)
    kernel = system.kernel
    shell = make_shell(kernel)
    wall_start = time.perf_counter()
    graph = build_module_fanout(kernel, shell, width=WIDTH, used=USED,
                                module_dir="/shared/fan")
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    wall = time.perf_counter() - wall_start
    assert code == fanout_expected_exit(USED)
    if durable:
        kernel.shutdown()
    return wall, kernel.clock.cycles, dict(kernel.clock.by_category)


def test_a9_disk_journaling_off_is_cycle_identical(report, benchmark):
    def run():
        volatile = run_fanout(durable=False)
        durable = run_fanout(durable=True)
        wall_start = time.perf_counter()
        matrix = run_crash_matrix(stride=8)
        matrix_wall = time.perf_counter() - wall_start
        return volatile, durable, matrix, matrix_wall

    volatile, durable, matrix, matrix_wall = benchmark.pedantic(
        run, rounds=1, iterations=1)
    wall_off, cycles_off, categories_off = volatile
    wall_on, cycles_on, categories_on = durable
    journal_cycles = categories_on.get("journal", 0)

    experiment = Experiment(
        "A9_DISK",
        f"durable store under a {WIDTH}-module fanout",
        "journaling is pay-for-use: a volatile boot is bit-identical "
        "to the seed repo, a mounted store charges explicit 'journal' "
        "cycles, and a crash at any journal record boundary recovers "
        "to a consistent, fsck-clean image",
    )
    experiment.add("simulated cycles (no disk)", cycles_off,
                   detail="must equal the A7/A8 pin exactly")
    experiment.add("simulated cycles (disk mounted)", cycles_on)
    experiment.add("journal cycles", journal_cycles,
                   detail="the explicit cost of write-ahead logging")
    experiment.add("crash points exercised", len(matrix.points),
                   unit="points",
                   detail=f"of {matrix.total_records} journal records")
    experiment.add("crash points recovered clean",
                   sum(1 for point in matrix.points if point.clean),
                   unit="points", detail="fsck findings == 0 and every "
                   "segment reopens by address")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "fanout_volatile": wall_off,
        "fanout_durable": wall_on,
        "crash_matrix": matrix_wall,
    })

    # The tentpole guarantee: no disk, no new cycles — the exact pin.
    assert cycles_off == VOLATILE_FANOUT_CYCLES
    assert "journal" not in categories_off
    # A mounted store charges its keep through the journal category
    # and nowhere else unaccounted: the delta IS the journal cycles.
    assert journal_cycles > 0
    assert cycles_on - cycles_off == journal_cycles
    # And the crash matrix holds at every sampled record boundary.
    assert matrix.clean, "\n".join(matrix.failures()[:10])
