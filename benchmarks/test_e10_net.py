"""E10 — rwhod at cluster scale: one segment fetch vs a file per host.

The paper's §4 comparison, restated across machines: the admin database
lives in one cluster-wide shared segment owned by the server's rwhod.
A reader anywhere pays a constant two-frame FETCH/GRANT to pull the
whole database once; the file baseline pays one LIST plus one GET round
trip *per host*, so its traffic scales with the fleet while the shared
segment's does not.

Also the cluster's A-series guard: a kernel booted without ``net=`` is
bit-identical to the seed pin (no "net" cycle category exists), and the
whole scale scenario — fault-free or under a fixed-seed NET fault plan
— replays bit-identically: same trace streams, same reader outputs,
same per-node cycle counts. Results land in ``BENCH_E10_NET.json``.
"""

from __future__ import annotations

import time

from repro import boot
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.inject import cancel_injection, request_injection
from repro.tools.cli import _campaign_plans
from repro.trace import tracer as trace_state
from repro.trace.tracer import cancel_tracing, request_tracing

WIDTH = 12
USED = 12

#: The armed-but-idle pin shared with A7/A8/A9: the exact simulated
#: cycle count of the module fanout on a freshly booted, unclustered
#: machine. The cluster hooks may not move it by a single cycle.
VOLATILE_FANOUT_CYCLES = 2_603_166

NNODES = 8
NHOSTS = 2048
READERS = [1, 3, 5, 7]
FAULT_RATE = 0.002
SEED = 1993


def run_fanout():
    """The E2 fanout on a plain (unclustered) boot."""
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    wall_start = time.perf_counter()
    graph = build_module_fanout(kernel, shell, width=WIDTH, used=USED,
                                module_dir="/shared/fan")
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    wall = time.perf_counter() - wall_start
    assert code == fanout_expected_exit(USED)
    return wall, kernel.clock.cycles, dict(kernel.clock.by_category)


def run_scale(implementation: str, plans=None):
    """The rwho scale scenario on an N-node cluster, traced.

    Returns the scenario result dict plus the (boot, cycle, pid, addr,
    name, value) trace stream — everything two runs must agree on.
    """
    from repro.apps.rwho.cluster import run_cluster_rwho, synth_statuses
    from repro.net import Cluster

    if plans is not None:
        request_injection(plans, seed=SEED)
    request_tracing(kinds=["NET", "INJECT"])
    try:
        cluster = Cluster(NNODES, seed=SEED)
        result = run_cluster_rwho(cluster, synth_statuses(NHOSTS),
                                  implementation, readers=READERS,
                                  max_rounds=500_000)
        cluster.shutdown()
        tracer = trace_state.TRACER
        stream = tuple(
            (event.boot, event.cycle, event.pid, event.addr,
             event.name, event.value)
            for event in tracer.events()
        )
    finally:
        cancel_tracing()
        if plans is not None:
            cancel_injection()
    return result, stream


def test_e10_cluster_rwho(report, benchmark):
    def run():
        wall_start = time.perf_counter()
        fanout = run_fanout()
        shm_a = run_scale("shm")
        shm_b = run_scale("shm")
        filed = run_scale("file")
        plans = _campaign_plans(["net"], FAULT_RATE)
        faulted_a = run_scale("shm", plans)
        faulted_b = run_scale("shm", plans)
        wall = time.perf_counter() - wall_start
        return fanout, shm_a, shm_b, filed, faulted_a, faulted_b, wall

    fanout, shm_a, shm_b, filed, faulted_a, faulted_b, wall = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    fanout_wall, fanout_cycles, fanout_categories = fanout
    shm, shm_stream = shm_a
    filed_result, _ = filed

    experiment = Experiment(
        "E10_NET",
        f"rwho over a {NNODES}-node cluster, {NHOSTS} hosts",
        "the admin database in one cluster-wide shared segment: a "
        "remote rwho fetches the whole database in one constant-cost "
        "exchange, while the file baseline pays a round trip per host "
        "— and the entire cluster is bit-identical per (seed, plan)",
    )
    experiment.add("simulated cycles (no cluster)", fanout_cycles,
                   detail="must equal the A7/A8/A9 pin exactly")
    experiment.add("frames (shared segment)", shm["frames_sent"],
                   unit="frames",
                   detail=f"{len(READERS)} readers: broadcast DATA + "
                          f"constant FETCH/GRANT per reader")
    experiment.add("frames (file baseline)",
                   filed_result["frames_sent"], unit="frames",
                   detail="LIST + one GET per host, per reader")
    experiment.add("bytes (shared segment)", shm["bytes_sent"],
                   unit="bytes")
    experiment.add("bytes (file baseline)", filed_result["bytes_sent"],
                   unit="bytes")
    experiment.add("segment fetches", shm["by_kind"].get("FETCH", 0),
                   unit="frames",
                   detail="independent of the host count")
    experiment.add("file-baseline calls",
                   filed_result["by_kind"].get("CALL", 0),
                   unit="frames", detail="scales with the host count")
    experiment.add("traffic ratio (file/shm)",
                   round(filed_result["frames_sent"]
                         / shm["frames_sent"], 2), unit="x")
    experiment.add("server net cycles", shm["net_cycles"][0])
    experiment.note(
        "two fault-free runs and two runs under a fixed-seed NET fault "
        "plan each produced bit-identical trace streams, reader "
        "outputs, and per-node cycle counts")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "fanout_volatile": fanout_wall,
        "e10_total": wall,
    })

    # The tentpole guarantee: no cluster, no new cycles — the exact
    # pin, and the "net" category must not exist at all.
    assert fanout_cycles == VOLATILE_FANOUT_CYCLES
    assert "net" not in fanout_categories

    # Every reader saw the complete database, both implementations.
    assert set(shm["outputs"]) == set(READERS)
    reference = shm["outputs"][READERS[0]]
    assert reference.count("\n") + 1 == NHOSTS
    for node in READERS:
        assert shm["outputs"][node] == reference
        assert filed_result["outputs"][node] == reference

    # The paper's shape: file traffic scales with hosts, shm does not.
    assert shm["by_kind"]["FETCH"] == len(READERS)
    assert filed_result["by_kind"]["CALL"] \
        >= len(READERS) * (NHOSTS + 1)
    assert filed_result["frames_sent"] > 2 * shm["frames_sent"]

    # Bit-identical replay, fault-free and faulted.
    assert shm_a[1] == shm_b[1]
    assert shm_a[0]["outputs"] == shm_b[0]["outputs"]
    assert shm_a[0]["cycles"] == shm_b[0]["cycles"]
    assert faulted_a[1] == faulted_b[1]
    assert faulted_a[0]["outputs"] == faulted_b[0]["outputs"]
    assert faulted_a[0]["cycles"] == faulted_b[0]["cycles"]
