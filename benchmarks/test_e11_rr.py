"""E11 — record/replay: checkpoint overhead, seek latency, pay-for-use.

The reprorr subsystem's three promises, measured:

1. **Pay for use.** With recording disarmed, the only residue is one
   integer comparison per `Clock.charge`. The E2 fanout workload must
   hit the A7/A8/A9/E10 cycle pin *exactly* — the clock's checkpoint
   hook may not move the simulation by a single cycle.
2. **Recording cost scales with the interval.** The same fanout
   recorded at two checkpoint intervals: halving the interval roughly
   doubles the checkpoints and grows the recording, while the simulated
   cycle total stays bit-identical to the unrecorded pin (observing a
   deterministic machine must not perturb it).
3. **Seek restores near the target.** `seek --cycle N` resumes from
   the nearest checkpoint at or before N, digest-verified, with the
   event suffix from N onward bit-identical — and a denser checkpoint
   spacing shrinks the re-execution distance (the checkpoint-to-target
   gap), which is the whole point of paying for checkpoints.

Results land in ``BENCH_E11_RR.json``.
"""

from __future__ import annotations

import time

from repro import boot
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.rr import record_call, replay_call, seek_call

WIDTH = 12
USED = 12

#: The armed-but-idle pin shared with A7/A8/A9/E10: the exact simulated
#: cycle count of the module fanout with recording disarmed. The
#: clock's checkpoint hook may not move it by a single cycle.
VOLATILE_FANOUT_CYCLES = 2_603_166

#: Checkpoint spacings compared: the sparse one is the reprorr
#: default's scale, the dense one pays ~2x the checkpoints.
SPARSE_INTERVAL = 1_000_000
DENSE_INTERVAL = 500_000

#: Seek target: mid-run, past the first sparse checkpoint.
SEEK_CYCLE = 1_700_000


def run_fanout():
    """The E2 fanout on a plain boot (recording disarmed)."""
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_fanout(kernel, shell, width=WIDTH, used=USED,
                                module_dir="/shared/fan")
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    assert code == fanout_expected_exit(USED)
    return kernel.clock.cycles, dict(kernel.clock.by_category)


def fanout_workload():
    """The same fanout as a recordable callable."""
    run_fanout()


def test_e11_record_replay(report, benchmark):
    def run():
        wall_start = time.perf_counter()

        plain_start = time.perf_counter()
        plain_cycles, plain_categories = run_fanout()
        plain_wall = time.perf_counter() - plain_start

        sparse_start = time.perf_counter()
        sparse = record_call(fanout_workload, interval=SPARSE_INTERVAL)
        sparse_wall = time.perf_counter() - sparse_start
        dense_start = time.perf_counter()
        dense = record_call(fanout_workload, interval=DENSE_INTERVAL)
        dense_wall = time.perf_counter() - dense_start

        replay_start = time.perf_counter()
        verdict = replay_call(dense, fanout_workload)
        replay_wall = time.perf_counter() - replay_start

        seeks = {}
        for label, recording in (("sparse", sparse), ("dense", dense)):
            seek_start = time.perf_counter()
            result = seek_call(recording, SEEK_CYCLE, fanout_workload)
            seeks[label] = (result, time.perf_counter() - seek_start)

        wall = time.perf_counter() - wall_start
        return (plain_cycles, plain_categories, plain_wall, sparse,
                sparse_wall, dense, dense_wall, verdict, replay_wall,
                seeks, wall)

    (plain_cycles, plain_categories, plain_wall, sparse, sparse_wall,
     dense, dense_wall, verdict, replay_wall, seeks, wall) = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    experiment = Experiment(
        "E11_RR",
        "whole-machine record/replay over the E2 fanout",
        "a deterministic machine can be recorded (manifest + periodic "
        "checkpoints), replayed bit-identically, and seeked to any "
        "cycle from the nearest verified checkpoint — while a machine "
        "nobody records pays one integer comparison per charge",
    )
    experiment.add("simulated cycles (recording off)", plain_cycles,
                   detail="must equal the A7/A8/A9/E10 pin exactly")
    experiment.add("simulated cycles (recording on)",
                   sparse.boots[0][0],
                   detail="observation must not perturb the machine")
    experiment.add("checkpoints (sparse)", len(sparse.checkpoints),
                   unit="checkpoints",
                   detail=f"every {SPARSE_INTERVAL:,} cycles")
    experiment.add("checkpoints (dense)", len(dense.checkpoints),
                   unit="checkpoints",
                   detail=f"every {DENSE_INTERVAL:,} cycles")
    experiment.add("recording size (sparse)", len(sparse.to_bytes()),
                   unit="bytes")
    experiment.add("recording size (dense)", len(dense.to_bytes()),
                   unit="bytes")
    sparse_result, _sparse_seek_wall = seeks["sparse"]
    dense_result, _dense_seek_wall = seeks["dense"]
    experiment.add("seek gap (sparse)",
                   SEEK_CYCLE - sparse_result.checkpoint_cycle,
                   detail="checkpoint-to-target re-execution distance")
    experiment.add("seek gap (dense)",
                   SEEK_CYCLE - dense_result.checkpoint_cycle,
                   detail="denser checkpoints land closer to the "
                          "target")
    experiment.add("record overhead (sparse)",
                   round(sparse_wall / plain_wall, 2), unit="x",
                   detail="wall time vs the unrecorded run")
    experiment.add("record overhead (dense)",
                   round(dense_wall / plain_wall, 2), unit="x")
    experiment.note(
        "replay of the dense recording compared "
        f"{verdict.events_compared} event(s), "
        f"{verdict.checkpoints_compared} checkpoint digest(s), and the "
        "outcome: bit-identical")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "fanout_volatile": plain_wall,
        "record_sparse": sparse_wall,
        "record_dense": dense_wall,
        "replay": replay_wall,
        "e11_total": wall,
    })

    # Promise 1: pay for use — the exact pin, recording off.
    assert plain_cycles == VOLATILE_FANOUT_CYCLES

    # Promise 2: observation does not perturb. The recorded runs hit
    # the same simulated total, and both recordings captured the whole
    # machine periodically.
    assert sparse.boots[0][0] == VOLATILE_FANOUT_CYCLES
    assert dense.boots[0][0] == VOLATILE_FANOUT_CYCLES
    assert sparse.outcome == "clean" and dense.outcome == "clean"
    assert len(sparse.checkpoints) >= 2
    assert len(dense.checkpoints) > len(sparse.checkpoints)
    assert verdict.ok, verdict.render()

    # Promise 3: both seeks restore digest-verified state with a
    # bit-identical suffix, and the dense recording restores closer to
    # the target.
    for result, _ in seeks.values():
        assert result.digest_ok, result.render()
        assert result.suffix_identical, result.render()
        assert result.checkpoint_cycle is not None
        assert result.checkpoint_cycle <= SEEK_CYCLE
    assert dense_result.checkpoint_cycle \
        >= sparse_result.checkpoint_cycle
