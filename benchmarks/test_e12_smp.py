"""E12 — repro.smp: parallel Presto speedup across simulated cores.

Not a paper experiment: this measures the repo's own SMP plane. The §4
Presto application, given per-item compute (so the parallel fraction
dominates the semaphore traffic), is run unchanged on 1, 2, 4, and 8
simulated cores. Total work (``clock.cycles``) stays essentially flat
— the cores execute the same instructions plus a handful of extra
context switches — while the parallel makespan (``clock.elapsed``, the
sum of per-round maxima) drops with the core count. Every point on the
curve is a pure function of ``(workload, ncores)``: the elapsed totals
are pinned exactly, and the 4-core run is replayed twice to assert the
whole observable signature (results, cycles, per-category charges) is
byte-identical. ``BENCH_E12_SMP.json`` records the speedup curve plus
host wall-clock so successive runs leave a trajectory.
"""

from __future__ import annotations

import time

from repro import boot
from repro.apps.presto import PrestoApp
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import make_shell

NITEMS = 64
NWORKERS = 8
COMPUTE_ITERS = 600
CORE_COUNTS = (1, 2, 4, 8)

#: The exact parallel makespan of the instance phase per core count —
#: deterministic, so pinned to the cycle.
ELAPSED_PINS = {
    1: 1_901_742,
    2: 1_076_366,
    4: 653_166,
    8: 439_878,
}


def run_instance_phase(ncores: int):
    """Boot, build, run one instance; measure the instance phase."""
    kernel = boot(ncores=ncores).kernel
    shell = make_shell(kernel)
    app = PrestoApp(kernel, shell, nitems=NITEMS,
                    compute_iters=COMPUTE_ITERS)
    cycles_start = kernel.clock.cycles
    elapsed_start = kernel.clock.elapsed
    wall_start = time.perf_counter()
    result = app.run_instance(nworkers=NWORKERS)
    wall = time.perf_counter() - wall_start
    assert result.total == app.expected_total()
    return {
        "wall": wall,
        "work": kernel.clock.cycles - cycles_start,
        "elapsed": kernel.clock.elapsed - elapsed_start,
        "per_worker": tuple(result.per_worker_items),
        "results": tuple(result.results),
        "by_category": dict(kernel.clock.by_category),
        "rounds": kernel.smp.rounds if kernel.smp is not None else 0,
    }


def test_e12_smp_speedup_curve(report, benchmark):
    def run():
        curve = {ncores: run_instance_phase(ncores)
                 for ncores in CORE_COUNTS}
        repeat = run_instance_phase(4)
        return curve, repeat

    curve, repeat = benchmark.pedantic(run, rounds=1, iterations=1)
    base = curve[1]

    experiment = Experiment(
        "E12_SMP",
        f"Presto ({NWORKERS} workers, {NITEMS} items, "
        f"{COMPUTE_ITERS}-iteration compute) on 1/2/4/8 cores",
        "a deterministic round schedule makes multi-core execution a "
        "pure function of (workload, ncores): the same totals and "
        "traces every run, with the makespan scaling down as cores "
        "are added",
    )
    experiment.add("work at 1 core", base["work"])
    for ncores in CORE_COUNTS:
        point = curve[ncores]
        speedup = base["elapsed"] / point["elapsed"]
        experiment.add(f"makespan at {ncores} core(s)",
                       point["elapsed"],
                       detail=f"speedup {speedup:.2f}x, "
                              f"{point['rounds']} round(s)")
    experiment.add("4-core speedup",
                   round(base["elapsed"] / curve[4]["elapsed"], 2),
                   unit="x", detail="acceptance floor: 2.0x")
    experiment.add("replay-stable at 4 cores",
                   1 if repeat == curve[4] or (
                       {k: v for k, v in repeat.items() if k != "wall"}
                       == {k: v for k, v in curve[4].items()
                           if k != "wall"}) else 0,
                   unit="ok",
                   detail="same-seed rerun, full observable signature")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        f"presto_{ncores}core": curve[ncores]["wall"]
        for ncores in CORE_COUNTS
    })

    # One core is the degenerate case: serial work, makespan == work.
    assert base["elapsed"] == base["work"]
    # The exact deterministic curve.
    for ncores in CORE_COUNTS:
        assert curve[ncores]["elapsed"] == ELAPSED_PINS[ncores], ncores
        assert curve[ncores]["per_worker"] == (8,) * NWORKERS
    # The tentpole acceptance criterion: >= 2x at 4 cores.
    assert base["elapsed"] / curve[4]["elapsed"] >= 2.0
    # Byte-identical rerun (host wall-clock excluded, obviously).
    assert {k: v for k, v in repeat.items() if k != "wall"} \
        == {k: v for k, v in curve[4].items() if k != "wall"}
