"""E13 — availability: recovery cost under seeded crash schedules.

The HA tentpole's benchmark face: the clustered rwho scenario is run
under deterministic crash schedules of increasing severity (no faults,
the durable home crashed and rebooted, the home plus a gateway), and
the cost of self-healing is measured in recovery epochs and fabric
rounds to re-convergence with the single-kernel oracle. Every faulted
run is executed twice: same (seed, schedule) must mean bit-identical
epochs, rounds, fault counters and reader output.

Also the A-series guard extended to the failure model: a kernel booted
without a cluster — and therefore without leases, heartbeats or a
membership view — is bit-identical to the seed pin. Availability is
pay-for-use. Results land in ``BENCH_E13_HA.json``.
"""

from __future__ import annotations

import time

from repro import boot
from repro.bench.harness import Experiment, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.disk import BlockDevice
from repro.disk.fsck import fsck
from repro.inject import (
    FaultKind,
    FaultPlan,
    Plane,
    cancel_injection,
    request_injection,
)
from repro.net import Cluster

WIDTH = 12
USED = 12

#: The armed-but-idle pin shared with A7/A8/A9/E10: the exact simulated
#: cycle count of the module fanout on a freshly booted, unclustered
#: machine. The HA hooks may not move it by a single cycle.
VOLATILE_FANOUT_CYCLES = 2_603_166

NNODES = 6
NHOSTS = 48
SEED = 1993

#: Deterministic after-based schedules, keyed by crash count. The
#: single-crash schedule kills the durable home (directory journal +
#: database on disk); the two-crash schedule additionally kills a
#: volatile gateway while the home is still recovering.
SCHEDULES = {
    0: [],
    1: [
        FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash",
                  match="node0", probability=1.0, after=3, max_faults=1),
        FaultPlan(Plane.NODE, FaultKind.REBOOT, site="reboot",
                  probability=1.0, after=6),
    ],
    2: [
        FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash",
                  match="node0", probability=1.0, after=3, max_faults=1),
        FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash",
                  match="node2", probability=1.0, after=9, max_faults=1),
        FaultPlan(Plane.NODE, FaultKind.REBOOT, site="reboot",
                  probability=1.0, after=6),
    ],
}


def run_fanout():
    """The E2 fanout on a plain (unclustered, lease-free) boot."""
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    wall_start = time.perf_counter()
    graph = build_module_fanout(kernel, shell, width=WIDTH, used=USED,
                                module_dir="/shared/fan")
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    wall = time.perf_counter() - wall_start
    assert code == fanout_expected_exit(USED)
    return wall, kernel.clock.cycles, dict(kernel.clock.by_category)


def run_recovery(crashes: int):
    """The HA rwho scenario under ``SCHEDULES[crashes]``.

    Returns everything two runs of the same schedule must agree on,
    plus the fsck verdict of the home's device after the run.
    """
    from repro.apps.rwho.cluster import (
        run_ha_rwho,
        single_kernel_rwho,
        synth_statuses,
    )

    statuses = synth_statuses(NHOSTS)
    oracle = single_kernel_rwho(statuses)
    plans = SCHEDULES[crashes]
    if plans:
        request_injection(plans, seed=SEED)
    try:
        disks = [BlockDevice(seed=7) if node == 0 else None
                 for node in range(NNODES)]
        cluster = Cluster(NNODES, seed=SEED, disks=disks, ha=True)
        result = run_ha_rwho(cluster, statuses, oracle)
        cluster.shutdown()
        fsck_codes = tuple(
            fsck(cluster.machines[0].kernel.disk.device.reopen(),
                 subject=f"e13-home-{crashes}").report.codes())
    finally:
        if plans:
            cancel_injection()
    assert result["converged"], \
        f"schedule with {crashes} crash(es) did not re-converge"
    return {
        "epochs": result["epochs"],
        "rounds": result["rounds"],
        "frames": result["frames_sent"],
        "dropped": result["ha_dropped"],
        "outputs": result["outputs"],
        "ha": dict(result["ha"]),
        "fsck": fsck_codes,
    }


def test_e13_ha_recovery(report, benchmark):
    def run():
        wall_start = time.perf_counter()
        fanout = run_fanout()
        clean = run_recovery(0)
        one_a = run_recovery(1)
        one_b = run_recovery(1)
        two_a = run_recovery(2)
        two_b = run_recovery(2)
        wall = time.perf_counter() - wall_start
        return fanout, clean, one_a, one_b, two_a, two_b, wall

    fanout, clean, one_a, one_b, two_a, two_b, wall = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    fanout_wall, fanout_cycles, fanout_categories = fanout

    experiment = Experiment(
        "E13_HA",
        f"rwho recovery on a {NNODES}-node HA cluster, {NHOSTS} hosts",
        "a crashed writer's leases are reclaimed, a rebooted home "
        "replays its journalled segment table, and the cluster "
        "re-converges to the single-kernel oracle on a schedule that "
        "is a pure function of (seed, crash plan)",
    )
    experiment.add("simulated cycles (no cluster)", fanout_cycles,
                   detail="must equal the A7/A8/A9/E10 pin exactly")
    for label, outcome in (("no faults", clean),
                           ("1 crash (home)", one_a),
                           ("2 crashes (home+gateway)", two_a)):
        experiment.add(f"epochs [{label}]", outcome["epochs"],
                       unit="epochs")
        experiment.add(f"rounds [{label}]", outcome["rounds"],
                       unit="rounds")
        experiment.add(f"frames dropped [{label}]", outcome["dropped"],
                       unit="frames")
    experiment.add("reboots [2 crashes]", two_a["ha"]["reboots"],
                   unit="boots",
                   detail="every crashed machine came back and rejoined")
    experiment.add("directory rows recovered [1 crash]",
                   one_a["ha"]["dir_recovered"], unit="rows",
                   detail="replayed from the home's journal on reboot")
    experiment.note(
        "both faulted schedules were run twice: identical epochs, "
        "rounds, fault counters and reader output per (seed, plan)")
    experiment.note(
        "the rebooted home's device is fsck-clean after every run")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "fanout_volatile": fanout_wall,
        "e13_total": wall,
    })

    # Pay-for-use: no cluster, no new cycles — the exact pin.
    assert fanout_cycles == VOLATILE_FANOUT_CYCLES
    assert "net" not in fanout_categories

    # The fault-free scenario converges in a single epoch; recovery
    # costs extra epochs and pump rounds, never divergence.
    assert clean["epochs"] == 1
    assert clean["dropped"] == 0
    assert clean["ha"]["crashes"] == 0
    for outcome, crashes in ((one_a, 1), (two_a, 2)):
        assert outcome["ha"]["crashes"] == crashes
        assert outcome["ha"]["reboots"] >= 1
        assert outcome["ha"]["dir_recovered"] >= 1
        assert outcome["dropped"] > 0
        assert outcome["epochs"] > clean["epochs"]
        assert outcome["rounds"] > clean["rounds"]
    assert two_a["rounds"] >= one_a["rounds"]

    # Durability: the home's volume is fsck-clean after every run.
    for outcome in (clean, one_a, two_a):
        assert outcome["fsck"] == ()

    # Bit-identical recovery: same seed, same schedule, same story.
    for first, second in ((one_a, one_b), (two_a, two_b)):
        assert first == second
