"""E1 — rwho over 65 machines: status files vs a shared-memory database.

Paper: "On our local network of 65 rwhod-equipped machines, the new
version of rwho saves a little over a second each time it is called."
The shape to reproduce: the shared-memory query costs a small constant
amount, the file version scales with per-file syscall + translation
work, and the gap is large (the paper's second on 1992 hardware).
"""

from __future__ import annotations

from repro import boot
from repro.apps.rwho import (
    FileRwhod,
    ShmRwhod,
    file_rwho,
    generate_network,
    shm_rwho,
)
from repro.apps.rwho.common import updated_status
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import make_shell
from repro.util.rng import DeterministicRng


def run_rwho(nhosts: int):
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    network = generate_network(nhosts=nhosts)
    file_daemon = FileRwhod(kernel, shell)
    shm_daemon = ShmRwhod(kernel, shell, nhosts=nhosts)
    for status in network:
        file_daemon.receive(status)
        shm_daemon.receive(status)

    rng = DeterministicRng(2)
    start = kernel.clock.snapshot()
    for status in network:
        file_daemon.receive(updated_status(status, 60, rng))
    file_update = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    for status in network:
        shm_daemon.receive(updated_status(status, 60, rng))
    shm_update = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    file_output = file_rwho(kernel, shell)
    file_query = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    shm_output = shm_rwho(kernel, shell)
    shm_query = kernel.clock.snapshot() - start

    assert file_output == shm_output
    return file_update, shm_update, file_query, shm_query


def test_e1_rwho_65_machines(report, benchmark):
    results = benchmark.pedantic(run_rwho, args=(65,), rounds=1,
                                 iterations=1)
    file_update, shm_update, file_query, shm_query = results

    experiment = Experiment(
        "E1", "rwho: shared-memory database vs per-machine files "
              "(65 hosts)",
        "'the new version of rwho saves a little over a second each "
        "time it is called'; result 'both simpler and faster'",
    )
    experiment.add("rwho query, file version", file_query)
    experiment.add("rwho query, shared version", shm_query)
    experiment.add("query speedup", ratio(file_query, shm_query),
                   unit="x")
    experiment.add("daemon update round, file version", file_update)
    experiment.add("daemon update round, shared version", shm_update)
    experiment.add("update speedup", ratio(file_update, shm_update),
                   unit="x")
    experiment.note("identical output from both implementations")
    report(experiment)

    assert shm_query * 5 < file_query
    assert shm_update < file_update


def test_e1_rwho_scaling(report, benchmark):
    """The gap grows with the number of machines (series, not a point)."""

    def sweep():
        return {n: run_rwho(n) for n in (10, 30, 65)}

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    experiment = Experiment(
        "E1b", "rwho query cost vs network size",
        "file version scales with per-file opens; shared version stays "
        "nearly flat",
    )
    for nhosts, (f_up, s_up, f_q, s_q) in series.items():
        experiment.add(f"{nhosts} hosts, file", f_q)
        experiment.add(f"{nhosts} hosts, shared", s_q)
        del f_up, s_up
    report(experiment)

    file_costs = [series[n][2] for n in (10, 30, 65)]
    shm_costs = [series[n][3] for n in (10, 30, 65)]
    # Both scale with host count, but the file version's slope (opens,
    # reads, unpacking) dwarfs the shared version's (plain loads).
    assert file_costs[2] > file_costs[0] * 3
    for file_cost, shm_cost in zip(file_costs, shm_costs):
        assert shm_cost * 5 < file_cost
    file_slope = (file_costs[2] - file_costs[0]) / 55
    shm_slope = (shm_costs[2] - shm_costs[0]) / 55
    assert shm_slope * 5 < file_slope
