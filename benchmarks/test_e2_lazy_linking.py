"""E2 — lazy vs eager dynamic linking over a large reachability graph.

Paper (§3): "It allows us to run processes with a huge 'reachability
graph' of external references, while linking only the portions of that
graph that are actually used during any particular run."

Shape: eager start-up cost grows with the graph width W; lazy cost
grows with the *used* fraction, plus a per-module fault surcharge.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)


def run_fanout(width: int, used: int, lazy: bool):
    system = boot(lazy=lazy)
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_fanout(kernel, shell, width=width, used=used,
                                module_dir="/shared/fan")
    start = kernel.clock.snapshot()
    proc = kernel.create_machine_process("p", graph.executable)
    startup = kernel.clock.delta(start)
    code = kernel.run_until_exit(proc)
    total = kernel.clock.delta(start)
    assert code == fanout_expected_exit(used)
    stats = proc.runtime.ldl.stats
    return startup, total, stats


def test_e2_lazy_vs_eager(report, benchmark):
    width = 12

    def sweep():
        out = {}
        for used in (1, 3, 6, 12):
            out[used] = (run_fanout(width, used, lazy=True),
                         run_fanout(width, used, lazy=False))
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    experiment = Experiment(
        "E2", f"lazy vs eager dynamic linking (reachability graph of "
              f"{width} modules)",
        "lazy linking does work proportional to the used fraction; "
        "eager pays for the whole graph up front",
    )
    for used, (lazy_result, eager_result) in series.items():
        _lazy_startup, lazy_total, lazy_stats = lazy_result
        _eager_startup, eager_total, eager_stats = eager_result
        experiment.add(f"used={used:2d} lazy (start-up + run)",
                       lazy_total,
                       detail=f"{lazy_stats.modules_linked} linked, "
                              f"{lazy_stats.faults_serviced} faults")
        experiment.add(f"used={used:2d} eager (start-up + run)",
                       eager_total,
                       detail=f"{eager_stats.modules_linked} linked")
    experiment.add("start-up advantage at used=1",
                   ratio(series[1][1][0], series[1][0][0]), unit="x")
    experiment.note(
        "lazy start-up cost is flat (mapping only); linking work moves "
        "to first touch, so total cost tracks the used fraction"
    )
    report(experiment)

    # Eager start-up is flat in `used`; lazy start-up is much cheaper
    # when little of the graph runs.
    assert series[1][1][0] > series[1][0][0] * 2
    # Lazy linked-module count tracks `used` exactly.
    for used in (1, 3, 6, 12):
        assert series[used][0][2].modules_linked == used
        assert series[used][1][2].modules_linked == width


def test_e2_total_cost_crossover(report, benchmark):
    """When everything gets used, lazy pays the fault surcharge — the
    trade-off the paper accepts for flexibility."""
    width = 8

    def run():
        lazy = run_fanout(width, width, lazy=True)
        eager = run_fanout(width, width, lazy=False)
        return lazy, eager

    (lazy, eager) = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment = Experiment(
        "E2b", "lazy linking surcharge when the whole graph is used",
        "fault-driven lazy linking is slower than linking everything "
        "up front if every module ends up used",
    )
    experiment.add("lazy total (all modules used)", lazy[1])
    experiment.add("eager total (all modules used)", eager[1])
    experiment.add("lazy faults", lazy[2].faults_serviced, unit="faults")
    report(experiment)
    assert lazy[2].faults_serviced == width
    assert eager[2].faults_serviced == 0
    # The lazy run pays extra fault+signal cycles.
    assert lazy[1] >= eager[1] * 0.9
