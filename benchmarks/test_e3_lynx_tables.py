"""E3 — Lynx compiler tables: persistent shared module vs translation.

Paper: the C version of the tables "is over 5400 lines, and takes 18
seconds to compile on a Sparcstation 1"; switching to a shared module
"would eliminate between 20 and 25% of code in the utility programs."

Three pipelines are measured for the compiler's table acquisition:
1. ASCII translate: parse the generators' numeric output on every run;
2. compile-and-link: emit (Toy) C source, compile it, link it in;
3. Hemlock: map the persistent shared segment and use it directly.
"""

from __future__ import annotations

import time

from repro import boot
from repro.apps.lynx import (
    build_expression_tables,
    parse_expression,
    read_tables_segment,
    tables_to_toyc,
    write_tables_segment,
)
from repro.apps.lynx.tablegen import load_tables_ascii, save_tables_ascii
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import make_shell
from repro.toyc import compile_source


def run_pipelines():
    system = boot()
    kernel = system.kernel
    generator = make_shell(kernel, "tablegen")
    compiler = make_shell(kernel, "lynx-compiler")

    tables = build_expression_tables()
    # Generator side: produce all three artifacts once.
    save_tables_ascii(kernel, generator, tables, "/tables.txt")
    write_tables_segment(kernel, generator, tables, "/shared/lynxtabs")
    c_source = tables_to_toyc(tables)

    # Warm the ASCII file so the comparison excludes the first-touch
    # disk seek (both paths would pay it equally).
    load_tables_ascii(kernel, compiler, "/tables.txt")
    read_tables_segment(kernel, compiler, "/shared/lynxtabs")

    start = kernel.clock.snapshot()
    ascii_tables = load_tables_ascii(kernel, compiler, "/tables.txt")
    ascii_cycles = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    shared_tables = read_tables_segment(kernel, compiler,
                                        "/shared/lynxtabs")
    shared_cycles = kernel.clock.snapshot() - start

    # The compile path is host work (the compiler itself); wall-time it.
    wall_start = time.perf_counter()
    compile_source(c_source, "lynx_tables.o")
    compile_seconds = time.perf_counter() - wall_start

    # Both table copies must drive the parser identically.
    for text, value in (("2+3*4", 14), ("(2+3)*4", 20)):
        assert parse_expression(ascii_tables, text) == value
        assert parse_expression(shared_tables, text) == value
    return ascii_cycles, shared_cycles, compile_seconds, c_source


def test_e3_lynx_tables(report, benchmark):
    ascii_cycles, shared_cycles, compile_seconds, c_source = \
        benchmark.pedantic(run_pipelines, rounds=1, iterations=1)

    experiment = Experiment(
        "E3", "Lynx compiler tables: shared module vs translation",
        "'the C version of the tables is over 5400 lines, and takes 18 "
        "seconds to compile'; sharing eliminates 20-25% of utility code",
    )
    experiment.add("table acquisition, ASCII translate", ascii_cycles)
    experiment.add("table acquisition, shared segment", shared_cycles)
    experiment.add("translate/shared ratio",
                   ratio(ascii_cycles, shared_cycles), unit="x")
    experiment.add("emitted table source", c_source.count("\n"),
                   unit="lines",
                   detail="paper's was 5400+ lines for the full grammar")
    experiment.add("compile-and-link pipeline",
                   round(compile_seconds * 1000, 3), unit="ms wall",
                   detail="paper's took 18 s on a Sparcstation 1")

    # The 20-25% code-elimination claim, measured on our own code: the
    # translation layer the shared pipeline no longer needs.
    import inspect
    from repro.apps.lynx import tablegen

    translation_lines = (
        len(inspect.getsource(tablegen.tables_to_ascii).splitlines())
        + len(inspect.getsource(tablegen.tables_from_ascii).splitlines())
        + len(inspect.getsource(tablegen.save_tables_ascii).splitlines())
        + len(inspect.getsource(tablegen.load_tables_ascii).splitlines())
    )
    module_lines = len(inspect.getsource(tablegen).splitlines())
    eliminated = 100 * translation_lines / module_lines
    experiment.add("translation code eliminated",
                   round(eliminated, 1), unit="% of pipeline module",
                   detail="paper reports 20-25%")
    report(experiment)

    assert shared_cycles < ascii_cycles
    assert 10 <= eliminated <= 50
