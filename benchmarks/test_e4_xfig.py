"""E4 — xfig: pointer-rich figures in segments vs ASCII translation.

Paper: the Hemlock xfig keeps its linked lists in a shared segment,
reuses the file routines for object duplication (800+ lines saved),
and pays for it with position dependence (§5: figures "can safely be
copied only by xfig itself").
"""

from __future__ import annotations

from repro import boot
from repro.apps.xfig import SharedFigure, generate_figure
from repro.apps.xfig.ascii import load_figure_ascii, save_figure_ascii
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import make_shell


def run_xfig(nobjects: int):
    system = boot()
    kernel = system.kernel
    editor = make_shell(kernel, "editor")
    figure = generate_figure(nobjects, seed=11)

    # Baseline: save (translate out) and load (translate in).
    start = kernel.clock.snapshot()
    save_figure_ascii(kernel, editor, figure, "/fig.txt")
    ascii_save = kernel.clock.delta(start)
    start = kernel.clock.snapshot()
    loaded = load_figure_ascii(kernel, editor, "/fig.txt")
    ascii_load = kernel.clock.delta(start)
    assert len(loaded.objects) == nobjects

    # Hemlock: the working representation is the persistent one.
    start = kernel.clock.snapshot()
    shared = SharedFigure(kernel, editor, "/shared/fig",
                          size=512 * 1024, create=True)
    shared.build_from(figure)
    shared_build = kernel.clock.delta(start)

    # "Saving" after edits: free. "Loading" in another process: mapping
    # plus walking the whole pointer structure (a full materialization,
    # to keep the comparison with the ASCII load apples-to-apples).
    viewer = make_shell(kernel, "viewer")
    start = kernel.clock.snapshot()
    reopened = SharedFigure(kernel, viewer, "/shared/fig")
    walked = reopened.to_figure()
    shared_open = kernel.clock.delta(start)
    assert len(walked.objects) == nobjects

    # Duplication through the reused routines.
    target = shared.object_addresses()[0]
    start = kernel.clock.snapshot()
    shared.copy_object(target)
    copy_cycles = kernel.clock.delta(start)
    return ascii_save, ascii_load, shared_build, shared_open, copy_cycles


def test_e4_xfig(report, benchmark):
    nobjects = 150
    results = benchmark.pedantic(run_xfig, args=(nobjects,), rounds=1,
                                 iterations=1)
    ascii_save, ascii_load, shared_build, shared_open, copy_cycles = \
        results

    experiment = Experiment(
        "E4", f"xfig: figure persistence ({nobjects} objects)",
        "pointer-rich lists live in the segment; save/load translation "
        "disappears; copy routines are reused (800+ lines saved)",
    )
    experiment.add("ASCII save (translate + write)", ascii_save)
    experiment.add("ASCII load (read + parse)", ascii_load)
    experiment.add("segment build (one-time)", shared_build)
    experiment.add("segment save after edits", 0,
                   detail="the working form IS the persistent form")
    experiment.add("segment open in new process", shared_open)
    experiment.add("open speedup vs ASCII load",
                   ratio(ascii_load, shared_open), unit="x")
    experiment.add("duplicate one object", copy_cycles,
                   detail="uses the same read/build routines as I/O")
    experiment.note(
        "position dependence: the figure segment is only valid at its "
        "own address — copyable only by xfig itself (§5)"
    )
    report(experiment)

    assert shared_open < ascii_load
