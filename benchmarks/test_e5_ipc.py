"""E5 — IPC microbenchmark: shared memory vs messages vs files.

Paper, claim 4 (§1): "When supported by hardware, shared memory is
generally faster than either messages or files, since operating system
overhead and copying costs can often be avoided." A producer hands N
records to a consumer through each mechanism.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import make_shell
from repro.fs.vfs import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem

RECORD_SIZE = 64


def transfer_via_files(kernel, producer, consumer, nrecords):
    sys = kernel.syscalls
    payload = bytes(range(RECORD_SIZE % 256)) * (RECORD_SIZE // 64)
    payload = (payload * (RECORD_SIZE // max(len(payload), 1) + 1)) \
        [:RECORD_SIZE]
    start = kernel.clock.snapshot()
    for index in range(nrecords):
        fd = sys.open(producer, f"/spool{index % 8}",
                      O_WRONLY | O_CREAT | O_TRUNC)
        sys.write(producer, fd, payload)
        sys.close(producer, fd)
        fd = sys.open(consumer, f"/spool{index % 8}", O_RDONLY)
        data = sys.read(consumer, fd, RECORD_SIZE)
        sys.close(consumer, fd)
        assert len(data) == RECORD_SIZE
    return kernel.clock.snapshot() - start


def transfer_via_messages(kernel, producer, consumer, nrecords):
    sys = kernel.syscalls
    payload = b"m" * RECORD_SIZE
    qid = sys.msgget(producer, 77)
    start = kernel.clock.snapshot()
    for _ in range(nrecords):
        sys.msgsnd(producer, qid, payload)
        data = sys.msgrcv(consumer, qid)
        assert len(data) == RECORD_SIZE
    return kernel.clock.snapshot() - start


def transfer_via_shared_memory(kernel, producer, consumer, nrecords):
    runtime = runtime_for(kernel, producer)
    runtime_for(kernel, consumer)
    base = runtime.create_segment("/shared/ring", 64 * 1024)
    produce = Mem(kernel, producer)
    consume = Mem(kernel, consumer)
    start = kernel.clock.snapshot()
    for index in range(nrecords):
        slot = base + 8 + (index % 64) * RECORD_SIZE
        produce.store_bytes(slot, b"s" * RECORD_SIZE)
        produce.store_u32(base, index + 1)      # publish
        assert consume.load_u32(base) == index + 1
        data = consume.load_bytes(slot, RECORD_SIZE)
        assert len(data) == RECORD_SIZE
    return kernel.clock.snapshot() - start


def run_ipc(nrecords: int):
    system = boot()
    kernel = system.kernel
    producer = make_shell(kernel, "producer")
    consumer = make_shell(kernel, "consumer")
    files = transfer_via_files(kernel, producer, consumer, nrecords)
    messages = transfer_via_messages(kernel, producer, consumer,
                                     nrecords)
    shared = transfer_via_shared_memory(kernel, producer, consumer,
                                        nrecords)
    return files, messages, shared


def test_e5_ipc(report, benchmark):
    nrecords = 200
    files, messages, shared = benchmark.pedantic(
        run_ipc, args=(nrecords,), rounds=1, iterations=1
    )
    experiment = Experiment(
        "E5", f"IPC: {nrecords} x {RECORD_SIZE}-byte transfers",
        "shared memory is generally faster than either messages or "
        "files: OS overhead and copying costs avoided (§1 claim 4)",
    )
    experiment.add("files (write + read back)", files)
    experiment.add("message queue (send + receive)", messages)
    experiment.add("shared memory (store + load)", shared)
    experiment.add("files/shared", ratio(files, shared), unit="x")
    experiment.add("messages/shared", ratio(messages, shared), unit="x")
    report(experiment)

    # The ordering the paper predicts: shared < messages < files.
    assert shared < messages < files
