"""E6 — Presto-style parallel application (§4 "Parallel Applications").

The paper replaced a 432-line assembly-editing post-processor with
plain lds arguments + the temp-dir/symlink/LD_LIBRARY_PATH idiom. The
benchmark runs the full lifecycle at several worker counts and checks
the computation stays exact while work spreads across workers.
"""

from __future__ import annotations

from repro import boot
from repro.apps.presto import PrestoApp
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell


def run_presto(nitems: int, worker_counts):
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    app = PrestoApp(kernel, shell, nitems=nitems)
    results = {}
    for nworkers in worker_counts:
        start = kernel.clock.snapshot()
        outcome = app.run_instance(nworkers=nworkers)
        cycles = kernel.clock.snapshot() - start
        assert outcome.total == app.expected_total()
        results[nworkers] = (cycles, outcome.per_worker_items)
    return app, results


def test_e6_presto(report, benchmark):
    nitems = 48
    app, results = benchmark.pedantic(
        run_presto, args=(nitems, (1, 2, 4)), rounds=1, iterations=1
    )
    experiment = Experiment(
        "E6", f"Presto parallel run ({nitems} work items)",
        "shared variables in a separate file linked as a dynamic public "
        "module; per-instance data via temp dir + symlink + "
        "LD_LIBRARY_PATH; no assembly post-processor",
    )
    for nworkers, (cycles, per_worker) in results.items():
        experiment.add(
            f"{nworkers} worker(s), full lifecycle", cycles,
            detail=f"items per worker: {per_worker}",
        )
    experiment.note(
        f"every instance computed the exact total "
        f"{app.expected_total()} and cleaned up its directory"
    )
    report(experiment)

    # With several workers, the work was actually distributed.
    multi = results[4][1]
    assert sum(multi) == nitems
    assert sum(1 for count in multi if count > 0) >= 2
