"""E7 — client/server interaction through shared data (§4, §6).

§4 "Utility Programs and Servers": "When synchronous interaction is not
required, modification of data that will be examined by another process
at another time can be expected to consume significantly less time than
kernel-supported message passing or remote procedure calls. Even when
synchronous communication across protection domains is required,
sharing between the client and server can speed the call."

Three server interaction styles, N calls each:

1. message RPC — request queue + reply queue (two syscalls + two copies
   per direction, the kernel-supported RPC baseline);
2. shared-memory synchronous call — arguments and results in a shared
   segment, one semaphore handoff each way (the §6 plan approximated
   with existing kernel primitives);
3. asynchronous shared data — the client just writes the record the
   server will examine later (the "not required to be synchronous"
   fast path).
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import make_shell
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem


def _serve(request: int) -> int:
    return request * 2 + 1


def rpc_via_messages(kernel, client, server, ncalls: int) -> int:
    sys = kernel.syscalls
    req = sys.msgget(client, 1)
    rep = sys.msgget(server, 2)
    start = kernel.clock.snapshot()
    for index in range(ncalls):
        sys.msgsnd(client, req, index.to_bytes(4, "little"))
        request = int.from_bytes(sys.msgrcv(server, req), "little")
        sys.msgsnd(server, rep, _serve(request).to_bytes(4, "little"))
        reply = int.from_bytes(sys.msgrcv(client, rep), "little")
        assert reply == _serve(index)
    return kernel.clock.snapshot() - start


def rpc_via_shared_call(kernel, client, server, ncalls: int) -> int:
    sys = kernel.syscalls
    runtime = runtime_for(kernel, client)
    runtime_for(kernel, server)
    base = runtime.create_segment("/shared/callframe", 4096)
    cmem = Mem(kernel, client)
    smem = Mem(kernel, server)
    sys.semget(client, 11, 0)   # "request posted"
    sys.semget(client, 12, 0)   # "reply ready"
    start = kernel.clock.snapshot()
    for index in range(ncalls):
        cmem.store_u32(base, index)          # argument record
        sys.sem_v(client, 11)
        assert sys.sem_try_p(server, 11)     # server wakes
        request = smem.load_u32(base)
        smem.store_u32(base + 4, _serve(request))
        sys.sem_v(server, 12)
        assert sys.sem_try_p(client, 12)     # client resumes
        assert cmem.load_u32(base + 4) == _serve(index)
    return kernel.clock.snapshot() - start


def async_shared_data(kernel, client, server, ncalls: int) -> int:
    runtime = runtime_for(kernel, client)
    runtime_for(kernel, server)
    base = runtime.create_segment("/shared/ledger", 64 * 1024)
    cmem = Mem(kernel, client)
    smem = Mem(kernel, server)
    start = kernel.clock.snapshot()
    for index in range(ncalls):
        cmem.store_u32(base + 4 + 4 * index, index)
    cmem.store_u32(base, ncalls)             # publish the count
    # The server examines the data "at another time":
    count = smem.load_u32(base)
    for index in range(count):
        assert smem.load_u32(base + 4 + 4 * index) == index
    return kernel.clock.snapshot() - start


def run_rpc(ncalls: int):
    system = boot()
    kernel = system.kernel
    client = make_shell(kernel, "client")
    server = make_shell(kernel, "server")
    messages = rpc_via_messages(kernel, client, server, ncalls)
    shared_call = rpc_via_shared_call(kernel, client, server, ncalls)
    async_cycles = async_shared_data(kernel, client, server, ncalls)
    return messages, shared_call, async_cycles


def test_e7_rpc(report, benchmark):
    ncalls = 150
    messages, shared_call, async_cycles = benchmark.pedantic(
        run_rpc, args=(ncalls,), rounds=1, iterations=1
    )
    experiment = Experiment(
        "E7", f"client/server interaction, {ncalls} calls",
        "sharing between client and server speeds the call; "
        "asynchronous shared data beats RPC outright",
    )
    experiment.add("message RPC (request+reply queues)", messages)
    experiment.add("synchronous call via shared memory", shared_call)
    experiment.add("asynchronous shared data", async_cycles)
    experiment.add("message RPC / shared call",
                   ratio(messages, shared_call), unit="x")
    experiment.add("message RPC / async",
                   ratio(messages, async_cycles), unit="x")
    experiment.note(
        "the §6 protection-domain-switch call is approximated with a "
        "semaphore handoff over existing kernel primitives"
    )
    report(experiment)

    assert async_cycles < shared_call < messages
