"""E8 — administrative files as shared data (§4 "Administrative Files").

"Most of the files described in section 5 of the Unix manual ... are
really long-lived data structures. It seems highly inefficient, both
computationally and in terms of programmer effort, to employ access
routines for each of these objects whose sole purpose is to translate
what are logically shared data structure operations into file system
reads and writes."

The probe database is /etc/passwd with 200 users; the workload is the
classic NSS pattern — many getpwnam lookups, occasional edits.
"""

from __future__ import annotations

from repro import boot
from repro.apps.admin import FilePasswd, SharedPasswd, generate_users
from repro.bench.harness import Experiment, ratio
from repro.bench.workloads import make_shell

NUSERS = 200
LOOKUPS = 50
EDITS = 10


def run_admin():
    system = boot()
    kernel = system.kernel
    admin = make_shell(kernel, "admin")
    client = make_shell(kernel, "nss-client")
    users = generate_users(NUSERS)

    text_db = FilePasswd(kernel, admin)
    shm_db = SharedPasswd(kernel, admin)
    text_db.write_all(users)
    shm_db.write_all(users)
    client_text = FilePasswd(kernel, client)
    client_shm = SharedPasswd(kernel, client)
    client_text.getpwnam("user000")   # warm file cache
    client_shm.getpwnam("user000")    # map the segment

    start = kernel.clock.snapshot()
    for index in range(LOOKUPS):
        entry = client_text.getpwnam(f"user{(index * 7) % NUSERS:03d}")
        assert entry is not None
    text_lookup = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    for index in range(LOOKUPS):
        entry = client_shm.getpwnam(f"user{(index * 7) % NUSERS:03d}")
        assert entry is not None
    shm_lookup = kernel.clock.snapshot() - start

    def bump_shell(entry):
        entry.shell = "/bin/ksh"

    start = kernel.clock.snapshot()
    for index in range(EDITS):
        text_db.vipw(lambda entries, i=index:
                     bump_shell(entries[i]))
    text_edit = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    for index in range(EDITS):
        shm_db.update_entry(f"user{index:03d}", bump_shell)
    shm_edit = kernel.clock.snapshot() - start

    return text_lookup, shm_lookup, text_edit, shm_edit


def test_e8_admin_files(report, benchmark):
    text_lookup, shm_lookup, text_edit, shm_edit = benchmark.pedantic(
        run_admin, rounds=1, iterations=1
    )
    experiment = Experiment(
        "E8", f"/etc/passwd with {NUSERS} users: text file vs shared "
              f"data structure",
        "administrative files are long-lived data structures; access "
        "routines that translate to file reads/writes are inefficient "
        "computationally and in programmer effort",
    )
    experiment.add(f"{LOOKUPS} getpwnam, text file", text_lookup)
    experiment.add(f"{LOOKUPS} getpwnam, shared db", shm_lookup)
    experiment.add("lookup speedup", ratio(text_lookup, shm_lookup),
                   unit="x")
    experiment.add(f"{EDITS} locked edits, vipw rewrite", text_edit)
    experiment.add(f"{EDITS} locked edits, in-place", shm_edit)
    experiment.add("edit speedup", ratio(text_edit, shm_edit), unit="x")
    experiment.note(
        "the shared db still exports/imports the text form on demand — "
        "the terminfo answer to §5's Loss of Commonality"
    )
    report(experiment)

    assert shm_lookup * 3 < text_lookup
    assert shm_edit < text_edit
