"""E9 — software TLB + decode cache: host speed, zero cycle drift.

Not a paper experiment: this guards the repo's own hot loop. The
per-address-space TLB and per-frame decoded-instruction cache must make
execution-bound workloads measurably faster on the host while leaving
every simulated number — cycles, instructions, faults — bit-identical
to the pre-TLB seed. Wall-clock numbers (baseline vs. TLB) land in
``BENCH_E9_TLB.json`` so successive runs leave a trajectory.
"""

from __future__ import annotations

import time

from repro import boot
from repro.bench.harness import Experiment, ratio, write_bench_json
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.hw.asm import assemble
from repro.linker.lds import LinkRequest, store_object
from repro.vm.address_space import (
    default_tlb_enabled,
    set_default_tlb_enabled,
)

# Pre-TLB seed totals for the E2 fanout (width=12, used=1) — the same
# pins tests/test_trace.py and tests/test_vm_tlb.py enforce. Any drift
# here fails the CI benchmark smoke job.
SEED_E2_LAZY_TOTAL = 584_767
SEED_E2_EAGER_TOTAL = 1_614_169

LOOP_ITERATIONS = 100_000

LOOP_SOURCE = f"""
        .text
        .globl main
main:
        li t0, {LOOP_ITERATIONS}
        move v0, zero
        la t1, buf
loop:
        sw t0, 0(t1)
        lw t2, 0(t1)
        add v0, v0, t2
        addi t0, t0, -1
        bgtz t0, loop
        andi v0, v0, 0xFF
        jr ra
        .data
buf:    .word 0
"""


def run_loop():
    """A CPU-bound store/load/branch loop: the TLB's best case."""
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    store_object(kernel, shell, "/loop.o",
                 assemble(LOOP_SOURCE, "loop.o"))
    result = system.lds.link(shell, [LinkRequest("/loop.o")],
                             output="/loop")
    proc = kernel.create_machine_process("loop", result.executable)
    start = kernel.clock.snapshot()
    wall_start = time.perf_counter()
    code = kernel.run_until_exit(proc)
    wall = time.perf_counter() - wall_start
    cycles = kernel.clock.delta(start)
    expected = sum(range(1, LOOP_ITERATIONS + 1)) & 0xFF
    assert code == expected
    return wall, cycles, proc.cpu.instructions_executed, \
        proc.address_space.tlb_stats(), proc.cpu.decode_hits


def run_fanout(width: int, used: int, lazy: bool):
    """The E2 workload, timed on both clocks."""
    system = boot(lazy=lazy)
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_fanout(kernel, shell, width=width, used=used,
                                module_dir="/shared/fan")
    start = kernel.clock.snapshot()
    wall_start = time.perf_counter()
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    wall = time.perf_counter() - wall_start
    total = kernel.clock.delta(start)
    assert code == fanout_expected_exit(used)
    return wall, total


def _with_tlb(enabled: bool, fn, *args):
    saved = default_tlb_enabled()
    set_default_tlb_enabled(enabled)
    try:
        return fn(*args)
    finally:
        set_default_tlb_enabled(saved)


def test_e9_tlb_speedup_and_cycle_identity(report, benchmark):
    def run():
        baseline = _with_tlb(False, run_loop)
        fast = _with_tlb(True, run_loop)
        e2_base = _with_tlb(False, run_fanout, 12, 1, True)
        e2_fast = _with_tlb(True, run_fanout, 12, 1, True)
        e2_eager = _with_tlb(True, run_fanout, 12, 1, False)
        return baseline, fast, e2_base, e2_fast, e2_eager

    baseline, fast, e2_base, e2_fast, e2_eager = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    base_wall, base_cycles, base_instr, base_stats, _ = baseline
    tlb_wall, tlb_cycles, tlb_instr, tlb_stats, decode_hits = fast

    experiment = Experiment(
        "E9_TLB",
        f"software TLB + decode cache on a {LOOP_ITERATIONS}-iteration "
        f"store/load loop",
        "translation caching is a pure host-speed optimization: the "
        "simulated machine cannot observe it",
    )
    experiment.add("simulated cycles (TLB off)", base_cycles)
    experiment.add("simulated cycles (TLB on)", tlb_cycles)
    experiment.add("instructions (both)", tlb_instr, unit="instructions")
    experiment.add("TLB hits", tlb_stats["hits"], unit="hits")
    experiment.add("decode-cache hits", decode_hits, unit="hits")
    experiment.add("host speedup", ratio(base_wall, tlb_wall), unit="x",
                   detail=f"{base_wall:.3f}s -> {tlb_wall:.3f}s")
    experiment.add("E2 lazy total (TLB on)", e2_fast[1],
                   detail="pinned to pre-TLB seed")
    report(experiment)

    write_bench_json(experiment, wall_seconds={
        "loop_tlb_off": base_wall,
        "loop_tlb_on": tlb_wall,
        "e2_lazy_tlb_off": e2_base[0],
        "e2_lazy_tlb_on": e2_fast[0],
    })

    # Zero perturbation: every simulated number is identical.
    assert base_cycles == tlb_cycles
    assert base_instr == tlb_instr
    assert e2_base[1] == e2_fast[1] == SEED_E2_LAZY_TOTAL
    assert e2_eager[1] == SEED_E2_EAGER_TOTAL
    # The baseline run never touched a TLB; the fast run lived in it.
    assert base_stats["hits"] == base_stats["fills"] == 0
    assert tlb_stats["hits"] > 2 * LOOP_ITERATIONS
    assert decode_hits > 4 * LOOP_ITERATIONS
    # The host win is the point: ~2.7x measured; demand a safe margin.
    assert tlb_wall < base_wall * 0.75
