"""F1 — Figure 1: building a program with linked-in shared objects.

Reproduces the whole toolchain flow: shared ``.c`` files compiled once,
two programs each built from private sources + lds arguments, shared
modules created by ldl on first use, and genuine write sharing between
the two executing programs. Reports the cost of each stage.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.toyc import compile_source

SHARED_SOURCE = """
int mailbox[16];
int mail_count = 0;
int post(int value) {
    mailbox[mail_count] = value;
    mail_count = mail_count + 1;
    return mail_count;
}
"""

PROGRAM_1 = """
extern int post(int value);
int main() { post(11); post(12); return 0; }
"""

PROGRAM_2 = """
extern int post(int value);
extern int mailbox[16];
extern int mail_count;
int main() {
    int i;
    int sum = 0;
    post(13);
    for (i = 0; i < mail_count; i = i + 1) { sum = sum + mailbox[i]; }
    return sum;
}
"""


def run_flow():
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")

    cycles = {}
    start = kernel.clock.snapshot()
    store_object(kernel, shell, "/shared/lib/mail.o",
                 compile_source(SHARED_SOURCE, "mail.o"))
    store_object(kernel, shell, "/p1.o", compile_source(PROGRAM_1, "p1.o"))
    store_object(kernel, shell, "/p2.o", compile_source(PROGRAM_2, "p2.o"))
    cycles["cc (3 files)"] = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    exe1 = system.lds.link(
        shell,
        [LinkRequest("/p1.o"),
         LinkRequest("mail.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin1", search_dirs=["/shared/lib"],
    ).executable
    exe2 = system.lds.link(
        shell,
        [LinkRequest("/p2.o"),
         LinkRequest("mail.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin2", search_dirs=["/shared/lib"],
    ).executable
    cycles["lds (2 programs)"] = kernel.clock.snapshot() - start

    start = kernel.clock.snapshot()
    p1 = kernel.create_machine_process("p1", exe1)
    cycles["exec+ldl first (creates module)"] = \
        kernel.clock.snapshot() - start
    code1 = kernel.run_until_exit(p1)

    start = kernel.clock.snapshot()
    p2 = kernel.create_machine_process("p2", exe2)
    cycles["exec+ldl second (maps module)"] = \
        kernel.clock.snapshot() - start
    code2 = kernel.run_until_exit(p2)
    return cycles, code1, code2, kernel


def test_fig1_build_flow(report, benchmark):
    cycles, code1, code2, kernel = benchmark.pedantic(
        run_flow, rounds=1, iterations=1
    )
    assert code1 == 0
    assert code2 == 11 + 12 + 13   # program 2 saw program 1's posts
    assert kernel.vfs.exists("/shared/lib/mail")

    experiment = Experiment(
        "F1", "Figure 1: building a program with linked-in shared objects",
        "shared .o linked into two programs; created by ldl on first use",
    )
    for label, value in cycles.items():
        experiment.add(label, value)
    experiment.note(
        f"program 2 read program 1's data in place (exit={code2}); "
        "no set-up calls appear in either program's source"
    )
    report(experiment)
    # The second exec maps the existing module instead of re-creating
    # it, so it must be cheaper than the first.
    assert cycles["exec+ldl second (maps module)"] < \
        cycles["exec+ldl first (creates module)"]
