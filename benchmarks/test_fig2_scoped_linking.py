"""F2 — Figure 2: hierarchical inclusion of dynamically-linked modules.

Builds the recursive chain (each module's code discovered through the
previous module's scope), verifies the DAG's child-up resolution order
with a name-shadowing probe, and reports how linking work unfolds
lazily as execution walks down the chain.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment
from repro.bench.workloads import (
    build_module_chain,
    chain_expected_exit,
    make_shell,
)


def run_chain(depth: int):
    system = boot(lazy=True)
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_chain(kernel, shell, depth=depth,
                               module_dir="/shared/chain")
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    return graph, proc, code, kernel


def test_fig2_recursive_inclusion(report, benchmark):
    depth = 8
    graph, proc, code, kernel = benchmark.pedantic(
        run_chain, args=(depth,), rounds=1, iterations=1
    )
    assert code == chain_expected_exit(depth)
    stats = proc.runtime.ldl.stats

    experiment = Experiment(
        "F2", "Figure 2: hierarchical inclusion of dynamic modules",
        "linking a single module starts a chain reaction incorporating "
        "modules the original programmer knew nothing about; children "
        "search up toward the root, never down",
    )
    experiment.add("modules named on the lds line",
                   len(graph.executable.link_info.dynamic_modules),
                   unit="modules")
    experiment.add("modules brought in transitively",
                   stats.modules_created, unit="modules")
    experiment.add("lazy-link faults serviced", stats.faults_serviced,
                   unit="faults")
    experiment.add("relocations patched at run time",
                   stats.relocs_patched, unit="relocs")
    experiment.add("scope lookups", stats.scope_lookups, unit="lookups")
    experiment.note(
        f"one named module unfolded into a chain of {depth}; every link "
        f"step happened at first touch, not at start-up"
    )
    report(experiment)

    assert len(graph.executable.link_info.dynamic_modules) == 1
    assert stats.modules_created == depth
    # Faults drive the chain: one per not-yet-linked module touched.
    assert stats.faults_serviced >= depth - 1
