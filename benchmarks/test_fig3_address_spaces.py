"""F3 — Figure 3: Hemlock address spaces.

Boots two programs sharing a module and regenerates the figure's
content: the architected region boundaries, proof that the public
portion appears at identical addresses in both processes, and proof
that private addresses are overloaded.
"""

from __future__ import annotations

from repro import boot
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.toyc import compile_source
from repro.vm.layout import (
    HEAP_REGION,
    KERNEL_REGION,
    SFS_REGION,
    STACK_REGION,
    TEXT_REGION,
    is_public_address,
)

SHARED = "int beacon = 0xBEEF;"
MAIN = """
extern int beacon;
int private_word = 1;
int main() { return beacon & 0xFF; }
"""


def run_two_processes():
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")
    store_object(kernel, shell, "/shared/lib/beacon.o",
                 compile_source(SHARED, "beacon.o"))
    store_object(kernel, shell, "/main.o", compile_source(MAIN, "main.o"))
    exe = system.lds.link(
        shell,
        [LinkRequest("/main.o"),
         LinkRequest("beacon.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin", search_dirs=["/shared/lib"],
    ).executable
    p1 = kernel.create_machine_process("p1", exe)
    p2 = kernel.create_machine_process("p2", exe)
    beacon1 = p1.runtime.resolve_symbol("beacon")
    beacon2 = p2.runtime.resolve_symbol("beacon")
    private = exe.symbols["private_word"].value
    kernel.schedule()
    return beacon1, beacon2, private, (p1, p2)


def test_fig3_address_spaces(report, benchmark):
    beacon1, beacon2, private, procs = benchmark.pedantic(
        run_two_processes, rounds=1, iterations=1
    )
    experiment = Experiment(
        "F3", "Figure 3: Hemlock address spaces (32-bit)",
        "0x0-0x10000000 text, 0x10000000-0x30000000 heap, "
        "0x30000000-0x70000000 shared file system (1 GiB), "
        "0x70000000-0x7FFF0000 stack, kernel above 0x80000000",
    )
    for region in (TEXT_REGION, HEAP_REGION, SFS_REGION, STACK_REGION,
                   KERNEL_REGION):
        portion = "public" if region.public else "private"
        experiment.add(
            region.name, region.size // (1 << 20), unit="MiB",
            detail=f"0x{region.start:08x}-0x{region.end:08x} ({portion})",
        )
    experiment.add("shared symbol addr, process 1", beacon1, unit="addr")
    experiment.add("shared symbol addr, process 2", beacon2, unit="addr")
    experiment.add("private symbol addr (both)", private, unit="addr")
    experiment.note(
        "the public symbol resolves to the same address in both "
        "protection domains; the private one is overloaded"
    )
    report(experiment)

    assert beacon1 == beacon2
    assert is_public_address(beacon1)
    assert not is_public_address(private)
    assert SFS_REGION.size == 1 << 30
    for proc in procs:
        assert proc.exit_code == 0xEF
