"""T1 — Table 1: class creation and link times.

Regenerates the table from *observed system behaviour* rather than from
the enum's self-description: for each sharing class, a probe program is
linked and run twice, and the three columns are derived from what the
system actually did (when linking work happened, whether the second
process saw a fresh instance, and which address portion the module
landed in).
"""

from __future__ import annotations

import pytest

from repro import boot
from repro.bench.harness import Experiment
from repro.bench.workloads import make_shell
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.toyc import compile_source
from repro.vm.layout import is_public_address

COUNTER_MODULE = """
int probe_counter = 0;
int probe_bump() {
    probe_counter = probe_counter + 1;
    return probe_counter;
}
"""

MAIN = """
extern int probe_bump();
int main() { return probe_bump(); }
"""


def observe_class(sharing: SharingClass):
    """Returns (linked_at, new_instance, portion) observed for *sharing*."""
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")
    store_object(kernel, shell, "/shared/lib/probe.o",
                 compile_source(COUNTER_MODULE, "probe.o"))
    store_object(kernel, shell, "/main.o", compile_source(MAIN, "main.o"))

    requests = [LinkRequest("/main.o"), LinkRequest("probe.o", sharing)]
    result = system.lds.link(shell, requests, output="/bin",
                             search_dirs=["/shared/lib"])

    # When was the module linked? Static classes leave no unresolved
    # reference to probe_bump in the executable; dynamic classes retain
    # the relocation for ldl.
    unresolved = {r.symbol for r in result.executable.relocations}
    linked_at = ("run time" if "probe_bump" in unresolved
                 else "static link time")

    p1 = kernel.create_machine_process("p1", result.executable)
    first = kernel.run_until_exit(p1)
    p2 = kernel.create_machine_process("p2", result.executable)
    second = kernel.run_until_exit(p2)
    # A fresh instance resets the counter; a shared one keeps counting.
    new_instance = (second == first)

    # Which portion did the module's counter land in?
    p3 = kernel.create_machine_process("p3", result.executable)
    address = p3.runtime.resolve_symbol("probe_counter")
    assert address is not None
    portion = "public" if is_public_address(address) else "private"
    kernel.run_until_exit(p3)
    return linked_at, new_instance, portion


@pytest.mark.parametrize("sharing", SharingClass.table1(),
                         ids=lambda c: c.value)
def test_table1_row(sharing, report, benchmark):
    observed = benchmark.pedantic(observe_class, args=(sharing,),
                                  rounds=1, iterations=1)
    linked_at, new_instance, portion = observed
    assert linked_at == sharing.when_linked
    assert new_instance == sharing.new_instance_per_process
    assert portion == sharing.address_portion


def test_table1_full(report, benchmark):
    experiment = Experiment(
        "T1", "Table 1: class creation and link times",
        "static classes link at static link time, dynamic at run time; "
        "private classes get a new instance per process; public classes "
        "live in the public portion",
    )

    def run():
        return [observe_class(sharing)
                for sharing in SharingClass.table1()]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for sharing, (linked_at, new_instance, portion) in \
            zip(SharingClass.table1(), rows):
        experiment.add(
            sharing.value.replace("_", " "),
            1 if new_instance else 0,
            unit="new instance/process",
            detail=f"linked at {linked_at}; {portion} portion",
        )
    report(experiment)
