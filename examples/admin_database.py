"""Administrative files as shared data (§4 "Administrative Files").

/etc/passwd, both ways: the classic text file that every getpwnam
re-reads and re-parses, and the Hemlock version — a shared data
structure looked up in place, edited under the vipw lock, validated by
ckpw, and still exportable to text for grep (§5's terminfo answer to
"Loss of Commonality").

Run:  python examples/admin_database.py
"""

from repro import boot
from repro.apps.admin import FilePasswd, SharedPasswd, generate_users
from repro.bench.workloads import make_shell


def main() -> None:
    system = boot()
    kernel = system.kernel
    admin = make_shell(kernel, "root-admin")
    nss = make_shell(kernel, "login-process")

    users = generate_users(150)
    print(f"== populating both databases with {len(users)} users ==")
    text_db = FilePasswd(kernel, admin)
    shm_db = SharedPasswd(kernel, admin)
    text_db.write_all(users)
    shm_db.write_all(users)

    print("\n== a login process resolves a user ==")
    client = SharedPasswd(kernel, nss)
    entry = client.getpwnam("user042")
    print(f"  user042 -> uid {entry.uid}, home {entry.home}, "
          f"shell {entry.shell}")

    print("\n== cost of one lookup ==")
    FilePasswd(kernel, nss).getpwnam("user042")  # warm the file cache
    start = kernel.clock.snapshot()
    FilePasswd(kernel, nss).getpwnam("user042")
    file_cycles = kernel.clock.snapshot() - start
    start = kernel.clock.snapshot()
    client.getpwnam("user042")
    shm_cycles = kernel.clock.snapshot() - start
    print(f"  text file: {file_cycles:8,} cycles "
          f"(read + parse the whole file)")
    print(f"  shared db: {shm_cycles:8,} cycles (walk records in place)")

    print("\n== vipw: a locked, validated edit ==")
    shm_db.update_entry("user042",
                        lambda e: setattr(e, "shell", "/bin/zsh"))
    print("  user042's shell ->", client.getpwnam("user042").shell)

    print("\n== ckpw rejects a bad edit before it commits ==")
    try:
        shm_db.update_entry("user000",
                            lambda e: setattr(e, "home", "oops"))
    except Exception as error:
        print(f"  rejected: {error}")
    assert client.getpwnam("user000").home == "/home/user000"

    print("\n== the text bridge (Loss of Commonality, §5) ==")
    shm_db.export_text("/etc/passwd.export")
    text = kernel.vfs.read_whole("/etc/passwd.export").decode("latin-1")
    print("  exported for grep; first line:")
    print("   ", text.splitlines()[0])


if __name__ == "__main__":
    main()
