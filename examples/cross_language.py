"""Language heterogeneity (§6) with hgen.

One shared abstraction, three languages: the module is written in Toy C;
hgen generates (a) a Toy C header so other C programs can name its
objects, and (b) a Python accessor class so native processes get the
same names — definitions and access routines translated automatically
from the object file's symbol table, the lowest common denominator.

Run:  python examples/cross_language.py
"""

from repro import LinkRequest, SharingClass, boot
from repro.bench.workloads import make_shell
from repro.linker.lds import store_object
from repro.runtime.libshared import runtime_for
from repro.tools.hgen import (
    generate_toyc_header,
    load_python_accessors,
)
from repro.toyc import compile_source

MODULE_SOURCE = """
/* scoreboard.c — the shared abstraction, written once, in C */
int games_played = 0;
int scores[8];
char champion[16];

int record_game(int slot, int score) {
    scores[slot] = score;
    games_played = games_played + 1;
    return games_played;
}
"""


def main() -> None:
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")

    module = compile_source(MODULE_SOURCE, "scoreboard.o")
    store_object(kernel, shell, "/shared/lib/scoreboard.o", module)

    print("== hgen: the generated C-side header ==")
    header = generate_toyc_header(module)
    print(header)

    print("== a C program uses the header ==")
    consumer = header + """
        int main() {
            record_game(0, 95);
            record_game(1, 88);
            return scores[0] - scores[1];
        }
    """
    store_object(kernel, shell, "/game.o",
                 compile_source(consumer, "game.o"))
    exe = system.lds.link(
        shell,
        [LinkRequest("/game.o"),
         LinkRequest("scoreboard.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin_game", search_dirs=["/shared/lib"],
    ).executable
    proc = kernel.create_machine_process("game", exe)
    print(f"  game exited with {kernel.run_until_exit(proc)} "
          f"(scores[0] - scores[1])")

    print("\n== a Python-side process uses the generated accessors ==")
    runtime = runtime_for(kernel, shell)
    runtime.start_native(search_dirs=["/shared/lib"])
    board = load_python_accessors(module, runtime,
                                  class_name="Scoreboard")
    print(f"  games_played = {board.get_games_played()} "
          f"(the C program's two games)")
    print(f"  scores[0] = {board.get_scores(0)}, "
          f"scores[1] = {board.get_scores(1)}")
    board.set_champion("py-player")
    board.set_scores(2, 100)
    print("  Python wrote champion and a third score...")

    print("\n== and the C side sees Python's writes ==")
    checker = header + """
        int main() { return scores[2] + (champion[0] == 'p'); }
    """
    store_object(kernel, shell, "/check.o",
                 compile_source(checker, "check.o"))
    exe2 = system.lds.link(
        shell,
        [LinkRequest("/check.o"),
         LinkRequest("scoreboard.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin_check", search_dirs=["/shared/lib"],
    ).executable
    proc2 = kernel.create_machine_process("check", exe2)
    result = kernel.run_until_exit(proc2)
    print(f"  checker exited with {result} (scores[2] + champion test)")
    assert result == 101


if __name__ == "__main__":
    main()
