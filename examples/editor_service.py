"""The editor-as-a-function vision (§3).

"We envision, for example, rewriting the emacs editor with a functional
interface to which every process with a text window can be linked. With
lazy linking, we would not bother to bring the editor's more esoteric
features into a particular process's address space unless and until
they were needed."

This example builds exactly that shape: an editor *core* module (buffer
storage + insert/length), plus two "esoteric feature" modules —
``editor_upcase`` and ``editor_stats`` — that the core knows how to
find through its own scoped search path. Two client programs link only
the core; the first uses just the basics, the second calls a feature.
Watch ldl bring in only what each client actually touches.

Run:  python examples/editor_service.py
"""

from repro import LinkRequest, SharingClass, boot
from repro.bench.workloads import make_shell
from repro.linker.lds import store_object
from repro.toyc import compile_source

# The editor's core: a shared buffer with a functional interface.
EDITOR_CORE = """
char buffer[256];
int length = 0;

int ed_insert(int ch) {
    buffer[length] = ch;
    length = length + 1;
    return length;
}

int ed_length() { return length; }
"""

# An esoteric feature: upcase the whole buffer.
EDITOR_UPCASE = """
extern char buffer[256];
extern int length;

int ed_upcase() {
    int i;
    for (i = 0; i < length; i = i + 1) {
        if (buffer[i] >= 'a') {
            if (buffer[i] <= 'z') {
                buffer[i] = buffer[i] - 32;
            }
        }
    }
    return length;
}
"""

# Another: count vowels.
EDITOR_STATS = """
extern char buffer[256];
extern int length;

int ed_vowels() {
    int i;
    int count = 0;
    for (i = 0; i < length; i = i + 1) {
        int c = buffer[i];
        if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
            count = count + 1;
        }
    }
    return count;
}
"""

BASIC_CLIENT = """
extern int ed_insert(int ch);
extern int ed_length();
int main() {
    ed_insert('h');
    ed_insert('e');
    ed_insert('l');
    ed_insert('l');
    ed_insert('o');
    return ed_length();
}
"""

POWER_CLIENT = """
extern int ed_insert(int ch);
extern int ed_upcase();
extern int ed_vowels();
extern char buffer[256];
int main() {
    int vowels = ed_vowels();   /* feature module faulted in here */
    ed_upcase();                /* and the second one here */
    return vowels * 100 + buffer[0];
}
"""


def main() -> None:
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/editor")

    # The core carries its own module list: the features live in its
    # directory and are found through *its* scope, not the clients'.
    core = compile_source(EDITOR_CORE, "editor_core.o")
    core = system.lds.add_link_info(
        core, search_dirs=["/shared/editor"],
    )
    store_object(kernel, shell, "/shared/editor/editor_core.o", core)
    store_object(kernel, shell, "/shared/editor/ed_upcase.o",
                 compile_source(EDITOR_UPCASE, "ed_upcase.o"))
    store_object(kernel, shell, "/shared/editor/ed_vowels.o",
                 compile_source(EDITOR_STATS, "ed_vowels.o"))

    store_object(kernel, shell, "/basic.o",
                 compile_source(BASIC_CLIENT, "basic.o"))
    store_object(kernel, shell, "/power.o",
                 compile_source(POWER_CLIENT, "power.o"))

    def link(main_obj, out):
        return system.lds.link(
            shell,
            [LinkRequest(main_obj),
             LinkRequest("editor_core.o", SharingClass.DYNAMIC_PUBLIC)],
            output=out, search_dirs=["/shared/editor"],
        ).executable

    basic_exe = link("/basic.o", "/bin_basic")
    power_exe = link("/power.o", "/bin_power")

    print("== basic client: types 'hello' ==")
    basic = kernel.create_machine_process("basic", basic_exe)
    code = kernel.run_until_exit(basic)
    stats = basic.runtime.ldl.stats
    print(f"  buffer length: {code}")
    print(f"  modules linked: {stats.modules_linked} "
          f"(core only — no esoteric features in this address space)")
    assert stats.modules_linked <= 1 or stats.modules_mapped >= 1

    print("\n== power client: uses the esoteric features ==")
    power = kernel.create_machine_process("power", power_exe)
    code = kernel.run_until_exit(power)
    stats = power.runtime.ldl.stats
    vowels, first = divmod(code, 100)
    print(f"  vowels in the shared buffer: {vowels} "
          f"('hello' from the other client!)")
    print(f"  buffer[0] after ed_upcase: {chr(first)!r}")
    print(f"  modules mapped: {stats.modules_mapped}, "
          f"created: {stats.modules_created} "
          f"(the feature modules came in on demand)")
    assert vowels == 2 and chr(first) == "H"

    print("\nthe editor is a set of linked-in functions; each window "
          "process carries only the features it used")


if __name__ == "__main__":
    main()
