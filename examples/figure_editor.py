"""The Hemlock xfig (§4 "Programs with Non-Linear Data Structures").

A figure is a linked list of drawing objects. The original xfig
translated it to and from a pointer-free ASCII file on every save and
load; the Hemlock version keeps the pointer-rich lists in a shared
segment, so "saving" is free, "loading" is mapping, a second process
(say, a previewer) can walk the same structure live, and object
duplication reuses the persistence routines — the paper's 800 saved
lines.

Run:  python examples/figure_editor.py
"""

from repro import boot
from repro.apps.xfig import (
    FigCircle,
    FigText,
    SharedFigure,
    generate_figure,
)
from repro.apps.xfig.ascii import load_figure_ascii, save_figure_ascii
from repro.bench.workloads import make_shell


def main() -> None:
    system = boot()
    kernel = system.kernel
    editor = make_shell(kernel, "xfig-editor")
    previewer = make_shell(kernel, "xfig-preview")

    figure = generate_figure(nobjects=60, seed=1993)
    print(f"figure: {figure.counts()}")

    print("\n== baseline: translate to ASCII and back ==")
    start = kernel.clock.snapshot()
    save_figure_ascii(kernel, editor, figure, "/doc.fig")
    load_figure_ascii(kernel, editor, "/doc.fig")
    ascii_cycles = kernel.clock.snapshot() - start
    size = kernel.vfs.stat("/doc.fig").st_size
    print(f"save+load round trip: {ascii_cycles:,} cycles "
          f"({size:,} bytes of text translated twice)")

    print("\n== Hemlock: the figure lives in a shared segment ==")
    start = kernel.clock.snapshot()
    shared = SharedFigure(kernel, editor, "/shared/doc",
                          size=256 * 1024, create=True)
    shared.build_from(figure)
    build_cycles = kernel.clock.snapshot() - start
    print(f"one-time build into the segment: {build_cycles:,} cycles")
    print("subsequent saves: 0 cycles (the working form IS the file)")

    print("\n== editing: duplicate an object (reused copy routine) ==")
    target = shared.object_addresses()[3]
    duplicate = shared.copy_object(target)
    print(f"duplicated object at 0x{target:08x} -> 0x{duplicate:08x}")
    shared.add_object(FigText(10, 20, "hello from the editor"))
    shared.add_object(FigCircle(500, 500, 42))
    print(f"figure now has {shared.count} objects")

    print("\n== a second process previews the live structure ==")
    start = kernel.clock.snapshot()
    preview = SharedFigure(kernel, previewer, "/shared/doc")
    seen = preview.to_figure()
    preview_cycles = kernel.clock.snapshot() - start
    print(f"previewer walked {len(seen.objects)} objects in "
          f"{preview_cycles:,} cycles (mapping + pointer walks, "
          f"no parsing)")
    assert len(seen.objects) == shared.count

    print("\n== the §5 caveat, demonstrated ==")
    print("the segment contains absolute pointers; copying the file to "
          "another inode (= another address) would break them —")
    print("figures 'can safely be copied only by xfig itself', which "
          "is what copy_object does: it rebuilds pointers, not bytes")


if __name__ == "__main__":
    main()
