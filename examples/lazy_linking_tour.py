"""A tour of lazy and scoped linking (§3, Figure 2).

Builds a program whose reachability graph is far larger than what any
run touches, then watches ldl work: all modules are *mapped* (without
access permissions) at start-up, but each is *linked* only when first
touched — and linking one module can chain in modules the program
never named, discovered through scoped search paths.

Run:  python examples/lazy_linking_tour.py
"""

from repro import boot
from repro.bench.workloads import (
    build_module_chain,
    build_module_fanout,
    chain_expected_exit,
    fanout_expected_exit,
    make_shell,
)


def show_stats(tag, stats):
    print(f"  [{tag}] mapped={stats.modules_mapped} "
          f"created={stats.modules_created} "
          f"linked={stats.modules_linked} "
          f"faults={stats.faults_serviced} "
          f"relocs_patched={stats.relocs_patched}")


def main() -> None:
    print("== part 1: a wide reachability graph, mostly unused ==")
    width, used = 10, 3
    for lazy in (True, False):
        system = boot(lazy=lazy)
        kernel = system.kernel
        shell = make_shell(kernel)
        graph = build_module_fanout(kernel, shell, width=width,
                                    used=used,
                                    module_dir="/shared/fanout")
        start = kernel.clock.snapshot()
        proc = kernel.create_machine_process("app", graph.executable)
        code = kernel.run_until_exit(proc)
        cycles = kernel.clock.snapshot() - start
        assert code == fanout_expected_exit(used)
        mode = "lazy " if lazy else "eager"
        print(f"  {mode}: {cycles:9,} cycles for exec+run "
              f"(graph of {width}, {used} used)")
        show_stats(mode, proc.runtime.ldl.stats)

    print("\n== part 2: Figure 2's recursive chain ==")
    depth = 7
    system = boot(lazy=True)
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_chain(kernel, shell, depth=depth,
                               module_dir="/shared/chain")
    named = [name for name, _ in
             graph.executable.link_info.dynamic_modules]
    print(f"  modules named on the lds command line: {named}")
    proc = kernel.create_machine_process("app", graph.executable)
    code = kernel.run_until_exit(proc)
    assert code == chain_expected_exit(depth)
    show_stats("chain", proc.runtime.ldl.stats)
    print(f"  one named module unfolded into {depth}: each link step "
          f"happened at first touch")
    print("  segments created on the shared partition:")
    for path, _inode in kernel.sfs.segments():
        if "chain" in path:
            print(f"    /shared{path}")

    print("\n== part 3: substituting a module via LD_LIBRARY_PATH ==")
    system = boot(lazy=True)
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_fanout(kernel, shell, width=2, used=1,
                                module_dir="/shared/fanout")
    # An "instrumented" replacement for mod0, found first on the path.
    kernel.vfs.makedirs("/shared/debugversions")
    from repro.hw.asm import assemble
    from repro.linker.lds import store_object

    store_object(kernel, shell, "/shared/debugversions/mod0.o",
                 assemble("""
        .text
        .globl func_0
    func_0:
        li v0, 4242     # debug stub
        jr ra
    """, "mod0.o"))
    proc = kernel.create_machine_process(
        "app", graph.executable,
        env={"LD_LIBRARY_PATH": "/shared/debugversions"},
    )
    code = kernel.run_until_exit(proc)
    print(f"  with LD_LIBRARY_PATH=/shared/debugversions the program "
          f"returned {code} (the debug stub), not "
          f"{fanout_expected_exit(1)}")
    assert code == 4242


if __name__ == "__main__":
    main()
