"""A Presto-style parallel application (§4 "Parallel Applications").

The shared variables live in a separate Toy C file (`shared_data.c`)
linked as a *dynamic public* module — "selective sharing can be
specified with ease" — replacing the 432-line assembly-editing
post-processor the paper describes. Each application instance gets its
own copy of the shared data through the temp-directory/symlink/
LD_LIBRARY_PATH idiom, and the workers synchronize with kernel
semaphores while claiming work items.

The second half runs Presto on actual parallel hardware: `repro.smp`
simulates K cores on one deterministic round schedule, so the same
seed gives the same interleaving — and the same cycle totals — every
run, while the parallel makespan (`clock.elapsed`) drops as cores are
added.

Run:  python examples/parallel_presto.py
"""

from repro import boot
from repro.apps.presto import PrestoApp
from repro.apps.presto.runtime import SHARED_DATA_SOURCE, WORKER_SOURCE
from repro.bench.workloads import make_shell

NITEMS = 40

# The SMP sweep: a compute-bound Presto (busy loop per item, outside
# the critical sections) across simulated core counts.
SMP_NITEMS = 64
SMP_NWORKERS = 8
SMP_COMPUTE_ITERS = 600


def main() -> None:
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel, "parent")

    print("== the shared data module (its entire source) ==")
    print(SHARED_DATA_SOURCE.format(nitems=NITEMS))
    print("== worker excerpt: shared variables are plain externs ==")
    for line in WORKER_SOURCE.format(nitems=NITEMS).splitlines()[1:5]:
        print(line)
    print("    ...")

    print("\n== build once (cc + lds) ==")
    app = PrestoApp(kernel, shell, nitems=NITEMS)
    print("worker executable linked with shared_data.o as "
          "dynamic public")

    for nworkers in (1, 2, 4):
        start = kernel.clock.snapshot()
        result = app.run_instance(nworkers=nworkers)
        cycles = kernel.clock.snapshot() - start
        print(f"\n== instance with {nworkers} worker(s) ==")
        print(f"  instance dir (temp + symlink): {result.instance_dir}")
        print(f"  items per worker:              "
              f"{result.per_worker_items}")
        print(f"  total:                         {result.total} "
              f"(expected {app.expected_total()})")
        print(f"  cycles, full lifecycle:        {cycles:,}")
        assert result.total == app.expected_total()

    print("\nall instances exact; parent cleaned up segment, symlink, "
          "and directory each time")
    assert kernel.vfs.listdir("/shared/tmp") == []

    # -- the same application, on 1/2/4 simulated cores -----------------
    print("\n== repro.smp: the parallel phase on K simulated cores ==")
    print(f"({SMP_NWORKERS} workers, {SMP_NITEMS} items, "
          f"{SMP_COMPUTE_ITERS}-iteration compute per item)")
    base_elapsed = None
    for ncores in (1, 2, 4):
        smp_system = boot(ncores=ncores)
        smp_kernel = smp_system.kernel
        smp_shell = make_shell(smp_kernel, "parent")
        smp_app = PrestoApp(smp_kernel, smp_shell, nitems=SMP_NITEMS,
                            compute_iters=SMP_COMPUTE_ITERS)
        cycles_start = smp_kernel.clock.cycles
        elapsed_start = smp_kernel.clock.elapsed
        result = smp_app.run_instance(nworkers=SMP_NWORKERS)
        cycles = smp_kernel.clock.cycles - cycles_start
        elapsed = smp_kernel.clock.elapsed - elapsed_start
        assert result.total == smp_app.expected_total()
        if base_elapsed is None:
            base_elapsed = elapsed
        speedup = base_elapsed / elapsed
        print(f"  {ncores} core(s): work={cycles:>9,} cycles   "
              f"makespan={elapsed:>9,} cycles   speedup={speedup:.2f}x")
        if ncores == 1:
            # One core is the degenerate case: nothing overlaps.
            assert elapsed == cycles
        if ncores == 4:
            assert speedup >= 2.0, f"4-core speedup only {speedup:.2f}x"
    print("same schedule, same totals, every run — but the makespan "
          "scales with the machine")


if __name__ == "__main__":
    main()
