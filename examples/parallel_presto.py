"""A Presto-style parallel application (§4 "Parallel Applications").

The shared variables live in a separate Toy C file (`shared_data.c`)
linked as a *dynamic public* module — "selective sharing can be
specified with ease" — replacing the 432-line assembly-editing
post-processor the paper describes. Each application instance gets its
own copy of the shared data through the temp-directory/symlink/
LD_LIBRARY_PATH idiom, and the workers synchronize with kernel
semaphores while claiming work items.

Run:  python examples/parallel_presto.py
"""

from repro import boot
from repro.apps.presto import PrestoApp
from repro.apps.presto.runtime import SHARED_DATA_SOURCE, WORKER_SOURCE
from repro.bench.workloads import make_shell

NITEMS = 40


def main() -> None:
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel, "parent")

    print("== the shared data module (its entire source) ==")
    print(SHARED_DATA_SOURCE.format(nitems=NITEMS))
    print("== worker excerpt: shared variables are plain externs ==")
    for line in WORKER_SOURCE.format(nitems=NITEMS).splitlines()[1:5]:
        print(line)
    print("    ...")

    print("\n== build once (cc + lds) ==")
    app = PrestoApp(kernel, shell, nitems=NITEMS)
    print("worker executable linked with shared_data.o as "
          "dynamic public")

    for nworkers in (1, 2, 4):
        start = kernel.clock.snapshot()
        result = app.run_instance(nworkers=nworkers)
        cycles = kernel.clock.snapshot() - start
        print(f"\n== instance with {nworkers} worker(s) ==")
        print(f"  instance dir (temp + symlink): {result.instance_dir}")
        print(f"  items per worker:              "
              f"{result.per_worker_items}")
        print(f"  total:                         {result.total} "
              f"(expected {app.expected_total()})")
        print(f"  cycles, full lifecycle:        {cycles:,}")
        assert result.total == app.expected_total()

    print("\nall instances exact; parent cleaned up segment, symlink, "
          "and directory each time")
    assert kernel.vfs.listdir("/shared/tmp") == []


if __name__ == "__main__":
    main()
