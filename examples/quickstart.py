"""Quickstart: transparent sharing of variables and subroutines.

Builds the paper's core scenario end to end:

1. boot a simulated machine;
2. compile a shared module (Toy C) whose *source contains no set-up or
   shared-memory calls whatsoever* — just ordinary globals;
3. lds-link two different programs against it as a dynamic public
   module;
4. run them and watch genuine write sharing: the second program sees
   the first one's updates through plain variable access.

Run:  python examples/quickstart.py
"""

from repro import LinkRequest, SharingClass, boot
from repro.bench.workloads import make_shell
from repro.linker.lds import store_object
from repro.objfile.inspect import nm
from repro.toyc import compile_source

SHARED_SOURCE = """
/* shared.c — the shared variables and subroutines.
   No mmap, no shmget, no set-up calls: just C. */
int visits = 0;
int visit_log[8];

int record_visit(int who) {
    visit_log[visits] = who;
    visits = visits + 1;
    return visits;
}
"""

PROGRAM_A = """
/* a.c — first application */
extern int record_visit(int who);
int main() { return record_visit(1); }
"""

PROGRAM_B = """
/* b.c — an unrelated application sharing the same module */
extern int record_visit(int who);
extern int visits;
extern int visit_log[8];
int main() {
    record_visit(2);
    /* read the other program's footprints directly */
    return visit_log[0] * 10 + visit_log[1];
}
"""


def main() -> None:
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")

    print("== compile (cc) ==")
    shared_obj = compile_source(SHARED_SOURCE, "visits.o")
    store_object(kernel, shell, "/shared/lib/visits.o", shared_obj)
    store_object(kernel, shell, "/a.o", compile_source(PROGRAM_A, "a.o"))
    store_object(kernel, shell, "/b.o", compile_source(PROGRAM_B, "b.o"))
    print("shared module symbol table (nm visits.o):")
    print(nm(shared_obj))

    print("\n== link (lds) ==")
    exe_a = system.lds.link(
        shell,
        [LinkRequest("/a.o"),
         LinkRequest("visits.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin_a", search_dirs=["/shared/lib"],
    )
    exe_b = system.lds.link(
        shell,
        [LinkRequest("/b.o"),
         LinkRequest("visits.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin_b", search_dirs=["/shared/lib"],
    )
    print(f"program A: {exe_a.islands} branch island(s), "
          f"{exe_a.retained_relocations} retained relocation(s)")
    print(f"program B: {exe_b.islands} branch island(s), "
          f"{exe_b.retained_relocations} retained relocation(s)")

    print("\n== run ==")
    proc_a = kernel.create_machine_process("A", exe_a.executable)
    code_a = kernel.run_until_exit(proc_a)
    print(f"program A exited with {code_a} (first visit recorded)")
    print("public module now exists:",
          kernel.vfs.exists("/shared/lib/visits"))

    proc_b = kernel.create_machine_process("B", exe_b.executable)
    code_b = kernel.run_until_exit(proc_b)
    print(f"program B exited with {code_b} "
          f"(visit_log[0]*10 + visit_log[1] = 12: "
          f"it read A's visit AND its own)")

    print("\n== the shared segment, through the file interface ==")
    info = kernel.vfs.stat("/shared/lib/visits")
    base = kernel.sfs.address_of_inode(info.st_ino)
    print(f"/shared/lib/visits: inode {info.st_ino}, "
          f"globally agreed address 0x{base:08x}")
    print(f"simulated cycles for everything above: "
          f"{kernel.clock.cycles:,}")

    assert code_a == 1
    assert code_b == 12
    print("\nOK")


if __name__ == "__main__":
    main()
