"""The rwho network (§4 "Administrative Files").

Simulates the paper's 65-machine department: rwhod receives periodic
broadcasts from every machine, and users run ``rwho``/``ruptime``. Both
implementations run side by side — the original per-machine status
files and the Hemlock shared-memory database — producing identical
output at very different cost, which is where the paper's "saves a
little over a second each time it is called" comes from.

Run:  python examples/rwho_network.py
"""

from repro import boot
from repro.apps.rwho import (
    FileRwhod,
    ShmRwhod,
    file_ruptime,
    file_rwho,
    generate_network,
    shm_ruptime,
    shm_rwho,
)
from repro.apps.rwho.common import updated_status
from repro.bench.workloads import make_shell
from repro.util.rng import DeterministicRng

NHOSTS = 65
BROADCAST_ROUNDS = 3


def main() -> None:
    system = boot()
    kernel = system.kernel
    daemon_proc = make_shell(kernel, "rwhod")
    user_proc = make_shell(kernel, "user")

    network = generate_network(nhosts=NHOSTS)
    file_daemon = FileRwhod(kernel, daemon_proc)
    shm_daemon = ShmRwhod(kernel, daemon_proc, nhosts=NHOSTS)

    print(f"== rwhod: receiving broadcasts from {NHOSTS} machines ==")
    rng = DeterministicRng(99)
    for round_number in range(BROADCAST_ROUNDS):
        for status in network:
            fresh = updated_status(status, 60 * round_number, rng)
            file_daemon.receive(fresh)
            shm_daemon.receive(fresh)
    print(f"{BROADCAST_ROUNDS} broadcast rounds processed by both "
          f"daemons")

    print("\n== ruptime (first 6 lines) ==")
    report = shm_ruptime(kernel, user_proc)
    for line in report.splitlines()[:6]:
        print(" ", line)

    print("\n== rwho (first 6 lines) ==")
    who = shm_rwho(kernel, user_proc)
    for line in who.splitlines()[:6]:
        print(" ", line)

    assert who == file_rwho(kernel, user_proc)
    assert report == file_ruptime(kernel, user_proc)
    print("\nfile version and shared version produce identical output")

    print("\n== cost comparison (one rwho invocation) ==")
    start = kernel.clock.snapshot()
    file_rwho(kernel, user_proc)
    file_cycles = kernel.clock.snapshot() - start
    start = kernel.clock.snapshot()
    shm_rwho(kernel, user_proc)
    shm_cycles = kernel.clock.snapshot() - start
    print(f"  file version:   {file_cycles:10,} cycles "
          f"({NHOSTS} opens + reads + unpacking)")
    print(f"  shared version: {shm_cycles:10,} cycles "
          f"(plain loads from the mapped database)")
    print(f"  speedup:        {file_cycles / shm_cycles:10.1f}x")

    print("\n== where the shared database lives ==")
    info = kernel.vfs.stat("/shared/rwho.db")
    print(f"  /shared/rwho.db: {info.st_size:,} bytes, "
          f"address 0x{kernel.sfs.address_of_inode(info.st_ino):08x}")


if __name__ == "__main__":
    main()
