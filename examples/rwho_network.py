"""The rwho network (§4 "Administrative Files").

Simulates the paper's 65-machine department: rwhod receives periodic
broadcasts from every machine, and users run ``rwho``/``ruptime``. Both
implementations run side by side — the original per-machine status
files and the Hemlock shared-memory database — producing identical
output at very different cost, which is where the paper's "saves a
little over a second each time it is called" comes from.

Run:  python examples/rwho_network.py [--nhosts N] [--seed N]
                                      [--cluster N] [--ha]

With ``--cluster N`` (or ``REPRO_CLUSTER=N`` in the environment, which
is how ``reprochaos --net`` drives this script) the same fleet runs
over an N-node :class:`repro.net.Cluster` instead: gateway nodes
broadcast over the fabric, the server's rwhod builds the database in a
cluster-wide shared segment, and a remote reader's output is checked
against the single-kernel oracle — exactly equal fault-free, a subset
of it when a fault campaign is dropping datagrams.

With ``--ha`` on top (or ``REPRO_HA=1``, how ``reprochaos --ha``
drives this script) the cluster arms the failure model: an armed NODE
plane crashes, wedges, partitions and reboots machines on the seeded
schedule, and the scenario runs in recovery epochs until a fresh
probe's database equals the single-kernel oracle.
"""

import argparse
import os

from repro import boot
from repro.apps.rwho import (
    FileRwhod,
    ShmRwhod,
    file_ruptime,
    file_rwho,
    generate_network,
    shm_ruptime,
    shm_rwho,
)
from repro.apps.rwho.common import updated_status
from repro.bench.workloads import make_shell
from repro.util.rng import DeterministicRng

NHOSTS = 65
BROADCAST_ROUNDS = 3


def single_main(nhosts: int, seed: int) -> None:
    system = boot()
    kernel = system.kernel
    daemon_proc = make_shell(kernel, "rwhod")
    user_proc = make_shell(kernel, "user")

    network = generate_network(nhosts=nhosts)
    file_daemon = FileRwhod(kernel, daemon_proc)
    shm_daemon = ShmRwhod(kernel, daemon_proc, nhosts=nhosts)

    print(f"== rwhod: receiving broadcasts from {nhosts} machines ==")
    rng = DeterministicRng(seed)
    for round_number in range(BROADCAST_ROUNDS):
        for status in network:
            fresh = updated_status(status, 60 * round_number, rng)
            file_daemon.receive(fresh)
            shm_daemon.receive(fresh)
    print(f"{BROADCAST_ROUNDS} broadcast rounds processed by both "
          f"daemons")

    print("\n== ruptime (first 6 lines) ==")
    report = shm_ruptime(kernel, user_proc)
    for line in report.splitlines()[:6]:
        print(" ", line)

    print("\n== rwho (first 6 lines) ==")
    who = shm_rwho(kernel, user_proc)
    for line in who.splitlines()[:6]:
        print(" ", line)

    assert who == file_rwho(kernel, user_proc)
    assert report == file_ruptime(kernel, user_proc)
    print("\nfile version and shared version produce identical output")

    print("\n== cost comparison (one rwho invocation) ==")
    start = kernel.clock.snapshot()
    file_rwho(kernel, user_proc)
    file_cycles = kernel.clock.snapshot() - start
    start = kernel.clock.snapshot()
    shm_rwho(kernel, user_proc)
    shm_cycles = kernel.clock.snapshot() - start
    print(f"  file version:   {file_cycles:10,} cycles "
          f"({nhosts} opens + reads + unpacking)")
    print(f"  shared version: {shm_cycles:10,} cycles "
          f"(plain loads from the mapped database)")
    print(f"  speedup:        {file_cycles / shm_cycles:10.1f}x")

    print("\n== where the shared database lives ==")
    info = kernel.vfs.stat("/shared/rwho.db")
    print(f"  /shared/rwho.db: {info.st_size:,} bytes, "
          f"address 0x{kernel.sfs.address_of_inode(info.st_ino):08x}")


def cluster_main(nnodes: int, nhosts: int, seed: int) -> None:
    from repro.apps.rwho.cluster import (
        run_cluster_rwho,
        single_kernel_rwho,
        synth_statuses,
    )
    from repro.net import Cluster

    statuses = synth_statuses(nhosts)
    cluster = Cluster(nnodes, seed=seed)
    print(f"== rwhod over a {nnodes}-node cluster, {nhosts} hosts ==")
    result = run_cluster_rwho(cluster, statuses, "shm")
    cluster.shutdown()
    print(f"{result['frames_sent']} frames "
          f"({result['bytes_sent']:,} bytes) in "
          f"{result['broadcast_rounds'] + result['read_rounds']} "
          f"rounds; net cycles per node: {result['net_cycles']}")

    faulted = cluster.machines[0].kernel.injector is not None
    oracle = single_kernel_rwho(statuses)
    for node, text in sorted(result["outputs"].items()):
        lines = text.splitlines()
        print(f"\n== rwho on node {node} (first 6 of {len(lines)} "
              f"lines) ==")
        for line in lines[:6]:
            print(" ", line)
        if faulted:
            # Datagram loss only removes records, never invents them.
            assert set(lines) <= set(oracle.splitlines())
        else:
            assert text == oracle
    verdict = "a subset of" if faulted else "identical to"
    print(f"\ncluster reader output is {verdict} the single-kernel "
          f"oracle")


def ha_main(nnodes: int, nhosts: int, seed: int) -> None:
    from repro.apps.rwho.cluster import (
        run_ha_rwho,
        single_kernel_rwho,
        synth_statuses,
    )
    from repro.disk import BlockDevice
    from repro.net import Cluster

    statuses = synth_statuses(nhosts)
    oracle = single_kernel_rwho(statuses)
    # the home/server node gets a durable volume, so its directory
    # journal and database survive a crash; the rest stay volatile
    disks = [BlockDevice(seed=seed) if node == 0 else None
             for node in range(nnodes)]
    cluster = Cluster(nnodes, seed=seed, disks=disks, ha=True)
    print(f"== rwhod over a {nnodes}-node HA cluster, {nhosts} hosts, "
          f"seed {seed} ==")
    result = run_ha_rwho(cluster, statuses, oracle)
    cluster.shutdown()
    ha = result["ha"]
    print(f"{result['epochs']} epoch(s), {result['rounds']} rounds, "
          f"{result['frames_sent']} frames "
          f"({result['ha_dropped']} lost to the failure model)")
    print(f"faults: {ha['crashes']} crash(es), {ha['wedges']} "
          f"wedge(s), {ha['partitions']} partition(s), "
          f"{ha['reboots']} reboot(s)")
    print(f"recovery: {ha['suspects']} suspicion(s), {ha['rejoins']} "
          f"re-join(s), {ha['lease_reclaims']} lease reclaim(s), "
          f"{ha['dir_recovered']} directory row(s) recovered")
    assert result["converged"], \
        "cluster did not re-converge to the oracle"
    print("\npost-heal probe output is identical to the single-kernel "
          "oracle")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--nhosts", type=int,
        default=int(os.environ.get("REPRO_HOSTS", "0") or 0) or NHOSTS,
        help="fleet size (default: $REPRO_HOSTS or %(default)s)")
    parser.add_argument("--seed", type=int, default=99,
                        help="deterministic seed (default %(default)s)")
    parser.add_argument(
        "--cluster", type=int,
        default=int(os.environ.get("REPRO_CLUSTER", "0") or 0),
        help="run over an N-node cluster instead of one kernel "
             "(default: $REPRO_CLUSTER or 0 = single kernel)")
    parser.add_argument(
        "--ha", action="store_true",
        default=bool(int(os.environ.get("REPRO_HA", "0") or 0)),
        help="arm the failure model (requires --cluster; default: "
             "$REPRO_HA)")
    # parse_known_args: the test harness runs this file via runpy with
    # its own argv still in place.
    args, _ = parser.parse_known_args()
    if args.ha:
        ha_main(args.cluster or 8, args.nhosts, args.seed)
    elif args.cluster:
        cluster_main(args.cluster, args.nhosts, args.seed)
    else:
        single_main(args.nhosts, args.seed)


if __name__ == "__main__":
    main()
