"""Setuptools entry point.

Kept as a classic ``setup.py`` (with metadata in ``setup.cfg``) so that
``pip install -e .`` works in fully offline environments where the
``wheel`` package needed by PEP 660 editable builds is unavailable.
"""

from setuptools import setup

setup()
