"""Hemlock — linking shared segments.

A complete, simulation-based reproduction of W. E. Garrett, M. L. Scott
et al., "Linking Shared Segments", 1993 Winter USENIX. The package
builds the whole stack the paper's system needs — an R3000-flavoured
CPU and assembler, a paged VM with restartable faults, a Unix-like
kernel and file system, the dedicated shared file system with its
global address↔file mapping — and on top of it Hemlock itself: the
``lds`` static linker with four sharing classes, the ``ldl`` lazy
dynamic linker with scoped (DAG) symbol resolution, the SIGSEGV handler
that implements lazy linking and pointer chasing, and a per-segment
heap allocator.

Quick start::

    from repro import boot

    system = boot()                 # kernel + Hemlock runtime attached
    # ... write templates, link with system.lds, run programs ...

See ``examples/quickstart.py`` and DESIGN.md for the full tour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kernel.kernel import Kernel
from repro.kernel.timing import Clock, CostModel
from repro.linker.classes import SharingClass
from repro.linker.lds import Lds, LinkRequest
from repro.linker.ldl import Ldl
from repro.runtime.libshared import HemlockRuntime, attach_runtime, \
    runtime_for
from repro.runtime.shmalloc import ArenaHeap, SegmentHeap
from repro.runtime.views import Mem, StructDef

__version__ = "1.0.0"

__all__ = [
    "boot",
    "System",
    "Kernel",
    "Clock",
    "CostModel",
    "SharingClass",
    "Lds",
    "LinkRequest",
    "Ldl",
    "HemlockRuntime",
    "attach_runtime",
    "runtime_for",
    "ArenaHeap",
    "SegmentHeap",
    "Mem",
    "StructDef",
]


@dataclass
class System:
    """A booted simulated machine with the Hemlock toolchain attached."""

    kernel: Kernel
    lds: Lds

    @property
    def vfs(self):
        return self.kernel.vfs

    @property
    def sfs(self):
        return self.kernel.sfs

    @property
    def clock(self) -> Clock:
        return self.kernel.clock


def boot(lazy: bool = True, addrmap=None,
         costs: Optional[CostModel] = None,
         wide_addresses: bool = False,
         scoped: bool = True,
         verify: Optional[bool] = None,
         disk=None, net=None, sanitize=None,
         ncores: Optional[int] = None) -> System:
    """Boot a fresh simulated machine.

    * *lazy* — whether ldl links lazily (the paper's default) or eagerly;
    * *addrmap* — the SFS address map implementation (linear by default);
    * *costs* — cycle cost model override;
    * *wide_addresses* — boot the paper's 64-bit future-work design
      (per-inode address fields, B-tree map, relaxed limits);
    * *scoped* — scoped linking (the paper's design) vs a traditional
      flat namespace (the A6 ablation);
    * *verify* — arm the reprolint static-verification gate in both
      lds and ldl (None = follow the REPRO_LINT environment variable).
      The gate is purely in-memory and charges zero simulated cycles.
    * *disk* — a :class:`repro.disk.BlockDevice` to mount as the durable
      store: blank devices are formatted, used ones are recovered
      (journal replay + addr↔inode rebuild). None boots all-volatile.
    * *net* — a cluster attachment (one :class:`repro.net.Cluster` slot)
      wiring this machine's NIC and coherence agent. None (the default)
      boots the classic stand-alone machine; :class:`repro.net.Cluster`
      passes this internally, so user code rarely supplies it.
    * *sanitize* — install the race/heap sanitizer (repro.sanitize) on
      this machine. True creates (or joins) the process-wide active
      sanitizer; a :class:`repro.sanitize.Sanitizer` instance joins that
      one. The sanitizer observes without charging the clock, so cycle
      totals are bit-identical either way.
    * *ncores* — simulated CPU count (repro.smp). K>1 schedules
      processes onto K cores in deterministic rounds with sub-quantum
      interleaving; K=1 (the default) is the classic uniprocessor
      scheduler, bit-identical to every release before SMP existed.
      None consults the REPRO_CORES environment variable, so existing
      workloads can be rerun multi-core without touching their code.
    """
    kernel = Kernel(addrmap=addrmap, costs=costs,
                    wide_addresses=wide_addresses, disk=disk,
                    ncores=ncores)
    attach_runtime(kernel, lazy=lazy, scoped=scoped, verify=verify)
    system = System(kernel=kernel, lds=Lds(kernel, verify=verify))
    if net is not None:
        net.attach(kernel)
    if sanitize:
        from repro.sanitize import install_sanitizer

        install_sanitizer(kernel, sanitize if sanitize is not True
                          else None)
    return system
