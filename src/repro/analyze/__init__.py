"""repro.analyze — reprolint, the linker-aware static verifier.

A pipeline of six static checks over HOF objects — relocation
validation, symbol-resolution audit, CFG/dead-code analysis, layout
audit, sharing-class checks, and the cross-sharing-class pointer
analysis — with stable diagnostic codes (DESIGN.md §7). Exposed three
ways:

* the ``reprolint`` CLI (:mod:`repro.tools.cli`);
* the opt-in post-link verification gate in ``lds``/``ldl``
  (``verify=True`` or ``REPRO_LINT=1``), which raises
  :class:`repro.errors.LintError` *before* a bad image is mapped;
* this library API: :func:`analyze_object` and friends.
"""

from repro.analyze.context import LintContext, ScopeModule
from repro.analyze.corpus import CorpusEntry, broken_objects, run_self_test
from repro.analyze.pipeline import (
    CHECKS,
    analyze_archive,
    analyze_object,
    context_from_kernel,
    lint_enabled_default,
    verify_image,
)
from repro.analyze.report import (
    CATALOG,
    DuplicateCodeError,
    Finding,
    Report,
    Severity,
    finding,
    format_reloc,
    format_site,
    register_codes,
)

__all__ = [
    "CATALOG",
    "CHECKS",
    "CorpusEntry",
    "DuplicateCodeError",
    "Finding",
    "LintContext",
    "Report",
    "ScopeModule",
    "Severity",
    "analyze_archive",
    "analyze_object",
    "broken_objects",
    "context_from_kernel",
    "finding",
    "format_reloc",
    "format_site",
    "lint_enabled_default",
    "register_codes",
    "run_self_test",
    "verify_image",
]
