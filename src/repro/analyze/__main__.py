"""Host-side reprolint driver: ``python -m repro.analyze [options]``.

Two stages, both used by CI's ``lint-objects`` job:

* corpus (always) — replay the seeded broken-object corpus; every
  diagnostic code must fire exactly once. ``--strict`` also refuses
  stray ERROR findings from other codes.
* ``--build`` — boot a simulated machine with the verification gate
  armed, compile toyc modules, link and run them, then sweep
  ``reprolint --strict`` over every produced template, archive,
  executable, and public segment. A clean tree produces zero errors.
"""

from __future__ import annotations

import sys

from repro.analyze.corpus import broken_objects, run_self_test

# Small but representative toyc build: a shared counter module linked
# dynamic-public into a main program, plus an archive of both templates.
COUNTER_MODULE = """
int counter = 0;

int bump() {
    counter = counter + 1;
    return counter;
}
"""

COUNTER_MAIN = """
extern int bump();

int main() {
    bump();
    return bump();
}
"""


def lint_corpus(strict: bool) -> int:
    failures = run_self_test(strict=strict)
    entries = broken_objects()
    if failures:
        for line in failures:
            print(f"FAIL {line}")
        print(f"reprolint corpus: {len(failures)} failure(s) over "
              f"{len(entries)} seeded objects")
        return 1
    print(f"reprolint corpus: all {len(entries)} diagnostic codes fire "
          f"exactly once" + (" (strict)" if strict else ""))
    return 0


def lint_builds(strict: bool) -> int:
    """Compile, link (gate armed), run, and reprolint the products."""
    from repro import boot
    from repro.bench.workloads import make_shell
    from repro.errors import LintError
    from repro.linker.classes import SharingClass
    from repro.linker.lds import LinkRequest, store_object
    from repro.objfile.archive import Archive
    from repro.tools.cli import reprolint_main
    from repro.toyc import compile_source

    system = boot(verify=True)
    kernel = system.kernel
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/lib")
    kernel.vfs.makedirs("/src")
    kernel.vfs.makedirs("/bin")

    module = compile_source(COUNTER_MODULE, "bump.o")
    main_obj = compile_source(COUNTER_MAIN, "main.o")
    store_object(kernel, shell, "/shared/lib/bump.o", module)
    store_object(kernel, shell, "/src/main.o", main_obj)
    archive = Archive("toyc.a")
    archive.add(module.clone())
    archive.add(main_obj.clone())
    kernel.vfs.write_whole("/src/toyc.a", archive.to_bytes(), shell.uid)

    result = system.lds.link(
        shell,
        [LinkRequest("/src/main.o"),
         LinkRequest("bump.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/bin/counter",
        search_dirs=["/shared/lib"],
    )
    proc = kernel.create_machine_process("counter", result.executable)
    code = kernel.run_until_exit(proc)
    if code != 2:
        print(f"FAIL toyc counter program exited {code}, expected 2")
        return 1

    paths = ["/shared/lib/bump.o", "/src/main.o", "/src/toyc.a",
             "/bin/counter", "/shared/lib/bump"]
    argv = (["--strict"] if strict else []) + paths
    try:
        output = reprolint_main(kernel, shell, argv)
    except LintError as err:
        for line in err.findings:
            print(f"FAIL {line}")
        print(f"reprolint builds: {len(err.findings)} finding(s) at or "
              f"above the failure threshold")
        return 1
    print(output)
    print(f"reprolint builds: {len(paths)} toyc-built files clean"
          + (" (strict)" if strict else ""))
    return 0


def main(argv: "list[str]") -> int:
    strict = "--strict" in argv
    status = lint_corpus(strict=strict)
    if status == 0 and "--build" in argv:
        status = lint_builds(strict=strict)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
