"""Check 3 — CFG and dead-code analysis (CFG001..CFG005).

Decodes the text section with the :mod:`repro.hw.isa` tables, carves it
into basic blocks, and walks reachability from every entry point: the
entry symbol, every defined text symbol (functions are callable from
other modules, locals label branch targets), and every symbol a
relocation can materialize as a function pointer.

Reported:

* ``CFG001`` — a block no entry point can reach (alignment padding —
  runs of zero words — is recognized and skipped);
* ``CFG002`` — control flow can run off the end of text, or a decoded
  branch/jump targets bytes outside text;
* ``CFG003`` — a transfer lands in the *middle* of a branch-island
  thunk: islands are three-instruction atoms (``lui at / ori at / jr
  at``); entering one halfway jumps through a half-built address;
* ``CFG004`` — an island no call site targets (orphaned thunk);
* ``CFG005`` — a word in text that decodes as no instruction (inline
  data; advisory, and the block is excluded from dead-code reporting).

Works on templates (jump targets recovered from JUMP26 relocations) and
on placed images (targets decoded from the patched words).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hw import isa
from repro.objfile.format import ObjectFile, RelocType, SEC_ABS, SEC_TEXT
from repro.util.bits import sign_extend
from repro.analyze.context import LintContext
from repro.analyze.report import Report, finding

ISLAND_RE = re.compile(r"^__island_\d+__")
ISLAND_SIZE = 12  # lui/ori/jr — keep in sync with linker.branch_islands

_VALID_FUNCTS = frozenset({
    isa.FN_SLL, isa.FN_SRL, isa.FN_SRA, isa.FN_SLLV, isa.FN_SRLV,
    isa.FN_SRAV, isa.FN_JR, isa.FN_JALR, isa.FN_SYSCALL, isa.FN_BREAK,
    isa.FN_MUL, isa.FN_DIV, isa.FN_REM, isa.FN_ADD, isa.FN_SUB,
    isa.FN_AND, isa.FN_OR, isa.FN_XOR, isa.FN_NOR, isa.FN_SLT,
    isa.FN_SLTU,
})
_VALID_I_OPS = frozenset({
    isa.OP_BEQ, isa.OP_BNE, isa.OP_BLEZ, isa.OP_BGTZ, isa.OP_ADDI,
    isa.OP_SLTI, isa.OP_SLTIU, isa.OP_ANDI, isa.OP_ORI, isa.OP_XORI,
    isa.OP_LUI, isa.OP_LB, isa.OP_LH, isa.OP_LW, isa.OP_LBU,
    isa.OP_LHU, isa.OP_SB, isa.OP_SH, isa.OP_SW,
})
_BRANCH_OPS = frozenset({isa.OP_BEQ, isa.OP_BNE, isa.OP_BLEZ,
                         isa.OP_BGTZ})


@dataclass
class _Insn:
    """One decoded word: control-flow role and static targets."""

    offset: int
    word: int
    valid: bool = True
    ends_block: bool = False
    falls_through: bool = True
    targets: List[int] = field(default_factory=list)  # text offsets


@dataclass
class _Block:
    start: int
    end: int  # exclusive
    reachable: bool = False

    def offsets(self) -> range:
        return range(self.start, self.end, 4)


def check_cfg(obj: ObjectFile, context: LintContext,
              report: Report) -> None:
    text = bytes(obj.text)
    if not text or len(text) % 4:
        return
    base = obj.layout[SEC_TEXT].base if SEC_TEXT in obj.layout else 0
    jump_relocs = {
        reloc.offset: reloc for reloc in obj.relocations
        if reloc.section == SEC_TEXT and reloc.type is RelocType.JUMP26
    }

    insns = _decode(obj, text, base, jump_relocs, report)
    islands = _island_spans(obj, text)
    roots = _entry_roots(obj, text, base)
    blocks = _build_blocks(insns, roots, islands)
    _mark_reachable(blocks, insns, roots)

    _report_island_entries(obj, insns, islands, report)
    _report_orphan_islands(obj, insns, islands, jump_relocs, report)
    _report_fall_off_and_escapes(obj, insns, blocks, text, report)
    _report_unreachable(obj, insns, blocks, report)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def _decode(obj: ObjectFile, text: bytes, base: int,
            jump_relocs: Dict[int, object],
            report: Report) -> Dict[int, _Insn]:
    insns: Dict[int, _Insn] = {}
    data_run_start: Optional[int] = None
    for offset in range(0, len(text), 4):
        word = int.from_bytes(text[offset: offset + 4], "little")
        insn = _Insn(offset, word)
        if not _word_decodes(word):
            insn.valid = False
            insn.ends_block = True
            insn.falls_through = False
            if data_run_start is None:
                data_run_start = offset
                report.add(finding(
                    "CFG005", obj.name,
                    f"word 0x{word:08x} does not decode; treating the "
                    f"run from here as inline data",
                    section=SEC_TEXT, offset=offset,
                ))
        else:
            data_run_start = None
            _classify(insn, base, obj, jump_relocs)
        insns[offset] = insn
    return insns


def _word_decodes(word: int) -> bool:
    op = (word >> 26) & 0x3F
    if op == isa.OP_SPECIAL:
        return (word & 0x3F) in _VALID_FUNCTS
    if op == isa.OP_REGIMM:
        return ((word >> 16) & 31) in (isa.RT_BLTZ, isa.RT_BGEZ)
    if op in (isa.OP_J, isa.OP_JAL):
        return True
    return op in _VALID_I_OPS


def _classify(insn: _Insn, base: int, obj: ObjectFile,
              jump_relocs: Dict[int, object]) -> None:
    word, offset = insn.word, insn.offset
    op = (word >> 26) & 0x3F
    funct = word & 0x3F
    simm = sign_extend(word & 0xFFFF, 16)
    if op == isa.OP_SPECIAL:
        if funct == isa.FN_JR:
            insn.ends_block = True
            insn.falls_through = False  # indirect; target unknowable
        elif funct == isa.FN_JALR:
            insn.ends_block = True     # indirect call; returns here
        return
    if op == isa.OP_REGIMM or op in _BRANCH_OPS:
        insn.ends_block = True
        insn.targets.append(offset + 4 + (simm << 2))
        return
    if op in (isa.OP_J, isa.OP_JAL):
        insn.ends_block = True
        insn.falls_through = op == isa.OP_JAL  # calls return
        reloc = jump_relocs.get(offset)
        if reloc is not None:
            target = _reloc_target_offset(obj, reloc, base)
            if target is not None:
                insn.targets.append(target)
            return  # unresolved external: no static target
        target = isa.jump_target(base + offset, word & 0x3FFFFFF)
        insn.targets.append(target - base)


def _reloc_target_offset(obj: ObjectFile, reloc, base: int
                         ) -> Optional[int]:
    symbol = obj.symbols.get(reloc.symbol)
    if symbol is None or not symbol.defined:
        return None
    if symbol.section == SEC_TEXT:
        return symbol.value + reloc.addend
    if symbol.section == SEC_ABS:
        return symbol.value + reloc.addend - base
    return None


# ---------------------------------------------------------------------------
# entries, islands, blocks
# ---------------------------------------------------------------------------


def _entry_roots(obj: ObjectFile, text: bytes, base: int) -> Set[int]:
    roots: Set[int] = set()

    def note(value: int) -> None:
        if 0 <= value < len(text) and value % 4 == 0:
            roots.add(value)

    for symbol in obj.symbols.values():
        if not symbol.defined:
            continue
        if symbol.section == SEC_TEXT:
            note(symbol.value)
        elif symbol.section == SEC_ABS:
            note(symbol.value - base)
    # Function pointers: relocations (in any section) that materialize
    # the address of a text symbol make that symbol callable.
    for reloc in obj.relocations:
        symbol = obj.symbols.get(reloc.symbol)
        if symbol is not None and symbol.defined \
                and symbol.section == SEC_TEXT:
            note(symbol.value + reloc.addend)
    return roots


def _island_spans(obj: ObjectFile, text: bytes) -> Dict[str, Tuple[int, int]]:
    """name -> (start, end) text-offset span of each branch island."""
    spans: Dict[str, Tuple[int, int]] = {}
    base = obj.layout[SEC_TEXT].base if SEC_TEXT in obj.layout else 0
    for symbol in obj.symbols.values():
        if not ISLAND_RE.match(symbol.name) or not symbol.defined:
            continue
        if symbol.section == SEC_TEXT:
            start = symbol.value
        elif symbol.section == SEC_ABS:
            start = symbol.value - base
        else:
            continue
        if 0 <= start and start + ISLAND_SIZE <= len(text):
            spans[symbol.name] = (start, start + ISLAND_SIZE)
    return spans


def _build_blocks(insns: Dict[int, _Insn], roots: Set[int],
                  islands: Dict[str, Tuple[int, int]]) -> List[_Block]:
    leaders: Set[int] = {0} | set(roots)
    for start, _end in islands.values():
        leaders.add(start)
    for insn in insns.values():
        for target in insn.targets:
            if target in insns:
                leaders.add(target)
        if insn.ends_block and insn.offset + 4 in insns:
            leaders.add(insn.offset + 4)
    ordered = sorted(leaders)
    end_of_text = max(insns) + 4 if insns else 0
    blocks = []
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) \
            else end_of_text
        blocks.append(_Block(start, end))
    return blocks


def _mark_reachable(blocks: List[_Block], insns: Dict[int, _Insn],
                    roots: Set[int]) -> None:
    by_start = {block.start: block for block in blocks}

    def block_of(offset: int) -> Optional[_Block]:
        for block in blocks:
            if block.start <= offset < block.end:
                return block
        return None

    frontier = [by_start[root] for root in roots if root in by_start]
    seen = set(id(block) for block in frontier)
    while frontier:
        block = frontier.pop()
        block.reachable = True
        succs: List[int] = []
        for offset in block.offsets():
            insn = insns[offset]
            if not insn.valid:
                break  # inline data stops the walk
            if insn.ends_block or offset + 4 >= block.end:
                succs.extend(t for t in insn.targets if t in insns)
                if insn.falls_through:
                    succs.append(offset + 4)
                break
        for succ in succs:
            nxt = by_start.get(succ) or block_of(succ)
            if nxt is not None and id(nxt) not in seen:
                seen.add(id(nxt))
                frontier.append(nxt)


# ---------------------------------------------------------------------------
# findings
# ---------------------------------------------------------------------------


def _report_island_entries(obj: ObjectFile, insns: Dict[int, _Insn],
                           islands: Dict[str, Tuple[int, int]],
                           report: Report) -> None:
    interiors = {
        interior: name
        for name, (start, end) in islands.items()
        for interior in range(start + 4, end, 4)
    }
    for insn in insns.values():
        for target in insn.targets:
            name = interiors.get(target)
            if name is not None:
                report.add(finding(
                    "CFG003", obj.name,
                    f"transfer at text+0x{insn.offset:x} lands mid-island "
                    f"(text+0x{target:x}, inside {name}); the thunk's "
                    f"address register would be half-loaded",
                    section=SEC_TEXT, offset=insn.offset, symbol=name,
                ))


def _report_orphan_islands(obj: ObjectFile, insns: Dict[int, _Insn],
                           islands: Dict[str, Tuple[int, int]],
                           jump_relocs, report: Report) -> None:
    targeted: Set[int] = set()
    for insn in insns.values():
        targeted.update(insn.targets)
    referenced_labels = {
        reloc.symbol for reloc in obj.relocations
        if reloc.type is RelocType.JUMP26
    }
    for name, (start, _end) in sorted(islands.items()):
        if start in targeted or name in referenced_labels:
            continue
        report.add(finding(
            "CFG004", obj.name,
            f"branch island {name} at text+0x{start:x} is never "
            f"targeted by any call site",
            section=SEC_TEXT, offset=start, symbol=name,
        ))


def _report_fall_off_and_escapes(obj: ObjectFile, insns: Dict[int, _Insn],
                                 blocks: List[_Block], text: bytes,
                                 report: Report) -> None:
    for block in blocks:
        if not block.reachable:
            continue
        for offset in block.offsets():
            insn = insns[offset]
            if not insn.valid:
                break
            for target in insn.targets:
                if not (0 <= target < len(text)):
                    report.add(finding(
                        "CFG002", obj.name,
                        f"transfer at text+0x{offset:x} targets "
                        f"text{target:+#x}, outside the section",
                        section=SEC_TEXT, offset=offset,
                    ))
            if insn.ends_block or offset + 4 >= block.end:
                if insn.falls_through and offset + 4 >= len(text):
                    report.add(finding(
                        "CFG002", obj.name,
                        f"execution falls off the end of text after "
                        f"text+0x{offset:x} (no terminator)",
                        section=SEC_TEXT, offset=offset,
                    ))
                break


def _report_unreachable(obj: ObjectFile, insns: Dict[int, _Insn],
                        blocks: List[_Block], report: Report) -> None:
    for block in blocks:
        if block.reachable:
            continue
        words = [insns[offset] for offset in block.offsets()]
        if all(insn.word == 0 for insn in words):
            continue  # alignment padding between merged modules
        if any(not insn.valid for insn in words):
            continue  # inline data: already covered by CFG005
        report.add(finding(
            "CFG001", obj.name,
            f"basic block text+0x{block.start:x}..0x{block.end:x} is "
            f"unreachable from every entry point",
            section=SEC_TEXT, offset=block.start,
        ))
