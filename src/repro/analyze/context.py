"""Scope context handed to the checks — what the verifier may assume.

The symbol-resolution audit reproduces :mod:`repro.linker.scoped`
semantics *statically*: an object's undefined references resolve against
its own scope level first (the modules on its link_info module list and
search path), then against its ancestors' levels, up toward the root.
:class:`LintContext` carries that chain as a list of levels, innermost
first, plus the layout facts (address-map entries, expected placement)
the layout and sharing checks audit against.

Everything here is plain in-memory data. The ``lds``/``ldl`` gates build
contexts from state the linkers already hold, so gating an image costs
zero simulated cycles; only the ``reprolint`` CLI goes through the
simulated file system to peek at module exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class ScopeModule:
    """One module visible at some level of the scope chain.

    *exports* maps symbol name to value (section offsets for templates,
    absolute addresses for placed segments). ``exports=None`` means the
    module is declared but unlocatable right now — the open-world case
    lds tolerates with a warning — so the audit must not claim any
    symbol is unresolvable.

    *text_symbols* names the exports that live in (or point into) text,
    which the sharing checker uses to catch stores into read-only code.
    """

    name: str
    sharing: str = "dynamic_public"
    exports: Optional[Dict[str, int]] = None
    text_symbols: frozenset = frozenset()

    @property
    def known(self) -> bool:
        return self.exports is not None


@dataclass
class LintContext:
    """Assumptions for one analysis run (all optional)."""

    # Scope chain, innermost level first. Level 0 holds the modules the
    # object itself can see; deeper levels are its ancestors'.
    scope_levels: List[List[ScopeModule]] = field(default_factory=list)

    # True when the chain is complete: every symbol must resolve against
    # the object + chain, so a miss is an ERROR (SYM001) rather than a
    # deferred run-time resolution.
    closed_world: bool = False

    # Live (base, span, ino) rows from the kernel address map; the
    # layout audit flags overlaps against them (LAY002).
    addrmap_entries: Sequence[Tuple[int, int, int]] = ()

    # Base address of the object's own segment, excluded from the
    # overlap check (a mapped segment always "overlaps" itself).
    self_base: Optional[int] = None

    # Whether the image is being placed in the public (SFS) range.
    # None = infer from the object's layout.
    expect_public: Optional[bool] = None

    # -- chain queries -----------------------------------------------

    def all_modules(self) -> List[ScopeModule]:
        return [m for level in self.scope_levels for m in level]

    def providers(self, symbol: str) -> List[Tuple[int, ScopeModule]]:
        """(level, module) pairs whose exports define *symbol*,
        innermost level first, module-list order within a level."""
        out: List[Tuple[int, ScopeModule]] = []
        for depth, level in enumerate(self.scope_levels):
            for module in level:
                if module.known and symbol in module.exports:
                    out.append((depth, module))
        return out

    def resolve(self, symbol: str) -> Optional[int]:
        """Scoped resolution: first provider wins (nearest level)."""
        hits = self.providers(symbol)
        if not hits:
            return None
        return hits[0][1].exports[symbol]

    def has_unknown_modules(self) -> bool:
        return any(not m.known for m in self.all_modules())
