"""The seeded broken-object corpus — one object per diagnostic code.

Each :class:`CorpusEntry` is a minimal hand-built object (plus the
context it must be analyzed under) engineered so that running the full
pipeline produces its diagnostic code **exactly once**. CI's
``lint-objects`` job replays the corpus and fails if any code stops
firing, fires twice, or a healthy in-tree build starts firing at all —
the regression net that keeps the catalogue honest.

Also usable directly::

    PYTHONPATH=src python -m repro.analyze          # corpus self-test
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    ObjectKind,
    Relocation,
    RelocType,
    SEC_ABS,
    SEC_BSS,
    SEC_DATA,
    SEC_TEXT,
    SEC_UNDEF,
    SectionLayout,
    Symbol,
    SymBinding,
)
from repro.analyze.context import LintContext, ScopeModule
from repro.analyze.pipeline import analyze_object

_JR_RA = isa.encode_r(isa.FN_JR, rs=isa.REG_RA)
_NOP = 0
_ADDI = isa.encode_i(isa.OP_ADDI, rs=0, rt=isa.REG_V0, imm=1)
_LUI_AT = isa.encode_i(isa.OP_LUI, rt=isa.REG_AT, imm=0)
_ORI_AT = isa.encode_i(isa.OP_ORI, rs=isa.REG_AT, rt=isa.REG_AT, imm=0)
_SW_AT = isa.encode_i(isa.OP_SW, rs=isa.REG_AT, rt=isa.REG_V0, imm=0)
_JR_AT = isa.encode_r(isa.FN_JR, rs=isa.REG_AT)


@dataclass
class CorpusEntry:
    """One broken object and the context that exposes its defect."""

    code: str
    title: str
    obj: ObjectFile
    context: LintContext

    def analyze(self):
        return analyze_object(self.obj, self.context)


def broken_objects() -> List[CorpusEntry]:
    """The full corpus, one entry per catalogue code, REL001..SAN004."""
    return [
        _rel001(), _rel002(), _rel003(), _rel004(), _rel005(), _rel006(),
        _sym001(), _sym002(), _sym003(),
        _cfg001(), _cfg002(), _cfg003(), _cfg004(), _cfg005(),
        _lay001(), _lay002(), _lay003(), _lay004(),
        _shr001(), _shr002(), _shr003(),
        _san001(), _san002(), _san003(), _san004(),
    ]


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _obj(name: str, words, kind: ObjectKind = ObjectKind.RELOCATABLE
         ) -> ObjectFile:
    """An object whose text is *words*, with global ``f`` at offset 0."""
    obj = ObjectFile(name, kind=kind)
    for word in words:
        obj.text.extend(int(word).to_bytes(4, "little"))
    obj.symbols["f"] = Symbol("f", SEC_TEXT, 0)
    return obj


def _undef(obj: ObjectFile, name: str) -> None:
    obj.symbols[name] = Symbol(name, SEC_UNDEF, 0)


def _island(obj: ObjectFile, offset: int, target: str = "far") -> str:
    label = f"__island_0__{target}"
    obj.symbols[label] = Symbol(label, SEC_TEXT, offset, SymBinding.LOCAL)
    return label


# ---------------------------------------------------------------------------
# relocation validator
# ---------------------------------------------------------------------------


def _rel001() -> CorpusEntry:
    obj = _obj("rel001.o", [_LUI_AT, _JR_RA])
    _undef(obj, "x")
    obj.relocations = [Relocation(SEC_TEXT, 0, RelocType.HI16, "x")]
    return CorpusEntry("REL001", "HI16 with no LO16 partner", obj,
                       LintContext())


def _rel002() -> CorpusEntry:
    obj = _obj("rel002.o", [_ORI_AT, _JR_RA])
    _undef(obj, "x")
    obj.relocations = [Relocation(SEC_TEXT, 0, RelocType.LO16, "x")]
    return CorpusEntry("REL002", "orphaned LO16", obj, LintContext())


def _rel003() -> CorpusEntry:
    obj = _obj("rel003.o", [_JR_RA])
    obj.bss_size = 8
    _undef(obj, "x")
    obj.relocations = [Relocation(SEC_BSS, 0, RelocType.WORD32, "x")]
    return CorpusEntry("REL003", "relocation site in byte-less bss", obj,
                       LintContext())


def _rel004() -> CorpusEntry:
    obj = _obj("rel004.o", [isa.encode_j(isa.OP_JAL, 0), _JR_RA])
    _undef(obj, "far")
    obj.relocations = [Relocation(SEC_TEXT, 0, RelocType.JUMP26, "far")]
    return CorpusEntry("REL004", "far call needing an island", obj,
                       LintContext())


def _rel005() -> CorpusEntry:
    obj = _obj("rel005", [isa.encode_j(isa.OP_JAL, 0), _JR_RA],
               kind=ObjectKind.EXECUTABLE)
    _undef(obj, "far")
    obj.relocations = [Relocation(SEC_TEXT, 0, RelocType.JUMP26, "far")]
    obj.layout[SEC_TEXT] = SectionLayout(SEC_TEXT, 0x0040_0000, 8)
    return CorpusEntry("REL005", "JUMP26 retained in a placed image", obj,
                       LintContext())


def _rel006() -> CorpusEntry:
    obj = _obj("rel006.o", [_JR_RA])
    obj.data.extend(bytes(8))
    obj.symbols["g"] = Symbol("g", SEC_DATA, 0)
    obj.relocations = [
        Relocation(SEC_DATA, 0, RelocType.WORD32, "g", addend=0x100),
    ]
    return CorpusEntry("REL006", "WORD32 addend out of bounds", obj,
                       LintContext())


# ---------------------------------------------------------------------------
# symbol-resolution audit
# ---------------------------------------------------------------------------


def _sym001() -> CorpusEntry:
    obj = _obj("sym001.o", [_JR_RA])
    _undef(obj, "missing")
    context = LintContext(
        scope_levels=[[ScopeModule("libc", exports={"printf": 0x100})]],
        closed_world=True,
    )
    return CorpusEntry("SYM001", "unresolvable undefined symbol", obj,
                       context)


def _sym002() -> CorpusEntry:
    obj = _obj("sym002.o", [_JR_RA])
    context = LintContext(scope_levels=[[
        ScopeModule("liba", exports={"dup": 0x100}),
        ScopeModule("libb", exports={"dup": 0x200}),
    ]])
    return CorpusEntry("SYM002", "duplicate export at one level", obj,
                       context)


def _sym003() -> CorpusEntry:
    obj = _obj("sym003.o", [_JR_RA])
    obj.symbols["dup"] = Symbol("dup", SEC_TEXT, 0)
    context = LintContext(scope_levels=[[
        ScopeModule("outer", exports={"dup": 0x100}),
    ]])
    return CorpusEntry("SYM003", "inner definition shadows outer", obj,
                       context)


# ---------------------------------------------------------------------------
# CFG / dead code
# ---------------------------------------------------------------------------


def _cfg001() -> CorpusEntry:
    obj = _obj("cfg001.o", [_JR_RA, _ADDI])  # addi is unreachable
    return CorpusEntry("CFG001", "unreachable block", obj, LintContext())


def _cfg002() -> CorpusEntry:
    obj = _obj("cfg002.o", [_ADDI, _ADDI])  # no terminator
    return CorpusEntry("CFG002", "falls off end of text", obj,
                       LintContext())


def _cfg003() -> CorpusEntry:
    obj = _obj("cfg003.o", [
        isa.encode_j(isa.OP_JAL, 8 >> 2),    # island entry: fine
        isa.encode_j(isa.OP_J, 12 >> 2),     # island middle: broken
        _LUI_AT, _ORI_AT, _JR_AT,            # the island, offset 8
    ])
    _island(obj, 8)
    return CorpusEntry("CFG003", "jump into island middle", obj,
                       LintContext())


def _cfg004() -> CorpusEntry:
    obj = _obj("cfg004.o", [_JR_RA, _LUI_AT, _ORI_AT, _JR_AT])
    _island(obj, 4)
    return CorpusEntry("CFG004", "orphaned island", obj, LintContext())


def _cfg005() -> CorpusEntry:
    obj = _obj("cfg005.o", [_JR_RA, 0xFFFF_FFFF])
    return CorpusEntry("CFG005", "undecodable word", obj, LintContext())


# ---------------------------------------------------------------------------
# layout audit
# ---------------------------------------------------------------------------


def _lay001() -> CorpusEntry:
    obj = _obj("lay001", [_JR_RA], kind=ObjectKind.EXECUTABLE)
    obj.layout[SEC_TEXT] = SectionLayout(SEC_TEXT, 0x7FFF_0000, 4)
    return CorpusEntry("LAY001", "placed in no architected region", obj,
                       LintContext())


def _lay002() -> CorpusEntry:
    obj = _obj("lay002", [_JR_RA], kind=ObjectKind.SEGMENT)
    obj.layout[SEC_TEXT] = SectionLayout(SEC_TEXT, 0x3000_0000, 4)
    context = LintContext(
        addrmap_entries=[(0x3000_0000, 0x10000, 42)],
        expect_public=True,
    )
    return CorpusEntry("LAY002", "overlaps a live segment", obj, context)


def _lay003() -> CorpusEntry:
    obj = _obj("lay003", [_JR_RA, _NOP, _NOP, _NOP],
               kind=ObjectKind.EXECUTABLE)
    obj.data.extend(bytes(8))
    obj.layout[SEC_TEXT] = SectionLayout(SEC_TEXT, 0x0040_0000, 16)
    obj.layout[SEC_DATA] = SectionLayout(SEC_DATA, 0x0040_0008, 8)
    return CorpusEntry("LAY003", "self-overlapping sections", obj,
                       LintContext())


def _lay004() -> CorpusEntry:
    obj = _obj("lay004", [_JR_RA], kind=ObjectKind.EXECUTABLE)
    obj.data.extend(bytes(8))
    obj.bss_size = 8
    obj.layout[SEC_TEXT] = SectionLayout(SEC_TEXT, 0x0040_0000, 4)
    obj.layout[SEC_DATA] = SectionLayout(SEC_DATA, 0x1000_0000, 8)
    obj.layout[SEC_BSS] = SectionLayout(SEC_BSS, 0x1002_0000, 8)
    return CorpusEntry("LAY004", "data+bss beyond the gp window", obj,
                       LintContext())


# ---------------------------------------------------------------------------
# sharing classes
# ---------------------------------------------------------------------------


def _shr001() -> CorpusEntry:
    obj = _obj("shr001.o", [_LUI_AT, _SW_AT, _JR_RA])
    obj.symbols["w"] = Symbol("w", SEC_TEXT, 0)
    obj.relocations = [
        Relocation(SEC_TEXT, 0, RelocType.HI16, "w"),
        Relocation(SEC_TEXT, 4, RelocType.LO16, "w"),
    ]
    return CorpusEntry("SHR001", "store through a text address", obj,
                       LintContext())


def _shr002() -> CorpusEntry:
    obj = _obj("shr002", [_JR_RA], kind=ObjectKind.SEGMENT)
    obj.data.extend(bytes(8))
    obj.layout[SEC_TEXT] = SectionLayout(SEC_TEXT, 0x3000_0000, 4)
    obj.layout[SEC_DATA] = SectionLayout(SEC_DATA, 0x3000_1000, 8)
    _undef(obj, "priv")
    obj.relocations = [Relocation(SEC_DATA, 0, RelocType.WORD32, "priv")]
    context = LintContext(
        scope_levels=[[
            ScopeModule("app", exports={"priv": 0x1000_0000}),
        ]],
        expect_public=True,
    )
    return CorpusEntry("SHR002", "public segment patched private", obj,
                       context)


def _shr003() -> CorpusEntry:
    obj = _obj("shr003.o", [_JR_RA])
    obj.link_info.dynamic_modules = [
        ("libx", "dynamic_public"),
        ("libx", "dynamic_private"),
    ]
    return CorpusEntry("SHR003", "conflicting sharing classes", obj,
                       LintContext())


# ---------------------------------------------------------------------------
# cross-sharing-class pointer analysis
# ---------------------------------------------------------------------------

_SAN_EXPORTS = {"pubseg": 0x3000_0100, "privptr": 0x1000_0040}

_LUI_V0 = isa.encode_i(isa.OP_LUI, rt=isa.REG_V0, imm=0)
_ORI_V0 = isa.encode_i(isa.OP_ORI, rs=isa.REG_V0, rt=isa.REG_V0, imm=0)
_LUI_A0 = isa.encode_i(isa.OP_LUI, rt=isa.REG_A0, imm=0)
_ORI_A0 = isa.encode_i(isa.OP_ORI, rs=isa.REG_A0, rt=isa.REG_A0, imm=0)
_SW_A0_AT = isa.encode_i(isa.OP_SW, rs=isa.REG_AT, rt=isa.REG_A0, imm=0)
_T0 = 8
_ADDI_T0_SP = isa.encode_i(isa.OP_ADDI, rs=isa.REG_SP, rt=_T0, imm=16)
_SW_T0_AT = isa.encode_i(isa.OP_SW, rs=isa.REG_AT, rt=_T0, imm=0)


def _san_context() -> LintContext:
    return LintContext(scope_levels=[[
        ScopeModule("env", exports=dict(_SAN_EXPORTS)),
    ]])


def _pair(obj: ObjectFile, offset: int, symbol: str) -> None:
    """A HI16/LO16 relocation pair at *offset* / *offset*+4."""
    obj.relocations.append(
        Relocation(SEC_TEXT, offset, RelocType.HI16, symbol))
    obj.relocations.append(
        Relocation(SEC_TEXT, offset + 4, RelocType.LO16, symbol))


def _san001() -> CorpusEntry:
    obj = _obj("san001.o", [
        _LUI_AT, _ORI_AT,       # at  <- &pubseg (public base)
        _LUI_V0, _ORI_V0,       # v0  <- &privptr (private address)
        _SW_AT,                 # sw v0, 0(at): plants it
        _JR_RA,
    ])
    _undef(obj, "pubseg")
    _undef(obj, "privptr")
    _pair(obj, 0, "pubseg")
    _pair(obj, 8, "privptr")
    return CorpusEntry("SAN001", "private pointer planted in public "
                       "segment", obj, _san_context())


def _san002() -> CorpusEntry:
    obj = _obj("san002.o", [
        _LUI_A0, _ORI_A0,                     # a0 <- &privptr
        isa.encode_j(isa.OP_JAL, 16 >> 2),    # publish(a0)
        _JR_RA,
        # publish, offset 16: stores its argument through &pubseg
        _LUI_AT, _ORI_AT,
        _SW_A0_AT,
        _JR_RA,
    ])
    obj.symbols["publish"] = Symbol("publish", SEC_TEXT, 16)
    _undef(obj, "pubseg")
    _undef(obj, "privptr")
    _pair(obj, 0, "privptr")
    _pair(obj, 16, "pubseg")
    obj.relocations.append(
        Relocation(SEC_TEXT, 8, RelocType.JUMP26, "publish"))
    return CorpusEntry("SAN002", "private pointer escapes through "
                       "publishing callee", obj, _san_context())


def _san003() -> CorpusEntry:
    obj = _obj("san003.o", [
        isa.encode_j(isa.OP_JAL, 20 >> 2),    # v0 <- mkpriv()
        _LUI_AT, _ORI_AT,                     # at <- &pubseg
        _SW_AT,                               # sw v0, 0(at)
        _JR_RA,
        # mkpriv, offset 20: returns &privptr
        _LUI_V0, _ORI_V0,
        _JR_RA,
    ])
    obj.symbols["mkpriv"] = Symbol("mkpriv", SEC_TEXT, 20)
    _undef(obj, "pubseg")
    _undef(obj, "privptr")
    _pair(obj, 4, "pubseg")
    _pair(obj, 20, "privptr")
    obj.relocations.append(
        Relocation(SEC_TEXT, 0, RelocType.JUMP26, "mkpriv"))
    return CorpusEntry("SAN003", "laundered private pointer stored "
                       "public", obj, _san_context())


def _san004() -> CorpusEntry:
    obj = _obj("san004.o", [
        _LUI_AT, _ORI_AT,       # at <- &pubseg
        _ADDI_T0_SP,            # t0 <- sp + 16
        _SW_T0_AT,              # sw t0, 0(at)
        _JR_RA,
    ])
    _undef(obj, "pubseg")
    _pair(obj, 0, "pubseg")
    return CorpusEntry("SAN004", "stack address stored public", obj,
                       _san_context())


# ---------------------------------------------------------------------------
# self-test
# ---------------------------------------------------------------------------


def run_self_test(strict: bool = False) -> List[str]:
    """Analyze the corpus; return a list of failure strings (empty = ok).

    With *strict*, additionally require that no entry produces ERROR
    findings under codes *other* than its own — the corpus stays
    surgically minimal.
    """
    failures: List[str] = []
    for entry in broken_objects():
        report = entry.analyze()
        hits = report.count(entry.code)
        if hits != 1:
            failures.append(
                f"{entry.code} ({entry.title}): fired {hits}x, want 1"
            )
        if strict:
            stray = [f for f in report.errors if f.code != entry.code]
            if stray:
                failures.append(
                    f"{entry.code}: stray errors {[f.code for f in stray]}"
                )
    return failures
