"""Check 4 — layout audit (LAY001..LAY004).

Audits a *placed* image (EXECUTABLE or SEGMENT — an object with a
``layout``) against the Figure 3 address-space contract:

* ``LAY001`` — every section must sit inside an architected region, and
  the right one: public modules inside the SFS range
  (0x3000_0000..0x7000_0000), private images in the text/heap ranges.
  The caller states the expectation via ``context.expect_public``;
  otherwise the audit only demands *some* architected region.
* ``LAY002`` — the placement must not overlap any live segment in the
  kernel address map (a mapping-time failure caught before map time).
* ``LAY003`` — the image's own sections must not overlap each other.
* ``LAY004`` — data+bss spans beyond 64 KiB strain the one-instruction
  gp-relative addressing window; advisory, since the toolchain never
  emits gp-relative references today.

Templates (no ``layout``) are skipped — they have no addresses yet.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.objfile.format import ObjectFile, SEC_BSS, SEC_DATA
from repro.vm.layout import SFS_REGION, region_of
from repro.analyze.context import LintContext
from repro.analyze.report import Report, finding

GP_WINDOW = 0x10000  # one signed-16 load/store reach around gp


def check_layout(obj: ObjectFile, context: LintContext,
                 report: Report) -> None:
    if not obj.layout:
        return
    spans = _section_spans(obj)
    _check_regions(obj, context, spans, report)
    _check_map_overlap(obj, context, spans, report)
    _check_self_overlap(obj, spans, report)
    _check_gp_window(obj, report)


def _section_spans(obj: ObjectFile) -> List[Tuple[str, int, int]]:
    """(section, base, end) for every non-empty placed section."""
    return [
        (name, sec.base, sec.base + sec.size)
        for name, sec in sorted(obj.layout.items())
        if sec.size > 0
    ]


def _check_regions(obj: ObjectFile, context: LintContext,
                   spans: List[Tuple[str, int, int]],
                   report: Report) -> None:
    for name, base, end in spans:
        try:
            region = region_of(base)
        except ValueError:
            region = None
        if region is None or end > region.end:
            report.add(finding(
                "LAY001", obj.name,
                f"section {name!r} spans 0x{base:08x}..0x{end:08x}, "
                f"which leaves every architected region",
                section=name, address=base,
            ))
            continue
        if context.expect_public is True and region is not SFS_REGION:
            report.add(finding(
                "LAY001", obj.name,
                f"public module section {name!r} placed at 0x{base:08x} "
                f"in the private {region.name!r} region; a public "
                f"address must mean the same thing in every domain",
                section=name, address=base,
            ))
        elif context.expect_public is False and region is SFS_REGION:
            report.add(finding(
                "LAY001", obj.name,
                f"private image section {name!r} placed at 0x{base:08x} "
                f"inside the shared (SFS) region",
                section=name, address=base,
            ))


def _check_map_overlap(obj: ObjectFile, context: LintContext,
                       spans: List[Tuple[str, int, int]],
                       report: Report) -> None:
    if not context.addrmap_entries:
        return
    lo = min(base for _n, base, _e in spans)
    hi = max(end for _n, _b, end in spans)
    for base, span, ino in context.addrmap_entries:
        if context.self_base is not None and base == context.self_base:
            continue
        if lo < base + span and base < hi:
            report.add(finding(
                "LAY002", obj.name,
                f"placement 0x{lo:08x}..0x{hi:08x} overlaps the live "
                f"segment at 0x{base:08x} (+0x{span:x}, inode {ino})",
                address=lo,
            ))


def _check_self_overlap(obj: ObjectFile,
                        spans: List[Tuple[str, int, int]],
                        report: Report) -> None:
    ordered = sorted(spans, key=lambda item: item[1])
    for (name_a, base_a, end_a), (name_b, base_b, _end_b) in zip(
            ordered, ordered[1:]):
        if base_b < end_a:
            report.add(finding(
                "LAY003", obj.name,
                f"section {name_b!r} at 0x{base_b:08x} starts before "
                f"{name_a!r} ends (0x{end_a:08x})",
                section=name_b, address=base_b,
            ))


def _check_gp_window(obj: ObjectFile, report: Report) -> None:
    data = obj.layout.get(SEC_DATA)
    bss = obj.layout.get(SEC_BSS)
    present = [sec for sec in (data, bss) if sec is not None and sec.size]
    if not present:
        return
    lo = min(sec.base for sec in present)
    hi = max(sec.base + sec.size for sec in present)
    if hi - lo > GP_WINDOW:
        report.add(finding(
            "LAY004", obj.name,
            f"data+bss span 0x{hi - lo:x} bytes exceeds the 64 KiB "
            f"gp-relative addressing window",
            section=SEC_DATA, address=lo,
        ))
