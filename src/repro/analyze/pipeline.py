"""The reprolint pipeline — run every check over an object and report.

Entry points:

* :func:`analyze_object` — run the five check categories over one
  :class:`~repro.objfile.format.ObjectFile` and return a
  :class:`~repro.analyze.report.Report`;
* :func:`analyze_archive` — per-member reports merged into one;
* :func:`verify_image` — the gate ``lds``/``ldl`` call: analyze, then
  raise :class:`~repro.errors.LintError` if any ERROR finding exists.
  Gate contexts are built from in-memory linker state only, so gating
  charges **zero simulated cycles**;
* :func:`context_from_kernel` — build a :class:`LintContext` for the
  ``reprolint`` CLI by peeking module exports through the simulated
  file system (this one *does* spend simulated cycles — it is
  tooling, not a load path);
* :func:`lint_enabled_default` — the ``REPRO_LINT=1`` env toggle the
  linkers consult when no explicit ``verify=`` was passed.

Invariant checked on every relocatable: the REL004 far-call findings
must agree one-for-one with
:func:`repro.linker.branch_islands.count_far_jumps` under the predicate
lds actually uses — the advisory and the transform can never drift.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.linker.branch_islands import count_far_jumps
from repro.linker.scoped import peek_exports
from repro.linker.searchpath import SearchPath
from repro.objfile.archive import Archive
from repro.objfile.format import ObjectFile, ObjectKind, RelocType
from repro.analyze.context import LintContext, ScopeModule
from repro.analyze.report import Report, Severity
from repro.analyze.relocs import check_relocations
from repro.analyze.symbols import check_symbols
from repro.analyze.cfg import check_cfg
from repro.analyze.layout import check_layout
from repro.analyze.sharing import check_sharing
from repro.analyze.sanitize import check_sanitize

# Ordered registry: (category name, check function). Category names are
# what ``reprolint --only`` matches on.
CHECKS: List[Tuple[str, Callable[..., None]]] = [
    ("relocations", check_relocations),
    ("symbols", check_symbols),
    ("cfg", check_cfg),
    ("layout", check_layout),
    ("sharing", check_sharing),
    ("sanitize", check_sanitize),
]


def lint_enabled_default() -> bool:
    """The linkers' default when ``verify=None``: the REPRO_LINT env."""
    return os.environ.get("REPRO_LINT", "0") not in ("", "0")


def analyze_object(obj: ObjectFile, context: Optional[LintContext] = None,
                   subject: str = "",
                   only: Optional[List[str]] = None) -> Report:
    """Run the checks (optionally a subset) over *obj*."""
    context = context if context is not None else LintContext()
    report = Report(subject or obj.name)
    for name, check in CHECKS:
        if only is not None and name not in only:
            continue
        check(obj, context, report)
    if obj.kind is ObjectKind.RELOCATABLE \
            and (only is None or "relocations" in only):
        _assert_far_jump_agreement(obj, report)
    return report


def analyze_archive(archive: Archive,
                    context: Optional[LintContext] = None,
                    subject: str = "") -> Report:
    """Analyze every member; the merged report keeps member names."""
    merged = Report(subject or archive.name)
    for member in archive.members:
        merged.merge(analyze_object(member, context))
    return merged


def verify_image(obj: ObjectFile, context: Optional[LintContext] = None,
                 subject: str = "") -> Report:
    """The lds/ldl gate: raise LintError on any ERROR finding.

    Pure in-memory analysis — no syscalls, no simulated cycles — so an
    enabled gate cannot perturb the cycle counts experiments measure.
    """
    report = analyze_object(obj, context, subject=subject)
    report.raise_if(Severity.ERROR)
    return report


def _assert_far_jump_agreement(obj: ObjectFile, report: Report) -> None:
    """REL004 must equal count_far_jumps under lds's own predicate.

    Skipped when a JUMP26 site itself is malformed (REL003 supersedes
    the advisory for that site, so the counts legitimately differ).
    """
    bad_sites = {(f.section, f.offset) for f in report.by_code("REL003")}
    jumps = [r for r in obj.relocations if r.type is RelocType.JUMP26]
    if any((r.section, r.offset) in bad_sites for r in jumps):
        return
    far = count_far_jumps(
        obj,
        lambda symbol: not _defined_in(obj, symbol),
    )
    found = report.count("REL004")
    assert found == far, (
        f"{obj.name}: reprolint saw {found} far call sites but "
        f"count_far_jumps sees {far}; the advisory and the island "
        f"transform have drifted apart"
    )


def _defined_in(obj: ObjectFile, symbol: str) -> bool:
    entry = obj.symbols.get(symbol)
    return entry is not None and entry.defined


# ---------------------------------------------------------------------------
# context builders
# ---------------------------------------------------------------------------


def context_from_kernel(kernel: Kernel, proc: Process, obj: ObjectFile,
                        expect_public: Optional[bool] = None
                        ) -> LintContext:
    """Build the CLI's scope context by peeking the object's own
    link_info module list through the simulated file system."""
    search = SearchPath(list(obj.link_info.search_path) or [proc.cwd])
    level: List[ScopeModule] = []
    for name, sclass in obj.link_info.dynamic_modules:
        path = _locate(kernel, proc, search, name)
        exports = None
        if path is not None:
            exports = peek_exports(kernel, proc, path)
        level.append(ScopeModule(name=name, sharing=sclass,
                                 exports=exports))
    try:
        entries = kernel.sfs.addrmap.entries()
    except AttributeError:
        entries = []
    return LintContext(
        scope_levels=[level] if level else [],
        closed_world=False,
        addrmap_entries=entries,
        expect_public=expect_public,
    )


def _locate(kernel: Kernel, proc: Process, search: SearchPath,
            name: str) -> Optional[str]:
    for candidate in _name_variants(name):
        path = search.find(kernel.vfs, candidate, proc.uid, proc.cwd)
        if path is not None:
            return path
    return None


def _name_variants(name: str) -> List[str]:
    if name.startswith("/"):
        return [name]
    if name.endswith(".o"):
        return [name[:-2], name]  # placed module first, then template
    return [name, name + ".o"]
