"""Check 1 — relocation validator (REL001..REL006).

Audits the relocation table of any HOF object:

* HI16/LO16 pairing and ordering: the toolchain only ever emits the two
  halves adjacently (HI16 at ``off``, LO16 at ``off+4``) against the
  same symbol+addend, because the pair reassembles one 32-bit address.
  A lone half would patch garbage into the image at resolve time.
* JUMP26 reachability: on a template, a jump to a symbol the object
  does not define may land outside the caller's 256 MiB region — the
  R3000 limitation that forces ``lds``/``ldl`` to route the call
  through a branch island. ``reprolint`` flags those sites (REL004,
  advisory) with exactly the predicate
  :func:`repro.linker.branch_islands.count_far_jumps` uses, and the
  pipeline asserts the two agree. On a *placed* image a JUMP26 that
  still cannot reach its resolved target — or that was retained
  unresolved at all, when lds should have islanded it — is REL005, an
  error that would otherwise surface as a RelocationError at first
  touch under ldl.
* WORD32 bounds: target + addend must stay inside the target symbol's
  section (one-past-the-end is allowed for end pointers).
* Every relocation site must lie within its section's bytes (REL003) —
  bss has no bytes, so a reloc claiming to live there can never be
  applied.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ObjectFormatError
from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    Relocation,
    RelocType,
    SEC_ABS,
    SEC_DATA,
    SEC_TEXT,
)
from repro.analyze.context import LintContext
from repro.analyze.report import Report, finding, format_reloc

_BYTE_SECTIONS = (SEC_TEXT, SEC_DATA)


def check_relocations(obj: ObjectFile, context: LintContext,
                      report: Report) -> None:
    by_site: Dict[Tuple[str, int], Relocation] = {
        (reloc.section, reloc.offset): reloc for reloc in obj.relocations
    }
    for reloc in obj.relocations:
        if not _site_ok(obj, reloc, report):
            continue
        if reloc.type is RelocType.HI16:
            _check_hi16(obj, reloc, by_site, report)
        elif reloc.type is RelocType.LO16:
            _check_lo16(obj, reloc, by_site, report)
        elif reloc.type is RelocType.JUMP26:
            _check_jump26(obj, reloc, report)
        elif reloc.type is RelocType.WORD32:
            _check_word32(obj, reloc, report)


# ---------------------------------------------------------------------------


def _site_ok(obj: ObjectFile, reloc: Relocation, report: Report) -> bool:
    """REL003 — the site must be patchable bytes inside its section."""
    if reloc.section not in _BYTE_SECTIONS:
        report.add(finding(
            "REL003", obj.name,
            f"relocation {format_reloc(reloc)} targets section "
            f"{reloc.section!r}, which has no bytes to patch",
            section=reloc.section, offset=reloc.offset,
            symbol=reloc.symbol,
        ))
        return False
    size = _section_extent(obj, reloc.section)
    if reloc.offset < 0 or reloc.offset + 4 > size:
        report.add(finding(
            "REL003", obj.name,
            f"relocation {format_reloc(reloc)} at offset 0x{reloc.offset:x}"
            f" lies outside the 0x{size:x}-byte section",
            section=reloc.section, offset=reloc.offset,
            symbol=reloc.symbol,
        ))
        return False
    return True


def _section_extent(obj: ObjectFile, section: str) -> int:
    """Patchable span of *section*: segment metadata carries no bytes
    (the image lives in the mapped file), so prefer the layout size."""
    if obj.layout and section in obj.layout:
        return obj.layout[section].size
    return obj.section_size(section)


def _check_hi16(obj: ObjectFile, reloc: Relocation,
                by_site: Dict[Tuple[str, int], Relocation],
                report: Report) -> None:
    partner = by_site.get((reloc.section, reloc.offset + 4))
    if partner is None or partner.type is not RelocType.LO16 \
            or partner.symbol != reloc.symbol \
            or partner.addend != reloc.addend:
        report.add(finding(
            "REL001", obj.name,
            f"{format_reloc(reloc)} has no matching LO16 at "
            f"{reloc.section}+0x{reloc.offset + 4:x}; the address pair "
            f"cannot be reassembled",
            section=reloc.section, offset=reloc.offset,
            symbol=reloc.symbol,
        ))


def _check_lo16(obj: ObjectFile, reloc: Relocation,
                by_site: Dict[Tuple[str, int], Relocation],
                report: Report) -> None:
    partner = by_site.get((reloc.section, reloc.offset - 4))
    if partner is None or partner.type is not RelocType.HI16 \
            or partner.symbol != reloc.symbol \
            or partner.addend != reloc.addend:
        report.add(finding(
            "REL002", obj.name,
            f"{format_reloc(reloc)} is not preceded by its HI16 half at "
            f"{reloc.section}+0x{reloc.offset - 4:x} (orphaned or "
            f"mis-ordered pair)",
            section=reloc.section, offset=reloc.offset,
            symbol=reloc.symbol,
        ))


def _check_jump26(obj: ObjectFile, reloc: Relocation,
                  report: Report) -> None:
    symbol = obj.symbols.get(reloc.symbol)
    defined = symbol is not None and symbol.defined
    if obj.layout:
        # Placed image: the site has an absolute address.
        site = obj.layout[reloc.section].base + reloc.offset
        if defined and symbol.section == SEC_ABS:
            target = symbol.value + reloc.addend
            if not isa.jump_reachable(site, target):
                report.add(finding(
                    "REL005", obj.name,
                    f"{format_reloc(reloc)}: jump at 0x{site:08x} cannot "
                    f"reach 0x{target:08x} (different 256 MiB region); "
                    f"a branch island was required but is missing",
                    section=reloc.section, offset=reloc.offset,
                    address=site, symbol=reloc.symbol,
                ))
            return
        if not defined:
            # lds islands every cross-module JUMP26 before layout, so a
            # retained one is a latent first-touch RelocationError: any
            # module ldl could bind it to (SFS or the private dynamic
            # range) lives outside the caller's region.
            report.add(finding(
                "REL005", obj.name,
                f"{format_reloc(reloc)}: JUMP26 retained unresolved in a "
                f"placed image; run-time resolution cannot reach outside "
                f"the 0x{site & 0xF0000000:08x} region without an island",
                section=reloc.section, offset=reloc.offset,
                address=site, symbol=reloc.symbol,
            ))
        return
    # Template: reachability is unknowable until placement, but a jump
    # to a symbol this object does not define may resolve to another
    # region entirely — the call sites count_far_jumps() counts and
    # insert_branch_islands() rewrites.
    if not defined:
        report.add(finding(
            "REL004", obj.name,
            f"{format_reloc(reloc)}: call site will need a branch island "
            f"if {reloc.symbol!r} places outside the caller's 256 MiB "
            f"region",
            section=reloc.section, offset=reloc.offset,
            symbol=reloc.symbol,
        ))


def _check_word32(obj: ObjectFile, reloc: Relocation,
                  report: Report) -> None:
    symbol = obj.symbols.get(reloc.symbol)
    if symbol is None or not symbol.defined:
        return  # resolution deferred; nothing to bound against
    if symbol.section == SEC_ABS:
        target = symbol.value + reloc.addend
        if not 0 <= target <= 0xFFFFFFFF:
            report.add(finding(
                "REL006", obj.name,
                f"{format_reloc(reloc)} resolves to 0x{target:x}, outside "
                f"the 32-bit address space",
                section=reloc.section, offset=reloc.offset,
                symbol=reloc.symbol,
            ))
        return
    try:
        section_size = obj.section_size(symbol.section)
    except ObjectFormatError:
        return
    target = symbol.value + reloc.addend
    if target < 0 or target > section_size:
        report.add(finding(
            "REL006", obj.name,
            f"{format_reloc(reloc)} points 0x{target:x} into the "
            f"0x{section_size:x}-byte section {symbol.section!r} "
            f"(addend out of bounds)",
            section=reloc.section, offset=reloc.offset,
            symbol=reloc.symbol,
        ))
