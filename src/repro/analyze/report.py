"""The shared report model for ``reprolint`` (repro.analyze).

Every check produces :class:`Finding`s with *stable* diagnostic codes —
``REL001`` means the same thing today and in every future release, so
CI configs and suppression lists can match on codes rather than message
text. The full catalogue lives in :data:`CATALOG` (and is rendered as a
table in DESIGN.md §7).

Severities:

* ``INFO`` — advisory; expected in healthy objects (e.g. a template's
  far call that *will* get a branch island at link time);
* ``WARNING`` — suspicious; ``reprolint --strict`` refuses it;
* ``ERROR`` — definitely broken; the ``lds``/``ldl`` verification gate
  raises :class:`repro.errors.LintError` before the image is mapped.

The formatting helpers at the bottom (:func:`format_site`,
:func:`format_reloc`) are shared by ``nm``/``objdump`` and ``reprolint``
so every tool renders a relocation site the same way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import LintError
from repro.objfile.format import Relocation


class Severity(enum.IntEnum):
    """Ordered so ``max()`` over findings yields the worst one."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


class DuplicateCodeError(ValueError):
    """Two check families tried to claim the same diagnostic code."""


class _Catalog(Dict[str, Tuple[Severity, str]]):
    """The code table with collision detection.

    Codes are append-only and globally unique: a family registering a
    code someone else already owns is a programming error that would
    silently change what CI suppression lists match, so it raises at
    import time rather than shadowing the earlier meaning.
    """

    def __setitem__(self, code: str,
                    value: Tuple[Severity, str]) -> None:
        if code in self:
            raise DuplicateCodeError(
                f"diagnostic code {code!r} is already registered as "
                f"{self[code][1]!r}; codes are append-only and unique"
            )
        super().__setitem__(code, value)


def register_codes(entries: Dict[str, Tuple[Severity, str]]) -> None:
    """Add a check family's codes to :data:`CATALOG` (collision-safe)."""
    for code, value in entries.items():
        CATALOG[code] = value


# code -> (default severity, one-line title). Codes are append-only.
CATALOG: Dict[str, Tuple[Severity, str]] = _Catalog()
_BASE_CODES: Dict[str, Tuple[Severity, str]] = {
    # -- relocation validator ------------------------------------------
    "REL001": (Severity.ERROR,
               "HI16 relocation without a matching LO16 at site+4"),
    "REL002": (Severity.ERROR,
               "LO16 relocation without its HI16 predecessor at site-4"),
    "REL003": (Severity.ERROR,
               "relocation site lies outside its section's bytes"),
    "REL004": (Severity.INFO,
               "JUMP26 to a possibly-far symbol (branch island needed)"),
    "REL005": (Severity.ERROR,
               "JUMP26 cannot reach its target (island required, missing)"),
    "REL006": (Severity.WARNING,
               "WORD32 target+addend lies outside the symbol's section"),
    # -- symbol-resolution audit ---------------------------------------
    "SYM001": (Severity.ERROR,
               "undefined symbol unresolvable anywhere on the scope chain"),
    "SYM002": (Severity.ERROR,
               "duplicate global definition within one scope level"),
    "SYM003": (Severity.INFO,
               "definition shadows a same-named symbol in an outer scope"),
    # -- CFG / dead-code analysis --------------------------------------
    "CFG001": (Severity.WARNING,
               "unreachable basic block (dead code)"),
    "CFG002": (Severity.ERROR,
               "control flow can fall off the end of text"),
    "CFG003": (Severity.ERROR,
               "jump targets the middle of a branch-island thunk"),
    "CFG004": (Severity.WARNING,
               "orphaned branch island (never targeted)"),
    "CFG005": (Severity.INFO,
               "undecodable word in text (treated as inline data)"),
    # -- layout audit --------------------------------------------------
    "LAY001": (Severity.ERROR,
               "section placed outside its architected address region"),
    "LAY002": (Severity.ERROR,
               "placement overlaps a live segment in the address map"),
    "LAY003": (Severity.ERROR,
               "sections of one image overlap each other"),
    "LAY004": (Severity.WARNING,
               "data+bss span exceeds the 64 KiB gp-relative window"),
    # -- sharing-class checker -----------------------------------------
    "SHR001": (Severity.ERROR,
               "store instruction writes read-only text"),
    "SHR002": (Severity.ERROR,
               "public segment would be patched with a private address"),
    "SHR003": (Severity.WARNING,
               "module listed under two conflicting sharing classes"),
    # -- disk-image checker (reprofsck) --------------------------------
    "DSK001": (Severity.ERROR,
               "no valid superblock (or geometry disagrees with device)"),
    "DSK002": (Severity.WARNING,
               "primary superblock invalid; backup superblock used"),
    "DSK003": (Severity.ERROR,
               "checkpoint image undecodable or fails its checksum"),
    "DSK004": (Severity.ERROR,
               "valid journal record beyond the tail (mid-stream damage)"),
    "DSK005": (Severity.ERROR,
               "journal structure violated (op outside its transaction)"),
    "DSK006": (Severity.ERROR,
               "committed journal transaction fails to replay"),
    "DSK010": (Severity.ERROR,
               "directory entry references a missing inode"),
    "DSK011": (Severity.ERROR,
               "inode link count disagrees with directory references"),
    "DSK012": (Severity.WARNING,
               "inode unreachable from the volume root (orphan)"),
    "DSK013": (Severity.ERROR,
               "symlink inode lacks a target"),
    "DSK020": (Severity.ERROR,
               "shared-volume inode or file exceeds the volume's limits"),
    "DSK021": (Severity.ERROR,
               "address-map entry without a backing segment inode"),
    "DSK022": (Severity.ERROR,
               "segment inode missing from the stored address map"),
    "DSK023": (Severity.ERROR,
               "stored map address disagrees with the inode's address"),
    "DSK024": (Severity.ERROR,
               "segment address ranges overlap"),
}
register_codes(_BASE_CODES)


@dataclass
class Finding:
    """One diagnostic: a coded observation anchored to an object site."""

    code: str
    severity: Severity
    message: str
    obj: str = ""              # name of the object/archive member
    section: str = ""          # "" when the finding is object-wide
    offset: Optional[int] = None
    address: Optional[int] = None   # absolute, when a layout is known
    symbol: str = ""

    def site(self) -> str:
        """``text+0x14`` / ``0x00400014`` / ``-`` — wherever it lives."""
        return format_site(self.section, self.offset, self.address)

    def __str__(self) -> str:
        parts = [f"{self.code} {self.severity}:", self.obj or "<object>"]
        site = self.site()
        if site != "-":
            parts.append(site)
        parts.append(f"{self.message}")
        if self.symbol:
            parts.append(f"[{self.symbol}]")
        return " ".join(parts)


def finding(code: str, obj: str, message: str, **where) -> Finding:
    """Build a Finding with the catalogue's default severity for *code*."""
    severity, _title = CATALOG[code]
    return Finding(code, severity, message, obj, **where)


class Report:
    """An ordered collection of findings with stable rendering."""

    def __init__(self, subject: str = "") -> None:
        self.subject = subject
        self.findings: List[Finding] = []

    # -- accumulation --------------------------------------------------

    def add(self, item: Finding) -> Finding:
        self.findings.append(item)
        return item

    def extend(self, items: Iterable[Finding]) -> None:
        self.findings.extend(items)

    def merge(self, other: "Report") -> None:
        self.findings.extend(other.findings)

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    def count(self, code: str) -> int:
        return len(self.by_code(code))

    def at_least(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity >= severity]

    @property
    def errors(self) -> List[Finding]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity is Severity.WARNING]

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    def codes(self) -> List[str]:
        return sorted({f.code for f in self.findings})

    # -- enforcement ---------------------------------------------------

    def raise_if(self, threshold: Severity = Severity.ERROR) -> None:
        """Raise :class:`LintError` when any finding meets *threshold*."""
        offenders = self.at_least(threshold)
        if offenders:
            raise LintError(
                [str(f) for f in offenders],
                subject=self.subject,
            )

    # -- rendering -----------------------------------------------------

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Stable text rendering: worst findings first, then by site."""
        shown = [f for f in self.findings if f.severity >= min_severity]
        shown.sort(key=lambda f: (-int(f.severity), f.code, f.obj,
                                  f.section, f.offset or 0))
        lines = [str(f) for f in shown]
        counts = {sev: 0 for sev in Severity}
        for item in self.findings:
            counts[item.severity] += 1
        tally = ", ".join(
            f"{counts[sev]} {sev}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        )
        head = self.subject or "<report>"
        lines.append(f"{head}: {len(self.findings)} finding(s) ({tally})")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared site/relocation formatting (used by nm/objdump/reprolint)
# ---------------------------------------------------------------------------

def format_site(section: str, offset: Optional[int],
                address: Optional[int] = None) -> str:
    """One canonical spelling of a location inside an object."""
    if address is not None:
        return f"0x{address:08x}"
    if section and offset is not None:
        return f"{section}+0x{offset:x}"
    if section:
        return section
    return "-"


def format_reloc(reloc: Relocation, codes: Iterable[str] = ()) -> str:
    """``KIND symbol+addend [CODE...]`` — the inline annotation objdump
    prints at a relocation site and reprolint echoes in findings."""
    addend = f"+{reloc.addend:#x}" if reloc.addend else ""
    text = f"{reloc.type.name} {reloc.symbol}{addend}"
    tags = " ".join(sorted(codes))
    return f"{text} [{tags}]" if tags else text
