"""Check 6 — cross-sharing-class pointer analysis (SAN001..SAN004).

The paper's public segments live at one global address in every domain,
so an address stored *into* one is read back verbatim by every sharer.
A pointer into private memory (an executable's own data, a stack frame,
a COW page) means something different — or nothing at all — in every
other process. The dynamic sanitizer (repro.sanitize) catches such
pointers being *dereferenced*; this pass catches them being *planted*,
statically, before the image ever runs.

The analysis is a per-function linear abstract interpretation over the
object's text. Registers carry a provenance class:

* ``pub``   — materialized (HI16/LO16 pair) from a symbol the scope
  chain resolves into the public SFS range;
* ``priv``  — materialized from a symbol resolving *outside* it;
* ``stack`` — derived from ``sp``;
* ``ret``   — the return value of a callee whose summary says it
  returns a private pointer;
* ``arg k`` — the function's own k-th incoming argument.

Interprocedural facts come from one summary pass over every function:
``publishes`` (the argument indices a function stores through a public
base) and ``returns_private``. The checker then rescans and flags:

* ``SAN001`` — a store writes a *private* pointer through a *public*
  base (the direct plant);
* ``SAN002`` — a call passes a private pointer to a callee that
  publishes that argument (the escape);
* ``SAN003`` — a callee's returned private pointer is stored through a
  public base (the laundered plant);
* ``SAN004`` — a stack-derived address is stored through a public base
  (advisory: legal for intra-run scratch, lethal across domains).

Provenance never flows through memory and dies at every control-flow
join, so a register the analysis cannot prove private stays unknown —
the pass is deliberately false-positive-free on runtime-computed
pointers (shmalloc results, pointer chasing) at the cost of missing
them; those are the dynamic sanitizer's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    RelocType,
    SEC_TEXT,
)
from repro.vm.layout import is_public_address
from repro.analyze.context import LintContext
from repro.analyze.report import Report, Severity, finding, register_codes

register_codes({
    # -- cross-sharing-class pointer analysis --------------------------
    "SAN001": (Severity.ERROR,
               "private pointer stored through a public-segment base"),
    "SAN002": (Severity.ERROR,
               "private pointer escapes through a publishing callee"),
    "SAN003": (Severity.ERROR,
               "callee-returned private pointer stored into a public "
               "segment"),
    "SAN004": (Severity.WARNING,
               "stack-derived address stored into a public segment"),
})

_NARGS = 4          # a0..a3
_BRANCH_OPS = frozenset({
    isa.OP_BEQ, isa.OP_BNE, isa.OP_BLEZ, isa.OP_BGTZ, isa.OP_REGIMM,
})
#: Caller-saved registers clobbered by a call: at, v0/v1, a0..a3,
#: t0..t9, ra.
_CALLER_SAVED = tuple(
    [isa.REG_AT, isa.REG_V0, isa.REG_V1]
    + list(range(isa.REG_A0, isa.REG_A0 + _NARGS))
    + list(range(8, 16)) + [24, 25, isa.REG_RA]
)

# Provenance lattice values (None = unknown).
_PUB = "pub"
_PRIV = "priv"
_STACK = "stack"
_RET = "ret"
_ARG = "arg"
_HI = "hi"
_POINTERISH = frozenset({_PUB, _PRIV, _STACK, _RET, _ARG})


@dataclass
class _Summary:
    """What a function does with pointers, as seen from a call site."""

    publishes: Set[int] = field(default_factory=set)
    returns_private: bool = False


@dataclass
class _Func:
    name: str
    start: int
    end: int


def check_sanitize(obj: ObjectFile, context: LintContext,
                   report: Report) -> None:
    """Run the cross-sharing-class pointer analysis over *obj*."""
    text = bytes(obj.text)
    if len(text) < 4:
        return
    relocs = _reloc_index(obj)
    funcs = _functions(obj, len(text))
    summaries: Dict[str, _Summary] = {}
    for func in funcs:
        summaries[func.name] = _scan(obj, context, text, relocs, func,
                                     summaries={}, report=None)
    for func in funcs:
        _scan(obj, context, text, relocs, func, summaries=summaries,
              report=report)


# ---------------------------------------------------------------------------
# structure discovery
# ---------------------------------------------------------------------------


def _reloc_index(obj: ObjectFile) -> Dict[int, List]:
    """Text relocations keyed by site offset."""
    index: Dict[int, List] = {}
    for reloc in obj.relocations:
        if reloc.section == SEC_TEXT:
            index.setdefault(reloc.offset, []).append(reloc)
    return index


def _functions(obj: ObjectFile, text_len: int) -> List[_Func]:
    """Function extents from the defined text symbols, islands excluded.

    An object with no text symbols is analyzed as one anonymous
    function starting at offset 0.
    """
    starts: List[Tuple[int, str]] = []
    for name, symbol in obj.symbols.items():
        if not symbol.defined or symbol.section != SEC_TEXT:
            continue
        if name.startswith("__island"):
            continue
        starts.append((symbol.value, name))
    if not starts:
        return [_Func("<text>", 0, text_len)]
    starts.sort()
    if starts[0][0] != 0:
        starts.insert(0, (0, "<text>"))
    out: List[_Func] = []
    for index, (start, name) in enumerate(starts):
        end = starts[index + 1][0] if index + 1 < len(starts) \
            else text_len
        out.append(_Func(name, start, end))
    return out


def _resolve(obj: ObjectFile, context: LintContext,
             symbol: str) -> Optional[int]:
    """The absolute address *symbol* will have, if statically known."""
    address = context.resolve(symbol)
    if address is not None:
        return address
    entry = obj.symbols.get(symbol)
    if entry is None or not entry.defined:
        return None
    layout = obj.layout.get(entry.section) if obj.layout else None
    if layout is None:
        return None
    return layout.base + entry.value


# ---------------------------------------------------------------------------
# the linear abstract interpretation
# ---------------------------------------------------------------------------


def _scan(obj: ObjectFile, context: LintContext, text: bytes,
          relocs: Dict[int, List], func: _Func,
          summaries: Dict[str, _Summary],
          report: Optional[Report]) -> _Summary:
    """One pass over *func*; returns its summary.

    With *report* set, also emits findings (using *summaries* for the
    interprocedural checks). Register state is reset at every
    control-flow instruction, so provenance only survives straight-line
    code — unknown never flags, which keeps the pass FP-free.
    """
    state: List[Optional[Tuple]] = [None] * 32
    for k in range(_NARGS):
        state[isa.REG_A0 + k] = (_ARG, k)
    summary = _Summary()
    offset = func.start
    while offset + 4 <= func.end:
        word = int.from_bytes(text[offset: offset + 4], "little")
        op = (word >> 26) & 0x3F
        rs = (word >> 21) & 31
        rt = (word >> 16) & 31
        if op == isa.OP_SPECIAL:
            _step_special(state, word, summary)
        elif op == isa.OP_LUI:
            state[rt] = _lui(relocs.get(offset))
        elif op == isa.OP_ORI:
            state[rt] = _ori(obj, context, state[rs],
                             relocs.get(offset))
        elif op == isa.OP_ADDI:
            if rs == isa.REG_SP:
                state[rt] = (_STACK,)
            else:
                state[rt] = _keep_pointer(state[rs])
        elif op in (isa.OP_LW, isa.OP_LH, isa.OP_LHU, isa.OP_LB,
                    isa.OP_LBU):
            state[rt] = None
        elif op == isa.OP_SW:
            _check_store(obj, func, report, summary, offset,
                         base=state[rs], value=state[rt])
        elif op == isa.OP_JAL:
            _call(obj, state, summary, summaries, report, func, offset,
                  relocs.get(offset))
        elif op == isa.OP_J or op in _BRANCH_OPS:
            _reset(state)
        elif op in (isa.OP_SLTI, isa.OP_SLTIU, isa.OP_ANDI,
                    isa.OP_XORI):
            state[rt] = None
        state[isa.REG_ZERO] = None
        offset += 4
    return summary


def _step_special(state: List[Optional[Tuple]], word: int,
                  summary: _Summary) -> None:
    funct = word & 0x3F
    rs = (word >> 21) & 31
    rt = (word >> 16) & 31
    rd = (word >> 11) & 31
    if funct in (isa.FN_JR, isa.FN_JALR):
        if rs == isa.REG_RA:
            value = state[isa.REG_V0]
            if value is not None and value[0] == _PRIV:
                summary.returns_private = True
        _reset(state)
        return
    if funct in (isa.FN_ADD, isa.FN_OR):
        if rs == isa.REG_SP or rt == isa.REG_SP:
            state[rd] = (_STACK,)
        elif rt == isa.REG_ZERO:
            state[rd] = _keep_pointer(state[rs])
        elif rs == isa.REG_ZERO:
            state[rd] = _keep_pointer(state[rt])
        else:
            state[rd] = None
    else:
        state[rd] = None


def _lui(site_relocs: Optional[List]) -> Optional[Tuple]:
    if site_relocs:
        for reloc in site_relocs:
            if reloc.type is RelocType.HI16:
                return (_HI, reloc.symbol)
    return None


def _ori(obj: ObjectFile, context: LintContext,
         upper: Optional[Tuple],
         site_relocs: Optional[List]) -> Optional[Tuple]:
    if site_relocs:
        for reloc in site_relocs:
            if reloc.type is not RelocType.LO16:
                continue
            if upper is None or upper[0] != _HI \
                    or upper[1] != reloc.symbol:
                return None
            address = _resolve(obj, context, reloc.symbol)
            if address is None:
                return None
            address = (address + reloc.addend) & 0xFFFFFFFF
            kind = _PUB if is_public_address(address) else _PRIV
            return (kind, reloc.symbol, address)
    return _keep_pointer(upper)


def _keep_pointer(value: Optional[Tuple]) -> Optional[Tuple]:
    """Pointer arithmetic preserves provenance; anything else drops it."""
    if value is not None and value[0] in _POINTERISH:
        return value
    return None


def _reset(state: List[Optional[Tuple]]) -> None:
    for reg in range(32):
        state[reg] = None


def _call(obj: ObjectFile, state: List[Optional[Tuple]],
          summary: _Summary, summaries: Dict[str, _Summary],
          report: Optional[Report], func: _Func, offset: int,
          site_relocs: Optional[List]) -> None:
    callee = None
    if site_relocs:
        for reloc in site_relocs:
            if reloc.type is RelocType.JUMP26:
                callee = reloc.symbol
                break
    callee_summary = summaries.get(callee) if callee else None
    if report is not None and callee_summary is not None:
        for k in sorted(callee_summary.publishes):
            value = state[isa.REG_A0 + k]
            if value is not None and value[0] == _PRIV:
                report.add(finding(
                    "SAN002", obj.name,
                    f"{func.name} passes private pointer "
                    f"{value[1]!r} (0x{value[2]:08x}) as argument "
                    f"{k} to {callee!r}, which stores that argument "
                    f"into a public segment",
                    section=SEC_TEXT, offset=offset,
                    symbol=value[1],
                ))
    for reg in _CALLER_SAVED:
        state[reg] = None
    if callee_summary is not None and callee_summary.returns_private:
        state[isa.REG_V0] = (_RET, callee)


def _check_store(obj: ObjectFile, func: _Func,
                 report: Optional[Report], summary: _Summary,
                 offset: int, base: Optional[Tuple],
                 value: Optional[Tuple]) -> None:
    if base is None or base[0] != _PUB:
        return
    if value is not None and value[0] == _ARG:
        summary.publishes.add(value[1])
    if report is None or value is None:
        return
    if value[0] == _PRIV:
        report.add(finding(
            "SAN001", obj.name,
            f"{func.name} stores private pointer {value[1]!r} "
            f"(0x{value[2]:08x}) through public base {base[1]!r}; "
            f"the address is per-process but the segment is shared",
            section=SEC_TEXT, offset=offset, symbol=value[1],
        ))
    elif value[0] == _RET:
        report.add(finding(
            "SAN003", obj.name,
            f"{func.name} stores the private pointer returned by "
            f"{value[1]!r} through public base {base[1]!r}",
            section=SEC_TEXT, offset=offset, symbol=value[1],
        ))
    elif value[0] == _STACK:
        report.add(finding(
            "SAN004", obj.name,
            f"{func.name} stores a stack-derived address through "
            f"public base {base[1]!r}; the frame is gone (or someone "
            f"else's) in every other sharer",
            section=SEC_TEXT, offset=offset,
        ))
