"""Check 5 — sharing-class checker (SHR001..SHR003).

Enforces the Table 1 semantics of the four sharing classes:

* ``SHR001`` — a store instruction whose LO16 relocation materializes
  the address of a symbol *defined in text*. Text is mapped read-only
  and — for public modules — shared by every process; the store would
  fault (or worse, under a permissive mapping, corrupt every sharer).
* ``SHR002`` — a public SEGMENT whose retained relocation the scope
  chain resolves to a *private* address. Public segments are mapped at
  the same address in every domain, so patching one with an address
  that means something different per process breaks the invariant the
  SFS range exists to provide.
* ``SHR003`` — one module requested under two different sharing classes
  in the same link_info. The loader honours the first entry; the second
  was almost certainly a mistake (and would silently change semantics
  if the order moved).
"""

from __future__ import annotations

from typing import Dict

from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    ObjectKind,
    RelocType,
    SEC_TEXT,
)
from repro.vm.layout import is_public_address
from repro.analyze.context import LintContext
from repro.analyze.report import Report, finding, format_reloc

_STORE_OPS = frozenset({isa.OP_SB, isa.OP_SH, isa.OP_SW})


def check_sharing(obj: ObjectFile, context: LintContext,
                  report: Report) -> None:
    _check_stores_into_text(obj, context, report)
    _check_private_patches(obj, context, report)
    _check_class_conflicts(obj, report)


def _check_stores_into_text(obj: ObjectFile, context: LintContext,
                            report: Report) -> None:
    text = bytes(obj.text)
    for reloc in obj.relocations:
        if reloc.type is not RelocType.LO16 or reloc.section != SEC_TEXT:
            continue
        if reloc.offset < 0 or reloc.offset + 4 > len(text):
            continue  # REL003 territory
        word = int.from_bytes(text[reloc.offset: reloc.offset + 4],
                              "little")
        if (word >> 26) & 0x3F not in _STORE_OPS:
            continue
        symbol = obj.symbols.get(reloc.symbol)
        in_text = (symbol is not None and symbol.defined
                   and symbol.section == SEC_TEXT)
        if not in_text:
            # Placed images carry no section tags; fall back to the
            # chain's knowledge of which exports live in text.
            in_text = any(
                reloc.symbol in module.text_symbols
                for module in context.all_modules()
            )
        if in_text:
            report.add(finding(
                "SHR001", obj.name,
                f"store at text+0x{reloc.offset:x} writes through "
                f"{format_reloc(reloc)}, which addresses read-only text",
                section=SEC_TEXT, offset=reloc.offset,
                symbol=reloc.symbol,
            ))


def _check_private_patches(obj: ObjectFile, context: LintContext,
                           report: Report) -> None:
    if obj.kind is not ObjectKind.SEGMENT:
        return
    if context.expect_public is False:
        return  # private segments may patch private addresses freely
    if context.expect_public is None and not _placed_public(obj):
        return
    seen: Dict[str, int] = {}
    for reloc in obj.relocations:
        if reloc.symbol in seen:
            continue
        address = context.resolve(reloc.symbol)
        if address is None:
            continue
        seen[reloc.symbol] = address
        if not is_public_address(address):
            report.add(finding(
                "SHR002", obj.name,
                f"public segment would patch {reloc.symbol!r} with "
                f"private address 0x{address:08x}; the patched bytes "
                f"are shared but the address is per-process",
                section=reloc.section, offset=reloc.offset,
                symbol=reloc.symbol,
            ))


def _placed_public(obj: ObjectFile) -> bool:
    text = obj.layout.get(SEC_TEXT) if obj.layout else None
    return text is not None and is_public_address(text.base)


def _check_class_conflicts(obj: ObjectFile, report: Report) -> None:
    seen: Dict[str, str] = {}
    for name, sclass in obj.link_info.dynamic_modules:
        earlier = seen.setdefault(name, sclass)
        if earlier != sclass:
            report.add(finding(
                "SHR003", obj.name,
                f"module {name!r} requested as both {earlier!r} and "
                f"{sclass!r}; the loader honours the first entry",
                symbol=name,
            ))
