"""Check 2 — symbol-resolution audit (SYM001..SYM003).

Replays :mod:`repro.linker.scoped` resolution *statically* against the
:class:`~repro.analyze.context.LintContext` scope chain:

* ``SYM001`` — an undefined reference no level of the chain can supply.
  Only raised in a *closed world* (the caller vouches the chain is
  complete and every module on it is locatable); under lazy/open-world
  linking an unresolved symbol is business as usual until first touch.
* ``SYM002`` — two *different* modules at the same scope level both
  export a symbol. Scoped resolution is deterministic (module-list
  order wins) but the tie is almost always an accident, and ``lds``
  would reject the same pair with a DuplicateSymbolError when linking
  them statically.
* ``SYM003`` — the object (or an inner level) defines a symbol an outer
  level also exports. Legal and sometimes intentional — that is the
  point of scoped namespaces — but worth surfacing, because the inner
  definition silently wins for this subtree only.
"""

from __future__ import annotations

from typing import Dict, List

from repro.objfile.format import ObjectFile, SymBinding
from repro.analyze.context import LintContext, ScopeModule
from repro.analyze.report import Report, finding


def check_symbols(obj: ObjectFile, context: LintContext,
                  report: Report) -> None:
    _audit_duplicates(obj, context, report)
    _audit_shadowing(obj, context, report)
    if context.closed_world and not context.has_unknown_modules():
        _audit_unresolved(obj, context, report)


def _audit_unresolved(obj: ObjectFile, context: LintContext,
                      report: Report) -> None:
    for name in sorted(obj.undefined_symbols()):
        if context.providers(name):
            continue
        report.add(finding(
            "SYM001", obj.name,
            f"undefined symbol {name!r} resolves nowhere on the "
            f"{len(context.scope_levels)}-level scope chain",
            symbol=name,
        ))


def _audit_duplicates(obj: ObjectFile, context: LintContext,
                      report: Report) -> None:
    for depth, level in enumerate(context.scope_levels):
        first_owner: Dict[str, ScopeModule] = {}
        for module in level:
            if not module.known:
                continue
            for name in module.exports:
                owner = first_owner.setdefault(name, module)
                if owner is not module and owner.name != module.name:
                    report.add(finding(
                        "SYM002", obj.name,
                        f"{name!r} exported by both {owner.name!r} and "
                        f"{module.name!r} at scope level {depth}; "
                        f"module-list order decides which wins",
                        symbol=name,
                    ))


def _audit_shadowing(obj: ObjectFile, context: LintContext,
                     report: Report) -> None:
    # The object's own globals sit innermost of all: they shadow any
    # provider on the chain. Then each level shadows the levels above.
    own = {
        symbol.name for symbol in obj.symbols.values()
        if symbol.defined and symbol.binding is SymBinding.GLOBAL
    }
    for name in sorted(own):
        hits = context.providers(name)
        if hits:
            depth, module = hits[0]
            report.add(finding(
                "SYM003", obj.name,
                f"local definition of {name!r} shadows the export from "
                f"{module.name!r} (scope level {depth})",
                symbol=name,
            ))
    seen_at: Dict[str, int] = {}
    seen_in: Dict[str, str] = {}
    for depth, level in enumerate(context.scope_levels):
        for module in level:
            if not module.known:
                continue
            for name in module.exports:
                if name in seen_at and seen_at[name] < depth \
                        and seen_in[name] != module.name:
                    report.add(finding(
                        "SYM003", obj.name,
                        f"{name!r} from {seen_in[name]!r} (level "
                        f"{seen_at[name]}) shadows the export from "
                        f"{module.name!r} (level {depth})",
                        symbol=name,
                    ))
                elif name not in seen_at:
                    seen_at[name] = depth
                    seen_in[name] = module.name
