"""The paper's §4 example applications, each with baseline and Hemlock
versions:

* :mod:`rwho` — the rwhod daemon and rwho/ruptime utilities: per-machine
  status files (the original) vs a shared-memory database;
* :mod:`xfig` — a figure editor: ASCII save/load translation vs
  pointer-rich objects living in a shared segment;
* :mod:`lynx` — compiler tables: regenerate-and-recompile vs a
  persistent shared module the compiler links in;
* :mod:`presto` — a parallel-application runtime: per-instance shared
  globals established through a temporary directory, a symlink to the
  template, and LD_LIBRARY_PATH.
"""
