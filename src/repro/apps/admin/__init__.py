"""Administrative files as shared data structures (§4, §5).

"Unix maintains a wealth of small administrative files... Most of these
files have a rigid format that constitutes either a binary linearization
or a parsable ASCII description of a special-purpose data structure.
Most are accessed via utility routines that read and write these on-disk
formats, converting them to and from the linked data structures that
programs really use."

The demo database is ``/etc/passwd``:

* :mod:`fileimpl` — the classic colon-separated text file: every
  ``getpwnam`` reads and parses the whole file; edits go through a
  vipw-style lock + full rewrite, checked by a ckpw-style validator;
* :mod:`shmimpl` — the Hemlock version: fixed-layout records in a
  shared segment, looked up in place; edits update one record under the
  same advisory lock, and the validator runs over the records directly.

§5's "Loss of Commonality" caveat is preserved deliberately: the shared
database is *not* editable with a text editor, which is exactly the
trade-off the paper discusses (terminfo vs termcap) — so the shared
implementation also provides export/import to the ASCII form.
"""

from repro.apps.admin.common import PasswdEntry, generate_users
from repro.apps.admin.fileimpl import FilePasswd
from repro.apps.admin.shmimpl import SharedPasswd

__all__ = ["PasswdEntry", "generate_users", "FilePasswd", "SharedPasswd"]
