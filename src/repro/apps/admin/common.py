"""The passwd data model and validation rules (the ckpw checker)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.rng import DeterministicRng

NAME_LEN = 16
HOME_LEN = 24
SHELL_LEN = 16
GECOS_LEN = 24

_SHELLS = ["/bin/sh", "/bin/csh", "/bin/ksh"]


@dataclass
class PasswdEntry:
    """One /etc/passwd line's worth of data."""

    name: str
    uid: int
    gid: int
    gecos: str
    home: str
    shell: str


class ValidationError(ValueError):
    """The ckpw checker rejected an entry or database."""


def validate_entry(entry: PasswdEntry) -> None:
    """ckpw, per-entry: names sane, ids in range, paths absolute."""
    if not entry.name or len(entry.name) >= NAME_LEN:
        raise ValidationError(f"bad user name {entry.name!r}")
    if not entry.name[0].isalpha() \
            or not all(c.isalnum() or c == "_" for c in entry.name):
        raise ValidationError(f"bad user name {entry.name!r}")
    if ":" in entry.gecos:
        raise ValidationError("gecos may not contain ':'")
    if not 0 <= entry.uid < 65536 or not 0 <= entry.gid < 65536:
        raise ValidationError(f"uid/gid out of range for {entry.name!r}")
    if not entry.home.startswith("/") or len(entry.home) >= HOME_LEN:
        raise ValidationError(f"bad home {entry.home!r}")
    if not entry.shell.startswith("/") or len(entry.shell) >= SHELL_LEN:
        raise ValidationError(f"bad shell {entry.shell!r}")


def validate_database(entries: List[PasswdEntry]) -> None:
    """ckpw, whole-database: per-entry rules plus unique names."""
    seen = set()
    for entry in entries:
        validate_entry(entry)
        if entry.name in seen:
            raise ValidationError(f"duplicate user {entry.name!r}")
        seen.add(entry.name)


def generate_users(count: int = 100, seed: int = 14627) -> \
        List[PasswdEntry]:
    """A deterministic user population."""
    rng = DeterministicRng(seed)
    users = []
    for index in range(count):
        name = f"user{index:03d}"
        users.append(PasswdEntry(
            name=name,
            uid=1000 + index,
            gid=100 + rng.randint(0, 5),
            gecos=f"User Number {index}",
            home=f"/home/{name}",
            shell=rng.choice(_SHELLS),
        ))
    return users
