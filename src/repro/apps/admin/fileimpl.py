"""The classic /etc/passwd: parse-on-every-access, vipw-style editing."""

from __future__ import annotations

from typing import List, Optional

from repro.apps.admin.common import PasswdEntry, validate_database
from repro.errors import SimulationError
from repro.fs.vfs import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.kernel.syscalls import FLOCK_EX, FLOCK_UN

PASSWD_PATH = "/etc/passwd"
PARSE_CYCLES_PER_BYTE = 4


def format_line(entry: PasswdEntry) -> str:
    return (f"{entry.name}:x:{entry.uid}:{entry.gid}:{entry.gecos}:"
            f"{entry.home}:{entry.shell}")


def parse_line(line: str) -> PasswdEntry:
    parts = line.split(":")
    if len(parts) != 7:
        raise SimulationError(f"malformed passwd line {line!r}")
    return PasswdEntry(
        name=parts[0], uid=int(parts[2]), gid=int(parts[3]),
        gecos=parts[4], home=parts[5], shell=parts[6],
    )


class FilePasswd:
    """The traditional interface over the text file."""

    def __init__(self, kernel: Kernel, proc: Process,
                 path: str = PASSWD_PATH) -> None:
        self.kernel = kernel
        self.proc = proc
        self.path = path
        kernel.vfs.makedirs(path.rsplit("/", 1)[0] or "/", proc.uid)

    # ------------------------------------------------------------------

    def write_all(self, entries: List[PasswdEntry]) -> None:
        validate_database(entries)
        blob = "\n".join(format_line(e) for e in entries) + "\n"
        data = blob.encode("latin-1")
        self.kernel.clock.charge("translation",
                                 len(data) * PARSE_CYCLES_PER_BYTE)
        sys = self.kernel.syscalls
        fd = sys.open(self.proc, self.path, O_WRONLY | O_CREAT | O_TRUNC)
        try:
            sys.write(self.proc, fd, data)
        finally:
            sys.close(self.proc, fd)

    def read_all(self) -> List[PasswdEntry]:
        sys = self.kernel.syscalls
        fd = sys.open(self.proc, self.path, O_RDONLY)
        try:
            data = sys.read(self.proc, fd, sys.fstat(self.proc,
                                                     fd).st_size)
        finally:
            sys.close(self.proc, fd)
        self.kernel.clock.charge("translation",
                                 len(data) * PARSE_CYCLES_PER_BYTE)
        return [parse_line(line)
                for line in data.decode("latin-1").splitlines() if line]

    def getpwnam(self, name: str) -> Optional[PasswdEntry]:
        """Reads and parses the whole file, like the real one."""
        for entry in self.read_all():
            if entry.name == name:
                return entry
        return None

    # ------------------------------------------------------------------

    def vipw(self, mutate) -> None:
        """Locked edit: lock, read, mutate, validate (ckpw), rewrite.

        *mutate* receives the entry list and modifies it in place.
        """
        sys = self.kernel.syscalls
        fd = sys.open(self.proc, self.path, O_RDONLY)
        try:
            sys.flock(self.proc, fd, FLOCK_EX)
            try:
                entries = self.read_all()
                mutate(entries)
                validate_database(entries)  # ckpw before committing
                self.write_all(entries)
            finally:
                sys.flock(self.proc, fd, FLOCK_UN)
        finally:
            sys.close(self.proc, fd)

    def ckpw(self) -> None:
        validate_database(self.read_all())
