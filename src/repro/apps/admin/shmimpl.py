"""The passwd database as a shared data structure.

Lookups read records in place; edits update one record under the
segment file's advisory lock (the vipw discipline); the ckpw checker
runs over the records directly. Export/import to the classic text form
addresses §5's "Loss of Commonality": the shared database can still be
materialized for text tools, explicitly rather than on every access.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.apps.admin.common import (
    GECOS_LEN,
    HOME_LEN,
    NAME_LEN,
    PasswdEntry,
    SHELL_LEN,
    validate_database,
    validate_entry,
)
from repro.errors import SimulationError
from repro.fs.vfs import O_RDONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.kernel.syscalls import FLOCK_EX, FLOCK_UN
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem, StructDef

DB_MAGIC = 0x50415353  # "PASS"
DB_SEGMENT = "/shared/passwd.db"
HEADER_SIZE = 8

RECORD = StructDef("passwd_record", [
    ("name", f"cstr:{NAME_LEN}"),
    ("uid", "u32"),
    ("gid", "u32"),
    ("gecos", f"cstr:{GECOS_LEN}"),
    ("home", f"cstr:{HOME_LEN}"),
    ("shell", f"cstr:{SHELL_LEN}"),
])


class SharedPasswd:
    """The shared-memory passwd database."""

    def __init__(self, kernel: Kernel, proc: Process, max_users: int = 256,
                 segment: str = DB_SEGMENT) -> None:
        self.kernel = kernel
        self.proc = proc
        self.segment = segment
        self.max_users = max_users
        self.mem = Mem(kernel, proc)
        runtime = runtime_for(kernel, proc)
        size = HEADER_SIZE + max_users * RECORD.size
        if kernel.vfs.exists(segment, proc.uid):
            self.base = runtime.segment_base(segment)
        else:
            self.base = runtime.create_segment(segment, size)
            self.mem.store_u32(self.base, DB_MAGIC)
            self.mem.store_u32(self.base + 4, 0)

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        if self.mem.load_u32(self.base) != DB_MAGIC:
            raise SimulationError(f"{self.segment!r} is not a passwd db")
        return self.mem.load_u32(self.base + 4)

    def _record(self, index: int):
        return RECORD.view(
            self.mem, self.base + HEADER_SIZE + index * RECORD.size
        )

    def _store(self, index: int, entry: PasswdEntry) -> None:
        self._record(index).update(
            name=entry.name, uid=entry.uid, gid=entry.gid,
            gecos=entry.gecos, home=entry.home, shell=entry.shell,
        )

    def _load(self, index: int) -> PasswdEntry:
        view = self._record(index)
        return PasswdEntry(
            name=view.get("name"), uid=view.get("uid"),
            gid=view.get("gid"), gecos=view.get("gecos"),
            home=view.get("home"), shell=view.get("shell"),
        )

    # ------------------------------------------------------------------

    def write_all(self, entries: List[PasswdEntry]) -> None:
        validate_database(entries)
        if len(entries) > self.max_users:
            raise SimulationError("passwd database full")
        for index, entry in enumerate(entries):
            self._store(index, entry)
        self.mem.store_u32(self.base + 4, len(entries))

    def read_all(self) -> List[PasswdEntry]:
        return [self._load(index) for index in range(self.count)]

    def getpwnam(self, name: str) -> Optional[PasswdEntry]:
        """Scan records in place — no file reads, no parsing."""
        for index in range(self.count):
            if self._record(index).get("name") == name:
                return self._load(index)
        return None

    def getpwuid(self, uid: int) -> Optional[PasswdEntry]:
        for index in range(self.count):
            if self._record(index).get("uid") == uid:
                return self._load(index)
        return None

    # ------------------------------------------------------------------

    def vipw(self, mutate: Callable[[List[PasswdEntry]], None]) -> None:
        """Locked edit of the shared database (same discipline as the
        file version, but no linearize/parse round trip)."""
        sys = self.kernel.syscalls
        fd = sys.open(self.proc, self.segment, O_RDONLY)
        try:
            sys.flock(self.proc, fd, FLOCK_EX)
            try:
                entries = self.read_all()
                mutate(entries)
                validate_database(entries)
                self.write_all(entries)
            finally:
                sys.flock(self.proc, fd, FLOCK_UN)
        finally:
            sys.close(self.proc, fd)

    def update_entry(self, name: str,
                     mutate: Callable[[PasswdEntry], None]) -> bool:
        """In-place single-record edit under the lock; True if found."""
        sys = self.kernel.syscalls
        fd = sys.open(self.proc, self.segment, O_RDONLY)
        try:
            sys.flock(self.proc, fd, FLOCK_EX)
            try:
                for index in range(self.count):
                    if self._record(index).get("name") != name:
                        continue
                    entry = self._load(index)
                    mutate(entry)
                    validate_entry(entry)
                    if entry.name != name:
                        raise SimulationError(
                            "update_entry cannot rename; use vipw"
                        )
                    self._store(index, entry)
                    return True
                return False
            finally:
                sys.flock(self.proc, fd, FLOCK_UN)
        finally:
            sys.close(self.proc, fd)

    def ckpw(self) -> None:
        validate_database(self.read_all())

    # ------------------------------------------------------------------
    # §5 Loss of Commonality: explicit bridges to the text world
    # ------------------------------------------------------------------

    def export_text(self, path: str) -> None:
        """Materialize the classic text form for byte-stream tools."""
        from repro.apps.admin.fileimpl import FilePasswd

        FilePasswd(self.kernel, self.proc, path).write_all(
            self.read_all()
        )

    def import_text(self, path: str) -> None:
        from repro.apps.admin.fileimpl import FilePasswd

        self.write_all(FilePasswd(self.kernel, self.proc,
                                  path).read_all())
