"""libsys — the tiny C library for Toy C programs.

Assembly wrappers for the syscalls a Toy C program needs: I/O,
semaphores, message queues, environment access, process identity.
Shipped as an archive so the linkers pull in only what a program
references, the way ``libc.a`` behaves.
"""

from __future__ import annotations

from repro.hw.asm import assemble
from repro.objfile.archive import Archive
from repro.objfile.format import ObjectFile

_WRAPPERS = {
    # name: (syscall number, number of register args)
    "exit": (1, 1),
    "write": (2, 3),
    "read": (3, 3),
    "open": (4, 3),
    "close": (5, 1),
    "fork": (6, 0),
    "getpid": (7, 0),
    "sbrk": (8, 1),
    "wait": (9, 1),
    "mmap": (10, 4),
    "munmap": (11, 2),
    "mprotect": (12, 3),
    "put_int": (14, 1),
    "addr_to_path": (20, 3),
    "open_by_addr": (21, 2),
    "flock": (22, 2),
    "msg_get": (23, 1),
    "msg_send": (24, 3),
    "msg_recv": (25, 3),
    "sem_get": (26, 2),
    "sem_p": (27, 1),
    "sem_v": (28, 1),
    "get_env": (30, 3),
    "unlink": (31, 1),
    "symlink": (32, 2),
    "mkdir": (33, 1),
    "stat": (34, 2),
}


def _wrapper_source(name: str, number: int) -> str:
    return f"""
        .text
        .globl  {name}
{name}:
        li      v0, {number}
        syscall
        jr      ra
"""

_STRLEN = """
        .text
        .globl  strlen
strlen:
        move    v0, zero
strlen_loop:
        add     t0, a0, v0
        lbu     t1, 0(t0)
        beqz    t1, strlen_done
        addi    v0, v0, 1
        b       strlen_loop
strlen_done:
        jr      ra
"""

_PUT_STR = """
        .text
        .globl  put_str
put_str:
        # write(1, s, strlen(s))
        addi    sp, sp, -8
        sw      ra, 0(sp)
        sw      a0, 4(sp)
        jal     strlen
        move    a2, v0
        lw      a1, 4(sp)
        li      a0, 1
        li      v0, 2
        syscall
        lw      ra, 0(sp)
        addi    sp, sp, 8
        jr      ra
"""


def build_libsys() -> Archive:
    """The libsys archive, freshly assembled."""
    archive = Archive("libsys.a")
    for name, (number, _nargs) in sorted(_WRAPPERS.items()):
        archive.add(assemble(_wrapper_source(name, number),
                             f"sys_{name}.o"))
    archive.add(assemble(_STRLEN, "strlen.o"))
    archive.add(assemble(_PUT_STR, "put_str.o"))
    return archive


def libsys_object(name: str) -> ObjectFile:
    """One wrapper object by symbol name (for single-module links)."""
    if name == "strlen":
        return assemble(_STRLEN, "strlen.o")
    if name == "put_str":
        return assemble(_PUT_STR, "put_str.o")
    number, _nargs = _WRAPPERS[name]
    return assemble(_wrapper_source(name, number), f"sys_{name}.o")
