"""Lynx compiler tables — sharing pointer-rich/numeric tables (§4).

"The Wisconsin tools produce numeric tables which a pair of utility
programs translate into initialized data structures for separately-
developed scanner and parser drivers. ... With Hemlock, the utility
programs that read the numeric output of the scanner and parser
generators would share a persistent module (the tables) with the Lynx
compiler. The utility programs would initialize the tables; the
compiler would link them in and use them."

* :mod:`slr` — a genuine SLR(1) parser generator (the "Wisconsin tool"),
  plus a scanner DFA builder;
* :mod:`tablegen` — the utility programs: emit the numeric tables as an
  ASCII file (baseline), as Toy C source to be compiled and linked (the
  paper's 5400-line / 18-second path), or directly into a persistent
  shared segment (the Hemlock path);
* :mod:`driver` — the table-driven scanner and parser drivers, able to
  run from in-memory tables or straight out of the shared segment.
"""

from repro.apps.lynx.slr import Grammar, build_slr_tables, EXPR_GRAMMAR
from repro.apps.lynx.tablegen import (
    tables_to_ascii,
    tables_from_ascii,
    tables_to_toyc,
    write_tables_segment,
    read_tables_segment,
    TableSet,
    build_expression_tables,
)
from repro.apps.lynx.driver import parse_expression, tokenize_expression

__all__ = [
    "Grammar",
    "build_slr_tables",
    "EXPR_GRAMMAR",
    "TableSet",
    "build_expression_tables",
    "tables_to_ascii",
    "tables_from_ascii",
    "tables_to_toyc",
    "write_tables_segment",
    "read_tables_segment",
    "parse_expression",
    "tokenize_expression",
]
