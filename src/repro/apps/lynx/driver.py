"""Table-driven scanner and parser drivers.

These are the "separately-developed scanner and parser drivers" — they
know nothing about the grammar beyond what the numeric tables say. They
evaluate arithmetic expressions while parsing, so tests can check
real semantic results, not just accept/reject.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.lynx.tablegen import TableSet
from repro.errors import SimulationError

# Terminal indices match EXPR_GRAMMAR.terminals + ["$"]:
_TERMINALS = ["num", "+", "*", "(", ")", "$"]
_TERM_INDEX = {t: i for i, t in enumerate(_TERMINALS)}


def tokenize_expression(text: str) -> List[Tuple[str, int]]:
    """Scan *text* into (terminal, value) pairs, ending with ('$', 0)."""
    tokens: List[Tuple[str, int]] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch in " \t\n":
            index += 1
            continue
        if ch.isdigit():
            start = index
            while index < len(text) and text[index].isdigit():
                index += 1
            tokens.append(("num", int(text[start:index])))
            continue
        if ch in "+*()":
            tokens.append((ch, 0))
            index += 1
            continue
        raise SimulationError(f"scan error at {text[index:]!r}")
    tokens.append(("$", 0))
    return tokens


def parse_expression(tables: TableSet, text: str) -> int:
    """LR-parse *text* with the numeric tables; returns its value.

    Semantic actions follow the fixed production numbering of
    EXPR_GRAMMAR: 1 E->E+T, 2 E->T, 3 T->T*F, 4 T->F, 5 F->(E), 6 F->num.
    """
    tokens = tokenize_expression(text)
    state_stack = [0]
    value_stack: List[int] = []
    cursor = 0
    for _ in range(100000):
        terminal, value = tokens[cursor]
        action = tables.action_at(state_stack[-1], _TERM_INDEX[terminal])
        if action == 0:
            raise SimulationError(
                f"parse error at token {cursor} ({terminal!r})"
            )
        if action > 0:  # shift
            state_stack.append(action - 1)
            value_stack.append(value)
            cursor += 1
            continue
        production = -action - 1
        if production == 0:  # accept (augmented start)
            return value_stack[-1]
        length = tables.prod_lengths[production]
        popped = value_stack[len(value_stack) - length:]
        del value_stack[len(value_stack) - length:]
        del state_stack[len(state_stack) - length:]
        if production == 1:      # E -> E + T
            result = popped[0] + popped[2]
        elif production == 3:    # T -> T * F
            result = popped[0] * popped[2]
        elif production == 5:    # F -> ( E )
            result = popped[1]
        else:                    # unit productions
            result = popped[0]
        head = tables.prod_heads[production]
        target = tables.goto_at(state_stack[-1], head)
        if target < 0:
            raise SimulationError("corrupt goto table")
        state_stack.append(target)
        value_stack.append(result)
    raise SimulationError("parser did not terminate")
