"""An SLR(1) parser generator — the stand-in for the Wisconsin tools.

Builds the LR(0) automaton, FIRST/FOLLOW sets, and the numeric
ACTION/GOTO tables for a context-free grammar. The tables are plain
integer matrices, exactly the kind of "numeric tables" the Lynx
tool-chain shuttles between programs.

ACTION encoding: 0 = error, positive s = shift to state s-1,
negative r = reduce by production -r-1 (so -1 reduces production 0,
which is accept for the augmented start production).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import SimulationError

END = "$"
EPSILON = "<eps>"


@dataclass
class Grammar:
    """A context-free grammar. Production 0 must be the augmented start
    ``S' -> start``."""

    terminals: List[str]
    nonterminals: List[str]
    productions: List[Tuple[str, Tuple[str, ...]]]

    def __post_init__(self) -> None:
        if END not in self.terminals:
            self.terminals = list(self.terminals) + [END]
        symbols = set(self.terminals) | set(self.nonterminals)
        for head, body in self.productions:
            if head not in self.nonterminals:
                raise SimulationError(f"unknown nonterminal {head!r}")
            for symbol in body:
                if symbol not in symbols:
                    raise SimulationError(f"unknown symbol {symbol!r}")


# The paper's running example domain: arithmetic expressions.
EXPR_GRAMMAR = Grammar(
    terminals=["num", "+", "*", "(", ")"],
    nonterminals=["S'", "E", "T", "F"],
    productions=[
        ("S'", ("E",)),
        ("E", ("E", "+", "T")),
        ("E", ("T",)),
        ("T", ("T", "*", "F")),
        ("T", ("F",)),
        ("F", ("(", "E", ")")),
        ("F", ("num",)),
    ],
)

Item = Tuple[int, int]  # (production index, dot position)


@dataclass
class SlrTables:
    """The generated numeric tables."""

    grammar: Grammar
    action: List[List[int]]          # [state][terminal index]
    goto: List[List[int]]            # [state][nonterminal index] (-1 = err)
    terminal_index: Dict[str, int] = field(default_factory=dict)
    nonterminal_index: Dict[str, int] = field(default_factory=dict)

    @property
    def nstates(self) -> int:
        return len(self.action)


def build_slr_tables(grammar: Grammar) -> SlrTables:
    """Run the full SLR(1) construction."""
    first = _first_sets(grammar)
    follow = _follow_sets(grammar, first)
    states, transitions = _lr0_automaton(grammar)

    term_index = {t: i for i, t in enumerate(grammar.terminals)}
    nonterm_index = {n: i for i, n in enumerate(grammar.nonterminals)}
    action = [[0] * len(grammar.terminals) for _ in states]
    goto = [[-1] * len(grammar.nonterminals) for _ in states]

    for (state, symbol), target in transitions.items():
        if symbol in term_index:
            action[state][term_index[symbol]] = target + 1
        else:
            goto[state][nonterm_index[symbol]] = target

    for state_index, items in enumerate(states):
        for prod_index, dot in items:
            head, body = grammar.productions[prod_index]
            if dot != len(body):
                continue
            targets = [END] if prod_index == 0 else follow[head]
            for terminal in targets:
                column = term_index[terminal]
                existing = action[state_index][column]
                encoded = -(prod_index + 1)
                if existing not in (0, encoded):
                    raise SimulationError(
                        f"SLR conflict in state {state_index} on "
                        f"{terminal!r}: {existing} vs {encoded}"
                    )
                action[state_index][column] = encoded
    return SlrTables(grammar, action, goto, term_index, nonterm_index)


# ---------------------------------------------------------------------------
# set construction
# ---------------------------------------------------------------------------

def _first_sets(grammar: Grammar) -> Dict[str, Set[str]]:
    first: Dict[str, Set[str]] = {t: {t} for t in grammar.terminals}
    for nonterminal in grammar.nonterminals:
        first[nonterminal] = set()
    changed = True
    while changed:
        changed = False
        for head, body in grammar.productions:
            before = len(first[head])
            if not body:
                first[head].add(EPSILON)
            else:
                for symbol in body:
                    first[head] |= first[symbol] - {EPSILON}
                    if EPSILON not in first[symbol]:
                        break
                else:
                    first[head].add(EPSILON)
            changed = changed or len(first[head]) != before
    return first


def _follow_sets(grammar: Grammar,
                 first: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
    follow: Dict[str, Set[str]] = {n: set() for n in grammar.nonterminals}
    follow[grammar.productions[0][0]].add(END)
    changed = True
    while changed:
        changed = False
        for head, body in grammar.productions:
            trailer = set(follow[head])
            for symbol in reversed(body):
                if symbol in follow:  # nonterminal
                    before = len(follow[symbol])
                    follow[symbol] |= trailer
                    changed = changed or len(follow[symbol]) != before
                    if EPSILON in first[symbol]:
                        trailer = trailer | (first[symbol] - {EPSILON})
                    else:
                        trailer = first[symbol] - {EPSILON}
                else:
                    trailer = first[symbol] - {EPSILON}
    return follow


# ---------------------------------------------------------------------------
# LR(0) automaton
# ---------------------------------------------------------------------------

def _closure(grammar: Grammar, items: Set[Item]) -> FrozenSet[Item]:
    out = set(items)
    frontier = list(items)
    while frontier:
        prod_index, dot = frontier.pop()
        _, body = grammar.productions[prod_index]
        if dot >= len(body):
            continue
        symbol = body[dot]
        if symbol not in grammar.nonterminals:
            continue
        for index, (head, _b) in enumerate(grammar.productions):
            if head == symbol:
                item = (index, 0)
                if item not in out:
                    out.add(item)
                    frontier.append(item)
    return frozenset(out)


def _advance(grammar: Grammar, items: FrozenSet[Item],
             symbol: str) -> FrozenSet[Item]:
    moved = {
        (prod, dot + 1)
        for prod, dot in items
        if dot < len(grammar.productions[prod][1])
        and grammar.productions[prod][1][dot] == symbol
    }
    return _closure(grammar, moved) if moved else frozenset()


def _lr0_automaton(grammar: Grammar) -> Tuple[
        List[FrozenSet[Item]], Dict[Tuple[int, str], int]]:
    start = _closure(grammar, {(0, 0)})
    states: List[FrozenSet[Item]] = [start]
    index_of: Dict[FrozenSet[Item], int] = {start: 0}
    transitions: Dict[Tuple[int, str], int] = {}
    symbols = list(grammar.terminals) + list(grammar.nonterminals)
    frontier = [0]
    while frontier:
        state_index = frontier.pop(0)
        for symbol in symbols:
            if symbol == END:
                continue
            target = _advance(grammar, states[state_index], symbol)
            if not target:
                continue
            if target not in index_of:
                index_of[target] = len(states)
                states.append(target)
                frontier.append(index_of[target])
            transitions[(state_index, symbol)] = index_of[target]
    return states, transitions


# ---------------------------------------------------------------------------
# scanner DFA for the expression language
# ---------------------------------------------------------------------------

def build_scanner_dfa() -> Tuple[List[List[int]], Dict[int, str]]:
    """A small DFA over character classes for the expression tokens.

    Character classes: 0 digit, 1 '+', 2 '*', 3 '(', 4 ')', 5 space,
    6 other. States: 0 start, 1 in-number. Accepting map: state ->
    token name (numbers accept on exit).
    """
    nclasses = 7
    error = -1
    table = [[error] * nclasses for _ in range(2)]
    table[0][0] = 1          # digit starts a number
    table[1][0] = 1          # digit continues a number
    accepting = {1: "num"}
    return table, accepting


def char_class(ch: str) -> int:
    if ch.isdigit():
        return 0
    return {"+": 1, "*": 2, "(": 3, ")": 4, " ": 5, "\t": 5,
            "\n": 5}.get(ch, 6)


def flatten_tables(tables: SlrTables) -> Dict[str, Sequence[int]]:
    """The numeric form shuttled between the tools and the compiler."""
    action_flat = [cell for row in tables.action for cell in row]
    goto_flat = [cell for row in tables.goto for cell in row]
    prod_heads = [tables.nonterminal_index[head]
                  for head, _ in tables.grammar.productions]
    prod_lengths = [len(body) for _, body in tables.grammar.productions]
    return {
        "dims": [tables.nstates, len(tables.grammar.terminals),
                 len(tables.grammar.nonterminals),
                 len(tables.grammar.productions)],
        "action": action_flat,
        "goto": goto_flat,
        "prod_heads": prod_heads,
        "prod_lengths": prod_lengths,
    }
