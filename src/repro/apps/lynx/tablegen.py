"""Table emission: ASCII (baseline), Toy C source, and shared segment.

The baseline pipeline regenerates/retranslates the tables on every
compiler run; the "C source" pipeline is the paper's actual setup ("the
C version of the tables is over 5400 lines, and takes 18 seconds to
compile on a Sparcstation 1"); the Hemlock pipeline writes the tables
once into a persistent shared segment the compiler simply links in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.lynx.slr import (
    EXPR_GRAMMAR,
    SlrTables,
    build_slr_tables,
    flatten_tables,
)
from repro.errors import SimulationError
from repro.fs.vfs import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem

TABLE_MAGIC = 0x4C594E58  # "LYNX"

_SECTIONS = ["action", "goto", "prod_heads", "prod_lengths"]


@dataclass
class TableSet:
    """The numeric tables in memory (either freshly built or re-read)."""

    nstates: int
    nterminals: int
    nnonterminals: int
    nproductions: int
    action: List[int]
    goto: List[int]
    prod_heads: List[int]
    prod_lengths: List[int]

    def action_at(self, state: int, terminal: int) -> int:
        return self.action[state * self.nterminals + terminal]

    def goto_at(self, state: int, nonterminal: int) -> int:
        return self.goto[state * self.nnonterminals + nonterminal]


def build_expression_tables() -> TableSet:
    """Run the generator for the expression grammar."""
    return _from_flat(flatten_tables(build_slr_tables(EXPR_GRAMMAR)))


def _from_flat(flat: Dict[str, List[int]]) -> TableSet:
    dims = list(flat["dims"])
    return TableSet(dims[0], dims[1], dims[2], dims[3],
                    list(flat["action"]), list(flat["goto"]),
                    list(flat["prod_heads"]), list(flat["prod_lengths"]))


# ---------------------------------------------------------------------------
# baseline: ASCII round trip
# ---------------------------------------------------------------------------

def tables_to_ascii(tables: TableSet) -> str:
    """The generators' numeric output format."""
    lines = [
        "LYNX-TABLES 1",
        f"dims {tables.nstates} {tables.nterminals} "
        f"{tables.nnonterminals} {tables.nproductions}",
    ]
    for section in _SECTIONS:
        values = getattr(tables, section)
        lines.append(f"{section} {len(values)}")
        lines.append(" ".join(str(v) for v in values))
    return "\n".join(lines) + "\n"


def tables_from_ascii(text: str) -> TableSet:
    """The translation the utility programs perform on every run."""
    lines = text.splitlines()
    if not lines or lines[0] != "LYNX-TABLES 1":
        raise SimulationError("not a Lynx table file")
    dims = [int(v) for v in lines[1].split()[1:]]
    sections: Dict[str, List[int]] = {}
    index = 2
    while index + 1 < len(lines) + 1 and index < len(lines):
        header = lines[index].split()
        name, count = header[0], int(header[1])
        values = [int(v) for v in lines[index + 1].split()]
        if len(values) != count:
            raise SimulationError(f"section {name!r} length mismatch")
        sections[name] = values
        index += 2
    return TableSet(dims[0], dims[1], dims[2], dims[3],
                    sections["action"], sections["goto"],
                    sections["prod_heads"], sections["prod_lengths"])


# Translation CPU cost: formatting/scanning integers costs a few
# instructions per byte of text (see apps.xfig.ascii for the same idea).
TRANSLATE_CYCLES_PER_BYTE = 4


def save_tables_ascii(kernel: Kernel, proc: Process, tables: TableSet,
                      path: str) -> int:
    sys = kernel.syscalls
    blob = tables_to_ascii(tables).encode("latin-1")
    kernel.clock.charge("translation",
                        len(blob) * TRANSLATE_CYCLES_PER_BYTE)
    fd = sys.open(proc, path, O_WRONLY | O_CREAT | O_TRUNC)
    try:
        return sys.write(proc, fd, blob)
    finally:
        sys.close(proc, fd)


def load_tables_ascii(kernel: Kernel, proc: Process,
                      path: str) -> TableSet:
    sys = kernel.syscalls
    fd = sys.open(proc, path, O_RDONLY)
    try:
        blob = sys.read(proc, fd, sys.fstat(proc, fd).st_size)
    finally:
        sys.close(proc, fd)
    kernel.clock.charge("translation",
                        len(blob) * TRANSLATE_CYCLES_PER_BYTE)
    return tables_from_ascii(blob.decode("latin-1"))


# ---------------------------------------------------------------------------
# the paper's pipeline: emit C source, compile, link
# ---------------------------------------------------------------------------

def tables_to_toyc(tables: TableSet) -> str:
    """Emit the tables as Toy C source (one initializer per line, like
    the 5400-line C table file the paper measured)."""

    def array(name: str, values: List[int]) -> str:
        body = ",\n    ".join(str(v) for v in values)
        return f"int {name}[{len(values)}] = {{\n    {body}\n}};\n"

    parts = [
        f"int lynx_nstates = {tables.nstates};\n",
        f"int lynx_nterminals = {tables.nterminals};\n",
        f"int lynx_nnonterminals = {tables.nnonterminals};\n",
        f"int lynx_nproductions = {tables.nproductions};\n",
        array("lynx_action", tables.action),
        array("lynx_goto", tables.goto),
        array("lynx_prod_heads", tables.prod_heads),
        array("lynx_prod_lengths", tables.prod_lengths),
    ]
    return "".join(parts)


# ---------------------------------------------------------------------------
# Hemlock: a persistent shared segment
# ---------------------------------------------------------------------------

def write_tables_segment(kernel: Kernel, proc: Process, tables: TableSet,
                         path: str) -> int:
    """The generator utility initializes the persistent tables once.

    Layout: [magic][4 dims][4 x (offset, count)] then the arrays.
    Returns the segment base address.
    """
    runtime = runtime_for(kernel, proc)
    mem = Mem(kernel, proc)
    header_words = 1 + 4 + 2 * len(_SECTIONS)
    total_values = sum(len(getattr(tables, s)) for s in _SECTIONS)
    size = 4 * (header_words + total_values)
    base = runtime.create_segment(path, size)
    mem.store_u32(base, TABLE_MAGIC)
    dims = [tables.nstates, tables.nterminals, tables.nnonterminals,
            tables.nproductions]
    for index, value in enumerate(dims):
        mem.store_u32(base + 4 * (1 + index), value)
    cursor = header_words
    for index, section in enumerate(_SECTIONS):
        values = getattr(tables, section)
        mem.store_u32(base + 4 * (5 + 2 * index), cursor * 4)
        mem.store_u32(base + 4 * (6 + 2 * index), len(values))
        for offset, value in enumerate(values):
            mem.store_i32(base + 4 * (cursor + offset), value)
        cursor += len(values)
    return base


def read_tables_segment(kernel: Kernel, proc: Process,
                        path: str) -> TableSet:
    """The compiler links the tables in and reads them directly — no
    translation step, no regeneration."""
    runtime = runtime_for(kernel, proc)
    mem = Mem(kernel, proc)
    base = runtime.segment_base(path)
    if mem.load_u32(base) != TABLE_MAGIC:
        raise SimulationError(f"{path!r} holds no Lynx tables")
    dims = [mem.load_u32(base + 4 * (1 + i)) for i in range(4)]
    sections: Dict[str, List[int]] = {}
    for index, section in enumerate(_SECTIONS):
        offset = mem.load_u32(base + 4 * (5 + 2 * index))
        count = mem.load_u32(base + 4 * (6 + 2 * index))
        sections[section] = [mem.load_i32(base + offset + 4 * i)
                             for i in range(count)]
    return TableSet(dims[0], dims[1], dims[2], dims[3],
                    sections["action"], sections["goto"],
                    sections["prod_heads"], sections["prod_lengths"])


def make_tables(tables: SlrTables) -> TableSet:
    """Adapter from the generator's rich form to the numeric form."""
    return _from_flat(flatten_tables(tables))
