"""Presto-style parallel applications (§4 "Parallel Applications").

"The parent process of the application, which exists solely for set-up
purposes ... creates a temporary directory, puts a symbolic link to the
shared data template into this directory, and then adds the name of the
directory to the LD_LIBRARY_PATH environment variable. At static link
time, the child processes of the parallel application specify that the
shared data structures should be linked as a dynamic public module.
When the parent starts the children, they all find the newly-created
symlink in the temporary directory. The first one to call ldl creates
and initializes the shared data from the template, and all of them link
it in. When the computation terminates the parent process performs the
necessary cleanup, deleting the shared segment, template symlink, and
temporary directory."

:class:`PrestoApp` reproduces that lifecycle exactly, with worker
processes compiled from Toy C and a shared-globals module compiled from
a separate Toy C file — selective sharing with no assembly-editing
post-processor (the 432-line tool the paper replaced).
"""

from repro.apps.presto.runtime import PrestoApp, PrestoResult

__all__ = ["PrestoApp", "PrestoResult"]
