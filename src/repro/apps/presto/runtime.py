"""The Presto-style parallel application lifecycle.

Everything is real simulated machinery: workers are machine processes
compiled from Toy C; the shared globals come from a separate Toy C file
linked as a *dynamic public* module; per-instance sharing is established
with a temporary directory + symlink + LD_LIBRARY_PATH, exactly as §4
describes; synchronization uses kernel semaphores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.libsys import build_libsys
from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.linker.lds import Lds, LinkRequest, store_object
from repro.linker.classes import SharingClass
from repro.linker.segments import read_segment_meta
from repro.objfile.format import ObjectFile
from repro.runtime.views import Mem
from repro.toyc import compile_source

# The shared globals: a work cursor, a result table, and an accumulator.
SHARED_DATA_SOURCE = """
int next_index = 0;
int total = 0;
int results[{nitems}];
"""

# Each worker claims indices under a semaphore lock, computes, and
# accumulates. The shared variables are ordinary externs — no library
# calls for set-up or shared-memory access appear in the source (§2).
WORKER_SOURCE = """
extern int next_index;
extern int total;
extern int results[{nitems}];
extern int sem_get(int key, int value);
extern int sem_p(int key);
extern int sem_v(int key);

int compute(int i) {{
    return i * i + 1;
}}

int main() {{
    int i;
    int value;
    int claimed = 0;
    sem_get(1, 1);
    while (1) {{
        sem_p(1);
        i = next_index;
        next_index = i + 1;
        sem_v(1);
        if (i >= {nitems}) {{
            break;
        }}
        value = compute(i);
        results[i] = value;
        sem_p(1);
        total = total + value;
        sem_v(1);
        claimed = claimed + 1;
    }}
    return claimed;
}}
"""

# The compute-bound variant (E12): same claim protocol, but each item
# burns a busy loop of {iters} iterations *outside* the critical
# sections, so the parallel fraction dominates and the SMP speedup
# curve measures the machine, not the lock. The accumulator trick
# (`+ acc - acc`) keeps the stored value exactly ``i*i + 1`` without
# letting the compiler drop the loop.
COMPUTE_WORKER_SOURCE = """
extern int next_index;
extern int total;
extern int results[{nitems}];
extern int sem_get(int key, int value);
extern int sem_p(int key);
extern int sem_v(int key);

int compute(int i) {{
    int acc = 0;
    int k = 0;
    while (k < {iters}) {{
        acc = acc + i + k;
        k = k + 1;
    }}
    return i * i + 1 + acc - acc;
}}

int main() {{
    int i;
    int value;
    int claimed = 0;
    sem_get(1, 1);
    while (1) {{
        sem_p(1);
        i = next_index;
        next_index = i + 1;
        sem_v(1);
        if (i >= {nitems}) {{
            break;
        }}
        value = compute(i);
        results[i] = value;
        sem_p(1);
        total = total + value;
        sem_v(1);
        claimed = claimed + 1;
    }}
    return claimed;
}}
"""


@dataclass
class PrestoResult:
    """Outcome of one parallel run."""

    total: int
    results: List[int]
    per_worker_items: List[int]
    instance_dir: str


class PrestoApp:
    """Build once, run many instances (each with its own shared data)."""

    def __init__(self, kernel: Kernel, shell: Process, nitems: int = 64,
                 template_dir: str = "/shared/presto",
                 build_dir: str = "/opt/presto",
                 compute_iters: int = 0) -> None:
        self.kernel = kernel
        self.shell = shell
        self.nitems = nitems
        self.compute_iters = compute_iters
        self.template_dir = template_dir
        self.build_dir = build_dir
        self.template_path = f"{template_dir}/shared_data.o"
        self.executable: Optional[ObjectFile] = None
        self._instances = 0
        self._build()

    def _build(self) -> None:
        """Compile the shared-data template and the worker program; link
        the worker with the shared data as a dynamic public module."""
        kernel, shell = self.kernel, self.shell
        kernel.vfs.makedirs(self.template_dir, shell.uid)
        kernel.vfs.makedirs(self.build_dir, shell.uid)

        shared_obj = compile_source(
            SHARED_DATA_SOURCE.format(nitems=self.nitems), "shared_data.o"
        )
        store_object(kernel, shell, self.template_path, shared_obj)

        if self.compute_iters > 0:
            worker_source = COMPUTE_WORKER_SOURCE.format(
                nitems=self.nitems, iters=self.compute_iters
            )
        else:
            worker_source = WORKER_SOURCE.format(nitems=self.nitems)
        worker_obj = compile_source(worker_source, "worker.o")
        store_object(kernel, shell, f"{self.build_dir}/worker.o",
                     worker_obj)

        result = Lds(kernel).link(
            shell,
            [LinkRequest(f"{self.build_dir}/worker.o",
                         SharingClass.STATIC_PRIVATE),
             LinkRequest("shared_data.o", SharingClass.DYNAMIC_PUBLIC)],
            output=f"{self.build_dir}/worker",
            archives=[build_libsys()],
        )
        self.executable = result.executable

    # ------------------------------------------------------------------

    def run_instance(self, nworkers: int = 4) -> PrestoResult:
        """One full §4 lifecycle: set-up, parallel phase, clean-up."""
        kernel, shell = self.kernel, self.shell
        sys = kernel.syscalls
        self._instances += 1
        instance_dir = f"/shared/tmp/presto{self._instances}"

        # -- parent set-up ------------------------------------------------
        kernel.vfs.makedirs("/shared/tmp", shell.uid)
        sys.mkdir(shell, instance_dir)
        sys.symlink(shell, self.template_path,
                    f"{instance_dir}/shared_data.o")
        env: Dict[str, str] = {"LD_LIBRARY_PATH": instance_dir}

        # -- start the children -------------------------------------------
        assert self.executable is not None
        workers = [
            kernel.create_machine_process(f"presto_w{index}",
                                          self.executable, env=dict(env))
            for index in range(nworkers)
        ]
        kernel.schedule()
        for worker in workers:
            if worker.death_reason is not None:
                raise SimulationError(
                    f"worker {worker.name} died: {worker.death_reason}"
                )

        # -- parent reads the results out of the shared module -------------
        runtime = _shell_runtime(kernel, shell)  # installs the handler
        module_path = f"{instance_dir}/shared_data"
        meta, _base, _len = read_segment_meta(kernel, shell, module_path)
        exports = {s.name: s.value for s in meta.defined_globals()}
        mem = Mem(kernel, shell)
        total = mem.load_i32(exports["total"])
        results = [mem.load_i32(exports["results"] + 4 * index)
                   for index in range(self.nitems)]
        per_worker = [worker.exit_code or 0 for worker in workers]

        # -- parent clean-up ------------------------------------------------
        runtime.delete_segment(module_path)
        sys.unlink(shell, f"{instance_dir}/shared_data.o")
        sys.rmdir(shell, instance_dir)
        return PrestoResult(total, results, per_worker, instance_dir)

    def expected_total(self) -> int:
        return sum(i * i + 1 for i in range(self.nitems))


def _shell_runtime(kernel: Kernel, proc: Process):
    from repro.runtime.libshared import runtime_for

    return runtime_for(kernel, proc)
