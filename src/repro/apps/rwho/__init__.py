"""rwho/rwhod — the paper's flagship example (§4 "Administrative Files").

"Using the early prototype of our tools under SunOS, we re-implemented
rwhod to keep its database in shared memory, rather than in files, and
modified the various lookup utilities to access this database directly.
The result was both simpler and faster. On our local network of 65
rwhod-equipped machines, the new version of rwho saves a little over a
second each time it is called."

Two functionally identical implementations:

* :mod:`fileimpl` — the original: one binary status file per remote
  machine under ``/var/rwho``; every received broadcast rewrites the
  file; rwho/ruptime open, read, and unpack every file;
* :mod:`shmimpl` — the Hemlock version: a fixed-layout database in a
  shared segment; broadcasts update records in place; the utilities
  walk the records directly through typed views.
"""

from repro.apps.rwho.common import HostStatus, UserEntry, generate_network
from repro.apps.rwho.fileimpl import FileRwhod, file_rwho, file_ruptime
from repro.apps.rwho.shmimpl import ShmRwhod, shm_rwho, shm_ruptime

__all__ = [
    "HostStatus",
    "UserEntry",
    "generate_network",
    "FileRwhod",
    "file_rwho",
    "file_ruptime",
    "ShmRwhod",
    "shm_rwho",
    "shm_ruptime",
]
