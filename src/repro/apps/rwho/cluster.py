"""rwhod across a Hemlock cluster — the paper's example at scale.

The admin database lives in one cluster-wide shared segment owned by
the server node's rwhod. Gateway nodes broadcast their hosts' status
datagrams over the fabric; the server's ``netd`` forwards them into the
local message queue, so the *unmodified* ``daemon_body`` from the
single-machine experiment runs the database. A reader anywhere in the
cluster runs ``rwho`` against the shared segment: its first touch
fetches the whole database once (coherence FETCH/GRANT), after which
every record access is a plain load.

The file baseline keeps the original per-host files on the server and
makes remote readers ask for them: one LIST call plus one GET call per
host, so read traffic scales with the host count instead of the
constant one-segment fetch — the cluster-scale restatement of the
paper's §4 comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.rwho.common import HostStatus, UserEntry, \
    format_rwho_line
from repro.apps.rwho.daemon import RWHO_QUEUE_KEY, daemon_body, \
    run_network
from repro.apps.rwho.fileimpl import RWHO_DIR, pack_status, \
    unpack_status
from repro.apps.rwho.shmimpl import shm_rwho
from repro.errors import SimulationError
from repro.net.cluster import Cluster
from repro.net.link import FrameKind

#: the fabric port ``netd`` bridges to the rwhod message queue
RWHO_PORT = RWHO_QUEUE_KEY          # 0x5257, "RW"

#: the file-baseline record service ("RF")
FILE_PORT = 0x5246


def synth_statuses(nhosts: int,
                   users_per_host: int = 1) -> List[HostStatus]:
    """A deterministic fleet of *nhosts* host records (no RNG: the
    values are pure functions of the index, so every run and every
    caller agrees on them)."""
    statuses = []
    for index in range(nhosts):
        users = [
            UserEntry(f"u{index}_{slot}", f"tty{slot}",
                      (index * 7 + slot * 13) % 3600)
            for slot in range(users_per_host)
        ]
        statuses.append(HostStatus(
            hostname=f"host{index:05d}",
            boot_time=100_000 + index,
            update_time=200_000 + index,
            load_1=(index * 3) % 900,
            load_5=(index * 5) % 700,
            load_15=(index * 7) % 500,
            users=users,
        ))
    return statuses


def _broadcaster_over_fabric(server: int, statuses: List[HostStatus]):
    """A gateway-node process: one DATA datagram per host record."""

    def body(kernel, proc):
        nic = kernel.nic
        for index, status in enumerate(statuses):
            nic.send(proc, server, RWHO_PORT, pack_status(status))
            if index % 16 == 15:
                yield  # let netd and the scheduler breathe
        return len(statuses)

    return body


def _file_service(kernel):
    """The server-side record service for the file baseline: LIST the
    per-host files, GET one file's bytes. Charged as honest file I/O on
    the server's clock."""
    vfs = kernel.vfs
    clock = kernel.clock

    def handle(frame):
        request = frame.payload
        if request[:1] == b"L":
            try:
                names = sorted(name for name in vfs.listdir(RWHO_DIR)
                               if name.startswith("whod."))
            except SimulationError:
                names = []
            payload = "\n".join(names).encode()
            clock.file_io(len(payload))
            return FrameKind.REPLY, payload
        if request[:1] == b"G":
            path = f"{RWHO_DIR}/{request[1:].decode()}"
            try:
                blob = vfs.read_whole(path)
            except SimulationError:
                return FrameKind.NAK, b""
            clock.file_io(len(blob))
            return FrameKind.REPLY, blob
        return FrameKind.NAK, b""

    return handle


def remote_file_rwho(kernel, proc, server: int) -> str:
    """The rwho utility on a remote node, file baseline: every record
    crosses the wire as its own synchronous exchange."""
    nic = kernel.nic
    listing = nic.call(server, FrameKind.CALL, FILE_PORT, b"L")
    if listing.kind is not FrameKind.REPLY:
        raise SimulationError("file service refused LIST")
    names = listing.payload.decode().split("\n") \
        if listing.payload else []
    lines = []
    for name in names:
        reply = nic.call(server, FrameKind.CALL, FILE_PORT,
                         b"G" + name.encode())
        if reply.kind is not FrameKind.REPLY:
            continue
        status = unpack_status(reply.payload)
        for user in status.users:
            lines.append(format_rwho_line(status.hostname, user))
    return "\n".join(sorted(lines))


def run_cluster_rwho(cluster: Cluster, statuses: List[HostStatus],
                     implementation: str = "shm", server: int = 0,
                     readers: Optional[List[int]] = None,
                     max_rounds: int = 200_000) -> Dict[str, object]:
    """The full scenario on an already-booted *cluster*.

    Gateways (every node but *server*) broadcast an even share of
    *statuses*; the server's rwhod builds the database; then one reader
    process per node in *readers* runs rwho remotely. Returns outputs
    and exact traffic counters.
    """
    if implementation not in ("shm", "file"):
        raise ValueError(f"unknown implementation {implementation!r}")
    nnodes = cluster.nnodes
    if nnodes < 2:
        raise SimulationError("the scenario needs a server + gateways")
    if readers is None:
        readers = [(server + 1) % nnodes]
    nhosts = len({status.hostname for status in statuses})

    server_machine = cluster.machines[server]
    server_machine.add_daemon(f"rwhod-{implementation}",
                              daemon_body(implementation, nhosts))
    if implementation == "file":
        server_machine.nic.bind(FILE_PORT,
                                _file_service(server_machine.kernel))

    gateways = [node for node in range(nnodes) if node != server]
    for lane, node in enumerate(gateways):
        share = statuses[lane::len(gateways)]
        if share:
            cluster.spawn(node, f"gateway{node}",
                          _broadcaster_over_fabric(server, share))
    broadcast_rounds = cluster.run(max_rounds)

    outputs: Dict[int, str] = {}

    def reader_body(node):
        def body(kernel, proc):
            if implementation == "shm":
                outputs[node] = shm_rwho(kernel, proc)
            else:
                outputs[node] = remote_file_rwho(kernel, proc, server)
            yield
            return 0

        return body

    for node in readers:
        cluster.spawn(node, f"rwho-reader{node}", reader_body(node))
    read_rounds = cluster.run(max_rounds)

    stats = cluster.fabric.stats
    return {
        "implementation": implementation,
        "nhosts": nhosts,
        "outputs": outputs,
        "broadcast_rounds": broadcast_rounds,
        "read_rounds": read_rounds,
        "frames_sent": stats.frames_sent,
        "frames_delivered": stats.frames_delivered,
        "bytes_sent": stats.bytes_sent,
        "bytes_delivered": stats.bytes_delivered,
        "by_kind": dict(stats.by_kind),
        "net_cycles": cluster.net_cycles(),
        "cycles": cluster.cycle_counts(),
        "coherence": cluster.coherence_stats(),
    }


def run_ha_rwho(cluster: Cluster, statuses: List[HostStatus],
                oracle: str, server: int = 0, max_epochs: int = 30,
                max_rounds: int = 200_000) -> Dict[str, object]:
    """The recovery scenario: clustered rwho under the armed failure
    model, driven in *epochs* until the database a fresh probe reads
    equals *oracle* (the single-kernel output for the same fleet).

    Each epoch re-broadcasts the whole fleet from every live gateway
    (records lost to a crash or cut are simply sent again — rwhod
    record processing is idempotent), then runs one fresh probe on a
    live non-server node. A probe killed by a contained coherence
    fault (its home timed out mid-fetch) counts as a failed epoch, not
    an error: the next epoch retries with a new process. Between
    failed epochs the cluster is pumped ``lease_rounds`` rounds so
    heartbeats, suspicion, reboots and partition heals keep advancing
    even when no workload is runnable.

    The server's rwhod is re-spawned by an HA reboot hook, which first
    unlinks the recovered ``rwho.db`` — its mmap-written content is
    journal-stale by construction — so the database is republished
    fresh and every stale replica in the cluster is invalidated.
    """
    if cluster.ha is None:
        raise SimulationError("run_ha_rwho needs Cluster(..., ha=...)")
    nnodes = cluster.nnodes
    if nnodes < 2:
        raise SimulationError("the scenario needs a server + gateways")
    nhosts = len({status.hostname for status in statuses})
    db_path = cluster.machines[server].kernel.sfs_mount + "/rwho.db"

    cluster.machines[server].add_daemon("rwhod-shm",
                                        daemon_body("shm", nhosts))

    def respawn(cluster_, node, machine):
        if node != server:
            return  # gateways and probes are re-spawned per epoch
        kernel = machine.kernel
        try:
            kernel.vfs.unlink(db_path)
        except SimulationError:
            pass
        machine.add_daemon("rwhod-shm", daemon_body("shm", nhosts))

    cluster.ha.on_reboot.append(respawn)

    outputs: Dict[int, str] = {}
    total_rounds = 0
    epochs = 0
    converged = False
    pump = cluster.ha.config.lease_rounds
    for epoch in range(max_epochs):
        epochs = epoch + 1
        live = [node for node in range(nnodes)
                if not cluster.machines[node].crashed]
        gateways = [node for node in live if node != server]
        if server in live:
            for lane, node in enumerate(gateways):
                share = statuses[lane::len(gateways)]
                if share:
                    cluster.spawn(
                        node, f"gw{node}e{epoch}",
                        _broadcaster_over_fabric(server, share))
        total_rounds += cluster.run(max_rounds)

        probes = [node for node in range(nnodes)
                  if node != server
                  and not cluster.machines[node].crashed]
        if probes:
            where = probes[epoch % len(probes)]

            def probe_body(kernel, proc, _epoch=epoch):
                outputs[_epoch] = shm_rwho(kernel, proc)
                yield
                return 0

            cluster.spawn(where, f"probe{epoch}", probe_body)
            total_rounds += cluster.run(max_rounds)
        if outputs.get(epoch) == oracle:
            converged = True
            break
        # keep the failure schedule (reboot draws, heals, suspicion)
        # moving even though nothing is runnable
        for _ in range(pump):
            cluster.step()
        total_rounds += pump

    ha_stats = vars(cluster.ha.stats).copy()
    return {
        "converged": converged,
        "epochs": epochs,
        "rounds": total_rounds,
        "outputs": outputs,
        "nhosts": nhosts,
        "ha": ha_stats,
        "frames_sent": cluster.fabric.stats.frames_sent,
        "ha_dropped": cluster.fabric.stats.ha_dropped,
    }


def single_kernel_rwho(statuses: List[HostStatus]) -> str:
    """The differential oracle: the same fleet through the classic
    single-machine experiment (one kernel, message-queue 'network')."""
    from repro import boot
    from repro.bench.workloads import make_shell

    system = boot()
    run_network(system.kernel, statuses, "shm")
    probe = make_shell(system.kernel, "rwho-probe")
    return shm_rwho(system.kernel, probe)
