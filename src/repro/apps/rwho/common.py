"""Shared data model and workload generation for the rwho experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.util.rng import DeterministicRng

MAX_USERS_PER_HOST = 4
HOSTNAME_LEN = 32
USERNAME_LEN = 12
TTY_LEN = 8


@dataclass
class UserEntry:
    """One logged-in user, as rwhod reports it."""

    name: str
    tty: str
    idle_seconds: int


@dataclass
class HostStatus:
    """One machine's periodic broadcast (struct whod, abridged)."""

    hostname: str
    boot_time: int
    update_time: int
    load_1: int      # load averages x100, as integers
    load_5: int
    load_15: int
    users: List[UserEntry] = field(default_factory=list)

    @property
    def uptime(self) -> int:
        return self.update_time - self.boot_time


def generate_network(nhosts: int = 65, seed: int = 1993,
                     base_time: int = 726_000_000) -> List[HostStatus]:
    """A deterministic network of *nhosts* machines (65 in the paper)."""
    rng = DeterministicRng(seed)
    hosts = []
    for index in range(nhosts):
        nusers = rng.randint(0, MAX_USERS_PER_HOST)
        users = [
            UserEntry(
                name=f"user{rng.randint(0, 99):02d}",
                tty=f"tty{rng.randint(0, 9)}",
                idle_seconds=rng.randint(0, 3600),
            )
            for _ in range(nusers)
        ]
        hosts.append(HostStatus(
            hostname=f"cs{index:02d}",
            boot_time=base_time - rng.randint(3600, 30 * 86400),
            update_time=base_time,
            load_1=rng.randint(0, 400),
            load_5=rng.randint(0, 400),
            load_15=rng.randint(0, 400),
            users=users,
        ))
    return hosts


def updated_status(status: HostStatus, tick: int,
                   rng: DeterministicRng) -> HostStatus:
    """The next periodic broadcast from *status*'s machine."""
    return HostStatus(
        hostname=status.hostname,
        boot_time=status.boot_time,
        update_time=status.update_time + tick,
        load_1=max(0, status.load_1 + rng.randint(-50, 50)),
        load_5=max(0, status.load_5 + rng.randint(-20, 20)),
        load_15=max(0, status.load_15 + rng.randint(-10, 10)),
        users=list(status.users),
    )


def format_rwho_line(hostname: str, user: UserEntry) -> str:
    """One line of rwho output."""
    idle = f"{user.idle_seconds // 60}:{user.idle_seconds % 60:02d}"
    return f"{user.name:<12} {hostname}:{user.tty:<8} {idle}"


def format_ruptime_line(status: HostStatus) -> str:
    """One line of ruptime output."""
    days, rest = divmod(status.uptime, 86400)
    hours, rest = divmod(rest, 3600)
    minutes = rest // 60
    return (
        f"{status.hostname:<12} up {days:3d}+{hours:02d}:{minutes:02d}, "
        f"{len(status.users)} users, "
        f"load {status.load_1 / 100:.2f}, {status.load_5 / 100:.2f}, "
        f"{status.load_15 / 100:.2f}"
    )
