"""rwhod as an actual daemon process.

The paper's rwhod "periodically broadcasts local status information ...
and receives analogous information from its peers". Here the network is
a kernel message queue: peer broadcasts arrive as packed datagrams; the
daemon runs as a native process, unpacking each datagram and updating
its database — per-machine files or the shared-memory database,
depending on which implementation it was started with.
"""

from __future__ import annotations

from typing import List

from repro.apps.rwho.common import HostStatus
from repro.errors import SimulationError
from repro.apps.rwho.fileimpl import FileRwhod, pack_status, unpack_status
from repro.apps.rwho.shmimpl import ShmRwhod
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process

RWHO_QUEUE_KEY = 0x5257

# A zero-length datagram tells the daemon to shut down.
_SHUTDOWN = b""


def broadcaster_body(statuses: List[HostStatus], shutdown: bool = True):
    """A native-process body that injects peer broadcasts."""

    def body(kernel: Kernel, proc: Process):
        sys = kernel.syscalls
        qid = sys.msgget(proc, RWHO_QUEUE_KEY)
        for index, status in enumerate(statuses):
            sys.msgsnd(proc, qid, pack_status(status))
            if index % 16 == 15:
                yield  # let the daemon drain the queue now and then
        if shutdown:
            sys.msgsnd(proc, qid, _SHUTDOWN)
        return len(statuses)

    return body


def daemon_body(implementation: str, nhosts: int):
    """The rwhod main loop as a native-process body.

    *implementation* is ``"file"`` or ``"shm"``.
    """

    def body(kernel: Kernel, proc: Process):
        if implementation == "file":
            database = FileRwhod(kernel, proc)
        else:
            database = ShmRwhod(kernel, proc, nhosts=nhosts)
        sys = kernel.syscalls
        qid = sys.msgget(proc, RWHO_QUEUE_KEY)
        received = 0
        while True:
            # A long-lived daemon rides out injected faults: a failed
            # receive retries next slice, a datagram lost mid-update is
            # one stale record, never a dead daemon.
            try:
                datagram = sys.msgrcv(proc, qid, blocking=False)
            except SimulationError:
                injector = kernel.injector
                if injector is not None:
                    injector.note_retry()
                yield
                continue
            if datagram is None:
                yield  # queue empty: sleep until rescheduled
                continue
            if datagram == _SHUTDOWN:
                break
            try:
                database.receive(unpack_status(datagram))
            except SimulationError:
                injector = kernel.injector
                if injector is not None:
                    injector.note_contained("rwhod-receive")
                yield
                continue
            received += 1
        return received

    return body


def run_network(kernel: Kernel, statuses: List[HostStatus],
                implementation: str) -> int:
    """Spawn a daemon + a broadcaster, run to completion.

    Returns the number of broadcasts the daemon processed.
    """
    nhosts = len({status.hostname for status in statuses})
    daemon = kernel.create_native_process(
        f"rwhod-{implementation}", daemon_body(implementation, nhosts)
    )
    kernel.create_native_process("network", broadcaster_body(statuses))
    kernel.schedule()
    if daemon.death_reason is not None:
        raise RuntimeError(f"rwhod died: {daemon.death_reason}")
    assert daemon.native is not None
    return daemon.native.result
