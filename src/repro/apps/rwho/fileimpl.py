"""File-based rwhod — the original implementation.

"As originally conceived, it maintains a collection of local files, one
per remote machine, that contain the most recent information received
from those machines. Every time it receives a message from a peer it
rewrites the corresponding file. Utility programs read these files and
generate terminal output."

The status files use a packed binary format (``struct whod`` style), so
both the daemon and the utilities pay the linearize/parse translation
cost on every operation — precisely the overhead the shared-memory
version eliminates.
"""

from __future__ import annotations

import struct
from typing import List

from repro.apps.rwho.common import (
    HOSTNAME_LEN,
    HostStatus,
    MAX_USERS_PER_HOST,
    TTY_LEN,
    USERNAME_LEN,
    UserEntry,
    format_ruptime_line,
    format_rwho_line,
)
from repro.errors import FileNotFoundSimError
from repro.fs.vfs import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process

_HEADER = struct.Struct(f"<{HOSTNAME_LEN}sIIiiiI")
_USER = struct.Struct(f"<{USERNAME_LEN}s{TTY_LEN}sI")

RWHO_DIR = "/var/rwho"


def pack_status(status: HostStatus) -> bytes:
    """Linearize a status record into the on-disk whod format."""
    blob = _HEADER.pack(
        status.hostname.encode("latin-1"),
        status.boot_time,
        status.update_time,
        status.load_1,
        status.load_5,
        status.load_15,
        len(status.users),
    )
    for user in status.users[:MAX_USERS_PER_HOST]:
        blob += _USER.pack(
            user.name.encode("latin-1"),
            user.tty.encode("latin-1"),
            user.idle_seconds,
        )
    return blob


def unpack_status(blob: bytes) -> HostStatus:
    """Parse the on-disk whod format back into a status record."""
    hostname, boot, update, l1, l5, l15, nusers = \
        _HEADER.unpack_from(blob, 0)
    users = []
    offset = _HEADER.size
    for _ in range(nusers):
        name, tty, idle = _USER.unpack_from(blob, offset)
        offset += _USER.size
        users.append(UserEntry(
            name.rstrip(b"\x00").decode("latin-1"),
            tty.rstrip(b"\x00").decode("latin-1"),
            idle,
        ))
    return HostStatus(
        hostname.rstrip(b"\x00").decode("latin-1"),
        boot, update, l1, l5, l15, users,
    )


class FileRwhod:
    """The daemon half: receive a broadcast, rewrite the host's file."""

    def __init__(self, kernel: Kernel, proc: Process,
                 directory: str = RWHO_DIR) -> None:
        self.kernel = kernel
        self.proc = proc
        self.directory = directory
        kernel.vfs.makedirs(directory, proc.uid)

    def receive(self, status: HostStatus) -> None:
        """Handle one broadcast: linearize and rewrite whod.<host>."""
        sys = self.kernel.syscalls
        path = f"{self.directory}/whod.{status.hostname}"
        fd = sys.open(self.proc, path, O_WRONLY | O_CREAT | O_TRUNC)
        try:
            sys.write(self.proc, fd, pack_status(status))
        finally:
            sys.close(self.proc, fd)


def _read_all(kernel: Kernel, proc: Process,
              directory: str) -> List[HostStatus]:
    sys = kernel.syscalls
    statuses = []
    for name in sorted(sys.listdir(proc, directory)):
        if not name.startswith("whod."):
            continue
        path = f"{directory}/{name}"
        try:
            fd = sys.open(proc, path, O_RDONLY)
        except FileNotFoundSimError:
            continue
        try:
            blob = sys.read(proc, fd, sys.fstat(proc, fd).st_size)
        finally:
            sys.close(proc, fd)
        statuses.append(unpack_status(blob))
    return statuses


def file_rwho(kernel: Kernel, proc: Process,
              directory: str = RWHO_DIR) -> str:
    """The rwho utility: who is logged in, network-wide."""
    lines = []
    for status in _read_all(kernel, proc, directory):
        for user in status.users:
            lines.append(format_rwho_line(status.hostname, user))
    return "\n".join(sorted(lines))


def file_ruptime(kernel: Kernel, proc: Process,
                 directory: str = RWHO_DIR) -> str:
    """The ruptime utility: per-host uptime and load."""
    lines = [format_ruptime_line(status)
             for status in _read_all(kernel, proc, directory)]
    return "\n".join(sorted(lines))
