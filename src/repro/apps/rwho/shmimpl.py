"""Shared-memory rwhod — the Hemlock re-implementation (§4).

The database is a fixed-layout array of host records in one shared
segment. The daemon updates records in place (no linearization, no file
rewrite); the utilities read the records directly. The only syscalls on
the fast path are the one-time segment mapping — afterwards both sides
run at memory speed, which is where the "saves a little over a second"
comes from.

Layout::

    db:       [magic u32][nhosts u32]  then nhosts host records
    host:     [hostname cstr:32][boot u32][update u32]
              [load1 i32][load5 i32][load15 i32][nusers u32]
              4 inline user records
    user:     [name cstr:12][tty cstr:8][idle u32]
"""

from __future__ import annotations

from typing import List

from repro.apps.rwho.common import (
    HostStatus,
    MAX_USERS_PER_HOST,
    UserEntry,
    format_ruptime_line,
    format_rwho_line,
)
from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem, StructDef

DB_MAGIC = 0x5257484F  # "RWHO"
DB_SEGMENT = "/shared/rwho.db"

USER_STRUCT = StructDef("rwho_user", [
    ("name", "cstr:12"),
    ("tty", "cstr:8"),
    ("idle", "u32"),
])

HOST_STRUCT = StructDef("rwho_host", [
    ("hostname", "cstr:32"),
    ("boot_time", "u32"),
    ("update_time", "u32"),
    ("load_1", "i32"),
    ("load_5", "i32"),
    ("load_15", "i32"),
    ("nusers", "u32"),
    ("users", f"bytes:{USER_STRUCT.size * MAX_USERS_PER_HOST}"),
])

DB_HEADER_SIZE = 8


def db_size(nhosts: int) -> int:
    return DB_HEADER_SIZE + nhosts * HOST_STRUCT.size


class ShmRwhod:
    """The daemon half: owns the shared database segment."""

    def __init__(self, kernel: Kernel, proc: Process, nhosts: int,
                 segment: str = DB_SEGMENT) -> None:
        self.kernel = kernel
        self.proc = proc
        self.segment = segment
        self.nhosts = nhosts
        self.mem = Mem(kernel, proc)
        runtime = runtime_for(kernel, proc)
        if kernel.vfs.exists(segment, proc.uid):
            self.base = runtime.segment_base(segment)
        else:
            self.base = runtime.create_segment(segment, db_size(nhosts))
            self.mem.store_u32(self.base, DB_MAGIC)
            self.mem.store_u32(self.base + 4, 0)
        self._index: dict = {}
        self._load_index()

    def _load_index(self) -> None:
        count = self.mem.load_u32(self.base + 4)
        for slot in range(count):
            view = self._record(slot)
            self._index[view.get("hostname")] = slot

    def _record(self, slot: int):
        return HOST_STRUCT.view(
            self.mem, self.base + DB_HEADER_SIZE + slot * HOST_STRUCT.size
        )

    def receive(self, status: HostStatus) -> None:
        """Handle one broadcast: update the host's record in place."""
        slot = self._index.get(status.hostname)
        if slot is None:
            slot = self.mem.load_u32(self.base + 4)
            if slot >= self.nhosts:
                raise SimulationError("rwho database full")
            self.mem.store_u32(self.base + 4, slot + 1)
            self._index[status.hostname] = slot
        view = self._record(slot)
        view.set("hostname", status.hostname)
        view.set("boot_time", status.boot_time)
        view.set("update_time", status.update_time)
        view.set("load_1", status.load_1)
        view.set("load_5", status.load_5)
        view.set("load_15", status.load_15)
        view.set("nusers", min(len(status.users), MAX_USERS_PER_HOST))
        users_base = view.field_address("users")
        for index, user in enumerate(status.users[:MAX_USERS_PER_HOST]):
            entry = USER_STRUCT.view(self.mem,
                                     users_base + index * USER_STRUCT.size)
            entry.update(name=user.name, tty=user.tty,
                         idle=user.idle_seconds)


def read_database(kernel: Kernel, proc: Process,
                  segment: str = DB_SEGMENT) -> List[HostStatus]:
    """Read every record straight out of the shared database.

    The first access faults and maps the segment; everything after that
    is plain loads.
    """
    runtime = runtime_for(kernel, proc)
    mem = Mem(kernel, proc)
    base = runtime.segment_base(segment)
    if mem.load_u32(base) != DB_MAGIC:
        raise SimulationError(f"{segment!r} is not an rwho database")
    count = mem.load_u32(base + 4)
    statuses = []
    for slot in range(count):
        view = HOST_STRUCT.view(
            mem, base + DB_HEADER_SIZE + slot * HOST_STRUCT.size
        )
        nusers = view.get("nusers")
        users_base = view.field_address("users")
        users = []
        for index in range(nusers):
            entry = USER_STRUCT.view(mem,
                                     users_base + index * USER_STRUCT.size)
            users.append(UserEntry(entry.get("name"), entry.get("tty"),
                                   entry.get("idle")))
        statuses.append(HostStatus(
            view.get("hostname"),
            view.get("boot_time"),
            view.get("update_time"),
            view.get("load_1"),
            view.get("load_5"),
            view.get("load_15"),
            users,
        ))
    return statuses


def shm_rwho(kernel: Kernel, proc: Process,
             segment: str = DB_SEGMENT) -> str:
    """The rwho utility against the shared database."""
    lines = []
    for status in read_database(kernel, proc, segment):
        for user in status.users:
            lines.append(format_rwho_line(status.hostname, user))
    return "\n".join(sorted(lines))


def shm_ruptime(kernel: Kernel, proc: Process,
                segment: str = DB_SEGMENT) -> str:
    """The ruptime utility against the shared database."""
    lines = [format_ruptime_line(status)
             for status in read_database(kernel, proc, segment)]
    return "\n".join(sorted(lines))
