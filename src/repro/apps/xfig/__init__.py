"""xfig — pointer-rich figures in shared segments (§4).

"While editing, xfig maintains a set of linked lists that represent the
objects comprising a figure. It originally translated these lists to
and from a pointer-free ASCII representation when reading and writing
files. ... The Hemlock version of xfig uses the pre-existing copy
routines for files, at a savings of over 800 lines of code."

* :mod:`model` — the in-editor object model (linked lists of lines,
  circles, and text objects);
* :mod:`ascii` — the baseline: translate the model to and from a
  pointer-free ``.fig``-style text format;
* :mod:`shared` — the Hemlock version: the linked lists live directly
  in a shared segment; "saving" is free, "loading" is mapping, and
  object duplication reuses the very same in-segment copy routine.
"""

from repro.apps.xfig.model import Figure, FigLine, FigCircle, FigText, \
    generate_figure
from repro.apps.xfig.ascii import figure_to_ascii, figure_from_ascii
from repro.apps.xfig.shared import SharedFigure

__all__ = [
    "Figure",
    "FigLine",
    "FigCircle",
    "FigText",
    "generate_figure",
    "figure_to_ascii",
    "figure_from_ascii",
    "SharedFigure",
]
