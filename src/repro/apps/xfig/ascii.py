"""Baseline save/load: the pointer-free ASCII ``.fig``-style format.

This is the translation code Hemlock makes unnecessary — every save
linearizes the linked structure into text, every load parses it back.
The experiment charges the honest file-I/O and parsing costs.
"""

from __future__ import annotations

from typing import List

from repro.apps.xfig.model import FigCircle, FigLine, FigText, Figure
from repro.errors import SimulationError
from repro.fs.vfs import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process

HEADER = "#FIG-SIM 1.0"


def figure_to_ascii(figure: Figure) -> str:
    """Linearize *figure* to text."""
    lines: List[str] = [HEADER, str(len(figure.objects))]
    for obj in figure.objects:
        if isinstance(obj, FigLine):
            flat = " ".join(f"{x} {y}" for x, y in obj.points)
            lines.append(
                f"L {obj.color} {obj.thickness} {len(obj.points)} {flat}"
            )
        elif isinstance(obj, FigCircle):
            lines.append(
                f"C {obj.color} {obj.thickness} {obj.cx} {obj.cy} "
                f"{obj.radius}"
            )
        elif isinstance(obj, FigText):
            encoded = obj.text.replace("\\", "\\\\").replace(" ", "\\s")
            lines.append(
                f"T {obj.color} {obj.font_size} {obj.x} {obj.y} {encoded}"
            )
        else:
            raise SimulationError(f"unknown object {obj!r}")
    return "\n".join(lines) + "\n"


def figure_from_ascii(text: str) -> Figure:
    """Parse the text format back into the object model."""
    lines = text.splitlines()
    if not lines or lines[0] != HEADER:
        raise SimulationError("not a figure file")
    count = int(lines[1])
    figure = Figure()
    for line in lines[2: 2 + count]:
        parts = line.split(" ")
        kind = parts[0]
        if kind == "L":
            color, thickness, npoints = (int(parts[1]), int(parts[2]),
                                         int(parts[3]))
            coords = [int(p) for p in parts[4: 4 + 2 * npoints]]
            points = [(coords[i], coords[i + 1])
                      for i in range(0, len(coords), 2)]
            figure.objects.append(FigLine(points, color, thickness))
        elif kind == "C":
            figure.objects.append(FigCircle(
                cx=int(parts[3]), cy=int(parts[4]), radius=int(parts[5]),
                color=int(parts[1]), thickness=int(parts[2]),
            ))
        elif kind == "T":
            encoded = " ".join(parts[5:])
            text_value = encoded.replace("\\s", " ").replace("\\\\", "\\")
            figure.objects.append(FigText(
                x=int(parts[3]), y=int(parts[4]), text=text_value,
                color=int(parts[1]), font_size=int(parts[2]),
            ))
        else:
            raise SimulationError(f"bad object line {line!r}")
    return figure


# Cost of running the translation code itself (formatting integers out,
# scanning them back in): a few instructions per byte of text, charged
# so the baseline's CPU work is visible to the cost model the way the
# file I/O already is.
TRANSLATE_CYCLES_PER_BYTE = 4


def save_figure_ascii(kernel: Kernel, proc: Process, figure: Figure,
                      path: str) -> int:
    """Translate + write; returns bytes written."""
    sys = kernel.syscalls
    blob = figure_to_ascii(figure).encode("latin-1")
    kernel.clock.charge("translation",
                        len(blob) * TRANSLATE_CYCLES_PER_BYTE)
    fd = sys.open(proc, path, O_WRONLY | O_CREAT | O_TRUNC)
    try:
        return sys.write(proc, fd, blob)
    finally:
        sys.close(proc, fd)


def load_figure_ascii(kernel: Kernel, proc: Process, path: str) -> Figure:
    """Read + parse back into the model."""
    sys = kernel.syscalls
    fd = sys.open(proc, path, O_RDONLY)
    try:
        blob = sys.read(proc, fd, sys.fstat(proc, fd).st_size)
    finally:
        sys.close(proc, fd)
    kernel.clock.charge("translation",
                        len(blob) * TRANSLATE_CYCLES_PER_BYTE)
    return figure_from_ascii(blob.decode("latin-1"))
