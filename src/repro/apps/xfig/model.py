"""The xfig object model: what the editor manipulates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.util.rng import DeterministicRng


@dataclass
class FigLine:
    """A polyline: a list of (x, y) points plus style attributes."""

    points: List[tuple]
    color: int = 0
    thickness: int = 1


@dataclass
class FigCircle:
    cx: int = 0
    cy: int = 0
    radius: int = 1
    color: int = 0
    thickness: int = 1


@dataclass
class FigText:
    x: int = 0
    y: int = 0
    text: str = ""
    color: int = 0
    font_size: int = 12


FigObject = Union[FigLine, FigCircle, FigText]


@dataclass
class Figure:
    """A figure: an ordered collection of drawing objects."""

    objects: List[FigObject] = field(default_factory=list)

    def counts(self) -> dict:
        out = {"line": 0, "circle": 0, "text": 0}
        for obj in self.objects:
            if isinstance(obj, FigLine):
                out["line"] += 1
            elif isinstance(obj, FigCircle):
                out["circle"] += 1
            else:
                out["text"] += 1
        return out


def generate_figure(nobjects: int = 100, seed: int = 7,
                    max_points: int = 12) -> Figure:
    """A deterministic pseudo-random figure for tests and benchmarks."""
    rng = DeterministicRng(seed)
    figure = Figure()
    for _ in range(nobjects):
        kind = rng.randint(0, 2)
        if kind == 0:
            npoints = rng.randint(2, max_points)
            points = [(rng.randint(0, 1000), rng.randint(0, 1000))
                      for _ in range(npoints)]
            figure.objects.append(
                FigLine(points, color=rng.randint(0, 31),
                        thickness=rng.randint(1, 5))
            )
        elif kind == 1:
            figure.objects.append(FigCircle(
                cx=rng.randint(0, 1000), cy=rng.randint(0, 1000),
                radius=rng.randint(1, 200), color=rng.randint(0, 31),
                thickness=rng.randint(1, 5),
            ))
        else:
            length = rng.randint(1, 24)
            text = "".join(chr(ord("a") + rng.randint(0, 25))
                           for _ in range(length))
            figure.objects.append(FigText(
                x=rng.randint(0, 1000), y=rng.randint(0, 1000),
                text=text, color=rng.randint(0, 31),
                font_size=rng.choice([8, 10, 12, 14, 18, 24]),
            ))
    return figure
