"""The Hemlock xfig: figures live as linked lists *in* a shared segment.

Saving a figure is free (the working representation already is the
persistent one); loading is mapping the segment; duplicating an object
uses the same in-segment routines in both cases — "the Hemlock version
of xfig uses the pre-existing copy routines for files". The cost is
position dependence: a figure segment "can safely be copied only by
xfig itself" (§5), which :meth:`SharedFigure.copy_object` demonstrates
by rebuilding internal pointers rather than copying bytes.

Record layout (absolute pointers, valid in every process)::

    segment:  [head ptr][count u32][heap ...]
    object:   [next ptr][kind u32][color i32][p0 i32][p1 i32][p2 i32]
              [extra ptr][nextra u32]

kind 1 = line   (p0 thickness,              extra -> i32 x,y pairs)
kind 2 = circle (p0 thickness, p1 cx, p2 cy; nextra = radius)
kind 3 = text   (p0 font size, p1 x,  p2 y;  extra -> chars)
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.xfig.model import FigCircle, FigLine, FigText, Figure, \
    FigObject
from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.runtime.libshared import runtime_for
from repro.runtime.shmalloc import SegmentHeap
from repro.runtime.views import Mem, StructDef

KIND_LINE = 1
KIND_CIRCLE = 2
KIND_TEXT = 3

HEADER_SIZE = 8

OBJ = StructDef("fig_object", [
    ("next", "ptr"),
    ("kind", "u32"),
    ("color", "i32"),
    ("p0", "i32"),
    ("p1", "i32"),
    ("p2", "i32"),
    ("extra", "ptr"),
    ("nextra", "u32"),
])


class SharedFigure:
    """A figure whose objects live in a shared segment."""

    def __init__(self, kernel: Kernel, proc: Process, path: str,
                 size: int = 256 * 1024, create: bool = False) -> None:
        self.kernel = kernel
        self.proc = proc
        self.path = path
        self.mem = Mem(kernel, proc)
        runtime = runtime_for(kernel, proc)
        if create:
            self.base = runtime.create_segment(path, size)
            self.heap = SegmentHeap(self.mem, self.base + HEADER_SIZE,
                                    size - HEADER_SIZE)
            self.heap.initialize()
            self.mem.store_u32(self.base, 0)
            self.mem.store_u32(self.base + 4, 0)
        else:
            self.base = runtime.segment_base(path)
            stat = kernel.vfs.stat(path, proc.uid)
            self.heap = SegmentHeap(self.mem, self.base + HEADER_SIZE,
                                    stat.st_size - HEADER_SIZE)

    # ------------------------------------------------------------------

    @property
    def head(self) -> int:
        return self.mem.load_u32(self.base)

    @property
    def count(self) -> int:
        return self.mem.load_u32(self.base + 4)

    def object_addresses(self) -> List[int]:
        out = []
        addr = self.head
        while addr:
            out.append(addr)
            addr = OBJ.view(self.mem, addr).get("next")
        return out

    # ------------------------------------------------------------------
    # constructing objects in the segment
    # ------------------------------------------------------------------

    def add_object(self, obj: FigObject) -> int:
        """Allocate and link a new in-segment object; returns its address."""
        record = self.heap.alloc(OBJ.size)
        view = OBJ.view(self.mem, record)
        if isinstance(obj, FigLine):
            extra = self.heap.alloc(8 * len(obj.points))
            for index, (x, y) in enumerate(obj.points):
                self.mem.store_i32(extra + 8 * index, x)
                self.mem.store_i32(extra + 8 * index + 4, y)
            view.update(kind=KIND_LINE, color=obj.color, p0=obj.thickness,
                        p1=0, p2=0, extra=extra, nextra=len(obj.points))
        elif isinstance(obj, FigCircle):
            view.update(kind=KIND_CIRCLE, color=obj.color,
                        p0=obj.thickness, p1=obj.cx, p2=obj.cy,
                        extra=0, nextra=obj.radius)
        elif isinstance(obj, FigText):
            encoded = obj.text.encode("latin-1")
            extra = self.heap.alloc(len(encoded) + 1)
            self.mem.store_bytes(extra, encoded + b"\x00")
            view.update(kind=KIND_TEXT, color=obj.color, p0=obj.font_size,
                        p1=obj.x, p2=obj.y, extra=extra,
                        nextra=len(encoded))
        else:
            raise SimulationError(f"unknown object {obj!r}")
        view.set("next", self.head)
        self.mem.store_u32(self.base, record)
        self.mem.store_u32(self.base + 4, self.count + 1)
        return record

    def build_from(self, figure: Figure) -> None:
        """Populate the segment from a model figure ("saving")."""
        for obj in reversed(figure.objects):
            self.add_object(obj)

    # ------------------------------------------------------------------
    # reading objects back out
    # ------------------------------------------------------------------

    def read_object(self, address: int) -> FigObject:
        view = OBJ.view(self.mem, address)
        kind = view.get("kind")
        if kind == KIND_LINE:
            npoints = view.get("nextra")
            extra = view.get("extra")
            points = [
                (self.mem.load_i32(extra + 8 * i),
                 self.mem.load_i32(extra + 8 * i + 4))
                for i in range(npoints)
            ]
            return FigLine(points, view.get("color"), view.get("p0"))
        if kind == KIND_CIRCLE:
            return FigCircle(cx=view.get("p1"), cy=view.get("p2"),
                             radius=view.get("nextra"),
                             color=view.get("color"),
                             thickness=view.get("p0"))
        if kind == KIND_TEXT:
            return FigText(x=view.get("p1"), y=view.get("p2"),
                           text=self.mem.load_cstring(view.get("extra")),
                           color=view.get("color"),
                           font_size=view.get("p0"))
        raise SimulationError(f"bad object kind {kind} at 0x{address:08x}")

    def to_figure(self) -> Figure:
        """Materialize the model from the segment ("loading")."""
        objects = [self.read_object(addr)
                   for addr in self.object_addresses()]
        return Figure(objects)

    # ------------------------------------------------------------------
    # duplication: the pre-existing "file" routine reused for editing
    # ------------------------------------------------------------------

    def copy_object(self, address: int) -> int:
        """Deep-copy an in-segment object (the editor's duplicate
        command). Reuses read_object + add_object — the same routines
        that implement persistence, which is exactly the code-sharing
        the paper reports (800+ lines saved)."""
        return self.add_object(self.read_object(address))

    def delete_object(self, address: int) -> None:
        """Unlink and free an object and its extra data."""
        prev: Optional[int] = None
        cursor = self.head
        while cursor and cursor != address:
            prev = cursor
            cursor = OBJ.view(self.mem, cursor).get("next")
        if not cursor:
            raise SimulationError(f"no object at 0x{address:08x}")
        view = OBJ.view(self.mem, cursor)
        next_addr = view.get("next")
        if prev is None:
            self.mem.store_u32(self.base, next_addr)
        else:
            OBJ.view(self.mem, prev).set("next", next_addr)
        extra = view.get("extra")
        if extra:
            self.heap.free(extra)
        self.heap.free(cursor)
        self.mem.store_u32(self.base + 4, self.count - 1)
