"""Benchmark support: workload builders, sweep drivers, reporting."""

from repro.bench.harness import Experiment, Measurement, ratio
from repro.bench.workloads import (
    build_module_chain,
    build_module_fanout,
    make_shell,
)

__all__ = [
    "Experiment",
    "Measurement",
    "ratio",
    "build_module_chain",
    "build_module_fanout",
    "make_shell",
]
