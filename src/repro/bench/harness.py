"""Experiment bookkeeping and report formatting.

Each benchmark measures *simulated cycles* (the deterministic cost-model
clock) for the comparison the paper makes, and lets pytest-benchmark
time the simulation itself for regression tracking. The
:class:`Experiment` helper collects labelled measurements and renders
the table the paper's row would show.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.timing import Clock
from repro.util.tables import format_table


@dataclass
class Measurement:
    """One labelled observation (usually cycles, sometimes counts)."""

    label: str
    value: float
    unit: str = "cycles"
    detail: str = ""


@dataclass
class Experiment:
    """A named experiment accumulating measurements."""

    experiment_id: str
    title: str
    paper_claim: str
    measurements: List[Measurement] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, value: float, unit: str = "cycles",
            detail: str = "") -> Measurement:
        measurement = Measurement(label, value, unit, detail)
        self.measurements.append(measurement)
        return measurement

    def note(self, text: str) -> None:
        self.notes.append(text)

    def value(self, label: str) -> float:
        for measurement in self.measurements:
            if measurement.label == label:
                return measurement.value
        raise KeyError(label)

    def report(self) -> str:
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper: {self.paper_claim}",
        ]
        rows = [(m.label, _fmt(m.value), m.unit, m.detail)
                for m in self.measurements]
        lines.append(format_table(("measurement", "value", "unit", "notes"),
                                  rows))
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def print_report(self) -> None:
        print()
        print(self.report())


def write_bench_json(experiment: "Experiment",
                     wall_seconds: Optional[Dict[str, float]] = None,
                     directory: str = ".") -> str:
    """Persist *experiment* as ``BENCH_<id>.json`` in *directory*.

    Simulated measurements are deterministic; *wall_seconds* carries the
    host-timing numbers (baseline vs. optimized) that give successive
    runs of the same benchmark a wall-clock trajectory to compare.
    Returns the path written.
    """
    path = os.path.join(directory,
                        f"BENCH_{experiment.experiment_id}.json")
    document = {
        "experiment": experiment.experiment_id,
        "title": experiment.title,
        "paper_claim": experiment.paper_claim,
        "measurements": [
            {"label": m.label, "value": m.value, "unit": m.unit,
             "detail": m.detail}
            for m in experiment.measurements
        ],
        "wall_clock_seconds": dict(wall_seconds or {}),
        "notes": list(experiment.notes),
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio for speedup reporting."""
    if denominator == 0:
        return float("inf")
    return numerator / denominator


class CycleTimer:
    """Measure simulated-cycle intervals on a kernel clock."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._start: Optional[int] = None

    def __enter__(self) -> "CycleTimer":
        self._start = self.clock.snapshot()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = self.clock.snapshot() - self._start

    elapsed: int = 0


def categories_delta(clock: Clock, before: Dict[str, int]) -> Dict[str, int]:
    """Per-category cycle deltas since *before* (a by_category copy)."""
    return {
        key: clock.by_category.get(key, 0) - before.get(key, 0)
        for key in set(clock.by_category) | set(before)
    }


def _fmt(value: float) -> str:
    if value in (float("inf"), float("-inf")):
        return "inf"
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.2f}"
