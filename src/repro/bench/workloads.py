"""Synthetic module graphs for the linking experiments.

Two generators mirror the paper's stories:

* :func:`build_module_fanout` — a program with a huge "reachability
  graph" of external references (§3 Lazy Dynamic Linking): W dynamic
  public modules, each depending on a helper module found via its own
  search path. A run touches only the first *used* entry points, so
  lazy linking should do work proportional to *used*, eager to W.
* :func:`build_module_chain` — the recursive inclusion chain of
  Figure 2: module i's code calls into module i+1, discovered through
  scoped linking when module i is first touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hw.asm import assemble
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.linker.classes import SharingClass
from repro.linker.lds import Lds, LinkRequest, store_object
from repro.objfile.format import ObjectFile


def make_shell(kernel: Kernel, name: str = "shell") -> Process:
    """A native process used purely as a context for toolchain calls."""

    def body(_kernel, _proc):
        return
        yield  # pragma: no cover - makes the body a generator

    return kernel.create_native_process(name, body)


@dataclass
class ModuleGraph:
    """What a generator produced."""

    executable: ObjectFile
    module_dir: str
    width: int
    used: int


def _helper_source(index: int) -> str:
    return f"""
        .text
        .globl  helper_{index}
helper_{index}:
        li      v0, {100 + index}
        jr      ra
"""


def _module_source(index: int, module_dir: str,
                   calls: str = "") -> str:
    body = calls or f"        jal     helper_{index}\n"
    return f"""
        .searchdir {module_dir}
        .text
        .globl  func_{index}
func_{index}:
        addi    sp, sp, -8
        sw      ra, 0(sp)
{body}        addi    v0, v0, {index}
        lw      ra, 0(sp)
        addi    sp, sp, 8
        jr      ra
"""


def _main_source(used: int) -> str:
    calls = "".join(
        f"        jal     func_{index}\n"
        f"        add     s0, s0, v0\n"
        for index in range(used)
    )
    return f"""
        .text
        .globl  main
main:
        addi    sp, sp, -8
        sw      ra, 0(sp)
        move    s0, zero
{calls}        move    v0, s0
        lw      ra, 0(sp)
        addi    sp, sp, 8
        jr      ra
"""


def build_module_fanout(kernel: Kernel, shell: Process, width: int,
                        used: int, module_dir: str,
                        build_dir: str = "/opt/fanout") -> ModuleGraph:
    """W dynamic public modules + W helper modules; main uses *used*."""
    if used > width:
        raise ValueError("cannot use more modules than exist")
    kernel.vfs.makedirs(module_dir, shell.uid)
    kernel.vfs.makedirs(build_dir, shell.uid)

    requests: List[LinkRequest] = []
    for index in range(width):
        store_object(kernel, shell, f"{module_dir}/mod{index}.o",
                     assemble(_module_source(index, module_dir),
                              f"mod{index}.o"))
        store_object(kernel, shell, f"{module_dir}/helper_{index}.o",
                     assemble(_helper_source(index), f"helper_{index}.o"))
        requests.append(LinkRequest(f"mod{index}.o",
                                    SharingClass.DYNAMIC_PUBLIC))

    main_path = f"{build_dir}/main.o"
    store_object(kernel, shell, main_path,
                 assemble(_main_source(used), "main.o"))

    result = Lds(kernel).link(
        shell,
        [LinkRequest(main_path, SharingClass.STATIC_PRIVATE)] + requests,
        output=f"{build_dir}/main",
        search_dirs=[module_dir],
    )
    return ModuleGraph(result.executable, module_dir, width, used)


def fanout_expected_exit(used: int) -> int:
    """main's expected return: func_i returns helper_i() + i = 100 + 2i."""
    return sum(100 + 2 * index for index in range(used))


def build_module_chain(kernel: Kernel, shell: Process, depth: int,
                       module_dir: str,
                       build_dir: str = "/opt/chain") -> ModuleGraph:
    """A Figure 2 chain: func_0 -> func_1 -> ... -> func_{depth-1}."""
    if depth < 1:
        raise ValueError("chain depth must be >= 1")
    kernel.vfs.makedirs(module_dir, shell.uid)
    kernel.vfs.makedirs(build_dir, shell.uid)

    for index in range(depth):
        if index == depth - 1:
            calls = "        li      v0, 1000\n"
        else:
            calls = f"        jal     func_{index + 1}\n"
        store_object(kernel, shell, f"{module_dir}/chain{index}.o",
                     assemble(_module_source(index, module_dir,
                                             calls=calls),
                              f"chain{index}.o"))

    main_path = f"{build_dir}/main.o"
    store_object(kernel, shell, main_path,
                 assemble(_main_source(1), "main.o"))

    result = Lds(kernel).link(
        shell,
        [LinkRequest(main_path, SharingClass.STATIC_PRIVATE),
         LinkRequest("chain0.o", SharingClass.DYNAMIC_PUBLIC)],
        output=f"{build_dir}/main",
        search_dirs=[module_dir],
    )
    return ModuleGraph(result.executable, module_dir, depth, 1)


def chain_expected_exit(depth: int) -> int:
    """main's expected return for a chain of *depth* modules."""
    return 1000 + sum(range(depth))
