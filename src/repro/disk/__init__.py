"""repro.disk — the durable block store.

A simulated block device with a deterministic write-reordering window
(:mod:`repro.disk.blockdev`), a write-ahead metadata journal every
mutating FS/SFS operation flows through (:mod:`repro.disk.journal`),
whole-volume checkpoint images (:mod:`repro.disk.image`), boot-time
crash recovery that replays committed transactions, discards torn
tails, and rebuilds the kernel's addr↔inode table
(:mod:`repro.disk.mount`), the ``reprofsck`` consistency checker
(:mod:`repro.disk.fsck`), and the crash-at-every-record matrix
(:mod:`repro.disk.crash`). See DESIGN.md §9.

Boot with a device to make the machine durable::

    from repro import boot
    from repro.disk import BlockDevice

    device = BlockDevice()
    system = boot(disk=device)          # blank device: formatted
    system.vfs.write_whole("/shared/seg", b"...")
    system.kernel.shutdown()            # clean checkpoint

    system2 = boot(disk=device.reopen())   # recovers; segments persist
"""

from repro.disk.ambient import (
    CAMPAIGN,
    attach_kernel,
    cancel_durable,
    request_durable,
)
from repro.disk.blockdev import BLOCK_SIZE, DEFAULT_BLOCKS, BlockDevice
from repro.disk.crash import (
    CrashMatrix,
    CrashPoint,
    run_crash_matrix,
    run_crash_point,
    scripted_workload,
    verify_segments,
)
from repro.disk.fsck import FsckResult, FsckStats, fsck, fsck_image
from repro.disk.journal import Journal, scan_journal
from repro.disk.mount import DiskStore, RecoveryStats

__all__ = [
    "BLOCK_SIZE",
    "BlockDevice",
    "CAMPAIGN",
    "CrashMatrix",
    "CrashPoint",
    "DEFAULT_BLOCKS",
    "DiskStore",
    "FsckResult",
    "FsckStats",
    "Journal",
    "RecoveryStats",
    "attach_kernel",
    "cancel_durable",
    "fsck",
    "fsck_image",
    "request_durable",
    "run_crash_matrix",
    "run_crash_point",
    "scan_journal",
    "scripted_workload",
    "verify_segments",
]
