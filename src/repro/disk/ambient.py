"""Ambient durable-store arming (the ``reprochaos --crash`` hook).

Mirrors :mod:`repro.inject.injector`'s campaign pattern: a host-side
driver arms a durable-store request, and every :class:`Kernel` booted
until cancellation gets a fresh, identically parameterized block device
mounted — so an unmodified example script becomes a crash-recovery
workload without editing a line of it. The devices are collected in
:data:`CAMPAIGN` so the driver can crash-test and remount each one
after the script finishes.
"""

from __future__ import annotations

from typing import List, Optional

_PENDING: Optional[dict] = None

#: DiskStores attached while armed, oldest first — the campaign record.
CAMPAIGN: List[object] = []


def request_durable(nblocks: int = 8192, seed: int = 0,
                    window: Optional[int] = None) -> None:
    """Arm a durable store for every kernel booted until
    :func:`cancel_durable`. Each boot gets a fresh device with the same
    geometry and seed (reruns are bit-identical)."""
    global _PENDING
    _PENDING = {"nblocks": nblocks, "seed": seed, "window": window}
    CAMPAIGN.clear()


def cancel_durable() -> None:
    """Disarm :func:`request_durable` (mounted stores stay mounted)."""
    global _PENDING
    _PENDING = None


def attach_kernel(kernel) -> None:
    """Called from ``Kernel.__init__`` on disk-less boots: honour an
    armed request by formatting and mounting a fresh device."""
    if _PENDING is None:
        return
    from repro.disk.blockdev import DEFAULT_WINDOW, BlockDevice
    from repro.disk.mount import DiskStore

    window = _PENDING["window"]
    device = BlockDevice(
        nblocks=_PENDING["nblocks"], seed=_PENDING["seed"],
        name=f"disk{len(CAMPAIGN)}",
        window=DEFAULT_WINDOW if window is None else window,
    )
    store = DiskStore.attach(kernel, device)
    kernel.disk = store
    kernel.recovery = store.recovery
    CAMPAIGN.append(store)
