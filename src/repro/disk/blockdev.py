"""A simulated block device with a deterministic write-reordering window.

The device is the durability boundary of the whole ``repro.disk``
subsystem: bytes are *durable* only once they leave the pending window,
either by aging out (the window holds at most ``window`` block writes)
or through an explicit :meth:`barrier`. A crash — injected through the
``DISK`` plane's crash-at-record kind, or called directly — resolves the
pending window with the device's seeded RNG: each pending write
independently persists or vanishes, and the newest surviving write may
be torn mid-block. That models a real disk's freedom to reorder and
partially apply cached writes, while staying bit-reproducible per seed
(rr's requirement that recovery paths be replayable for debugging).

The journal layered on top (:mod:`repro.disk.journal`) turns this
adversarial device into a crash-consistent store by placing barriers
between data/op records and the commit record.

Devices serialize to host files (``save``/``load``) so ``reprofsck``
can examine an image out-of-process.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import DiskCrashedError, DiskError
from repro.util.rng import DeterministicRng

BLOCK_SIZE = 512
DEFAULT_BLOCKS = 32768          # 16 MiB
DEFAULT_WINDOW = 8              # pending block writes before auto-flush

#: Host-file header: magic, version, block size, block count.
_HOST_HEADER = struct.Struct(">8sIII")
_HOST_MAGIC = b"HMLKDSK1"


class BlockDevice:
    """Fixed-geometry block store with bounded, crash-lossy caching."""

    def __init__(self, nblocks: int = DEFAULT_BLOCKS,
                 block_size: int = BLOCK_SIZE, name: str = "disk0",
                 seed: int = 0, window: int = DEFAULT_WINDOW,
                 record_history: bool = False) -> None:
        if nblocks < 16:
            raise DiskError("device too small (need at least 16 blocks)")
        self.nblocks = nblocks
        self.block_size = block_size
        self.name = name
        self.seed = seed
        self.window = max(window, 0)
        self.crashed = False
        self.injector = None  # set by repro.inject.install_injector
        # Durable content; missing index = zero block.
        self._blocks: Dict[int, bytes] = {}
        # The reorder window: ordered, acknowledged, not yet durable.
        self._pending: List[Tuple[int, bytes]] = []
        self._rng = DeterministicRng(seed or 0xD15C_0001)
        # Counters (observability + tests).
        self.reads = 0
        self.writes = 0
        self.barriers = 0
        self.dropped_writes = 0   # writes ignored post-crash or injected
        self.torn_writes = 0
        # Optional append-only write log for crash-prefix properties.
        self.history: Optional[List[Tuple[int, bytes]]] = \
            [] if record_history else None

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.nblocks:
            raise DiskError(
                f"block {index} out of range (device has {self.nblocks})"
            )

    def write(self, index: int, data: bytes) -> None:
        """Write one block (short data is zero-padded). Acknowledged
        writes sit in the reorder window until a barrier or age-out."""
        self._check_index(index)
        if len(data) > self.block_size:
            raise DiskError(
                f"write of {len(data)} bytes exceeds block size "
                f"{self.block_size}"
            )
        if self.crashed:
            # Power is off: the write is silently lost, exactly like a
            # store to a dead disk. Callers keep running; nothing more
            # persists. The remount sees the state at the crash point.
            self.dropped_writes += 1
            return
        block = bytes(data).ljust(self.block_size, b"\0")
        injector = self.injector
        if injector is not None:
            block, action = injector.filter_disk_write(
                f"{self.name}:{index}", block)
            if action == "drop":
                self.dropped_writes += 1
                return
            if action == "crash":
                self.crash()
                return
            if len(block) < self.block_size:
                # Torn block: the prefix lands over the old contents.
                self.torn_writes += 1
                block = block + self._read_durable(index)[len(block):]
        self.writes += 1
        if self.history is not None:
            self.history.append((index, block))
        self._pending.append((index, block))
        while len(self._pending) > self.window:
            old_index, old_block = self._pending.pop(0)
            self._blocks[old_index] = old_block

    def _read_durable(self, index: int) -> bytes:
        return self._blocks.get(index, b"\0" * self.block_size)

    def read(self, index: int) -> bytes:
        """Read one block; sees pending (acknowledged) writes."""
        self._check_index(index)
        self.reads += 1
        block = None
        for pend_index, pend_block in reversed(self._pending):
            if pend_index == index:
                block = pend_block
                break
        if block is None:
            block = self._read_durable(index)
        injector = self.injector
        if injector is not None:
            block = injector.filter_disk_read(f"{self.name}:{index}",
                                              block)
        return block

    def barrier(self) -> None:
        """Flush the reorder window: everything acknowledged so far is
        durable before any later write can be."""
        if self.crashed:
            return
        self.barriers += 1
        for index, block in self._pending:
            self._blocks[index] = block
        self._pending.clear()

    # ------------------------------------------------------------------
    # crash semantics
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power loss. Each write in the reorder window independently
        persists or vanishes (seeded RNG), the newest survivor may be
        torn; every write after this point is silently dropped."""
        if self.crashed:
            return
        survivors = [pair for pair in self._pending
                     if self._rng.random() < 0.5]
        if survivors:
            index, block = survivors[-1]
            keep = self._rng.randint(0, self.block_size)
            if keep < self.block_size:
                self.torn_writes += 1
                survivors[-1] = (
                    index, block[:keep] + self._read_durable(index)[keep:]
                )
        for index, block in survivors:
            self._blocks[index] = block
        self.dropped_writes += len(self._pending) - len(survivors)
        self._pending.clear()
        self.crashed = True

    def reopen(self, seed: Optional[int] = None) -> "BlockDevice":
        """A fresh powered-on device over this device's durable state —
        what the next boot mounts after a crash or clean shutdown."""
        clone = BlockDevice(self.nblocks, self.block_size, self.name,
                            seed if seed is not None else self.seed,
                            self.window)
        clone._blocks = dict(self._blocks)
        for index, block in self._pending:
            # An un-crashed reopen (clean handover) keeps acknowledged
            # writes; a crashed device has an empty pending list.
            clone._blocks[index] = block
        return clone

    def state_after(self, nwrites: int) -> "BlockDevice":
        """A device holding only the first *nwrites* issued writes
        (requires ``record_history=True``): the canonical crash-prefix
        states the Hypothesis recovery property quantifies over."""
        if self.history is None:
            raise DiskError("device was not recording write history")
        clone = BlockDevice(self.nblocks, self.block_size, self.name,
                            self.seed, self.window)
        for index, block in self.history[:nwrites]:
            clone._blocks[index] = block
        return clone

    # ------------------------------------------------------------------
    # host-file persistence (reprofsck's input)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the durable state (pending writes excluded — they
        are not durable) to a compressed host-side image."""
        raw = bytearray(self.nblocks * self.block_size)
        for index, block in sorted(self._blocks.items()):
            raw[index * self.block_size:(index + 1) * self.block_size] \
                = block
        return _HOST_HEADER.pack(_HOST_MAGIC, 1, self.block_size,
                                 self.nblocks) + zlib.compress(bytes(raw))

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "disk0",
                   seed: int = 0) -> "BlockDevice":
        if len(data) < _HOST_HEADER.size:
            raise DiskError("not a device image (too short)")
        magic, version, block_size, nblocks = \
            _HOST_HEADER.unpack_from(data)
        if magic != _HOST_MAGIC:
            raise DiskError(f"not a device image (magic {magic!r})")
        if version != 1:
            raise DiskError(f"unsupported device image version {version}")
        raw = zlib.decompress(data[_HOST_HEADER.size:])
        if len(raw) != nblocks * block_size:
            raise DiskError("device image length disagrees with header")
        device = cls(nblocks, block_size, name=name, seed=seed)
        zero = b"\0" * block_size
        for index in range(nblocks):
            block = raw[index * block_size:(index + 1) * block_size]
            if block != zero:
                device._blocks[index] = block
        return device

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path: str, name: Optional[str] = None,
             seed: int = 0) -> "BlockDevice":
        with open(path, "rb") as handle:
            data = handle.read()
        return cls.from_bytes(
            data, name=name or path.rsplit("/", 1)[-1], seed=seed)

    # ------------------------------------------------------------------

    def require_alive(self) -> None:
        """Raise if the device has crashed (used by mount paths that
        must not run against a dead disk)."""
        if self.crashed:
            raise DiskCrashedError(
                f"device {self.name!r} has crashed; reopen() it"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "ok"
        return (f"<BlockDevice {self.name} {self.nblocks}x"
                f"{self.block_size} {state} writes={self.writes}>")
