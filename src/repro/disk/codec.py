"""A tiny deterministic binary codec for on-disk structures.

The journal and the checkpoint image both need a binary-safe,
byte-stable encoding of heterogeneous field tuples (ints, strings, raw
file bytes, nested lists). JSON cannot carry raw bytes and pickle is not
byte-stable across interpreter versions, so records use a minimal TLV
scheme: one type byte per field, then a fixed-width value or a
length-prefixed payload. Identical inputs encode to identical bytes on
every platform — the property the crash matrix's bit-identical-replay
assertions rest on.

Field types:

* ``I`` — signed 64-bit big-endian integer;
* ``S`` — UTF-8 string, 4-byte length prefix;
* ``B`` — raw bytes, 4-byte length prefix;
* ``N`` — None;
* ``L`` — list of fields, 4-byte count prefix, fields nested.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import DiskFormatError

_INT = struct.Struct(">q")
_LEN = struct.Struct(">I")


def encode_fields(fields) -> bytes:
    """Encode a sequence of fields to bytes."""
    out = bytearray()
    _encode_into(out, fields)
    return bytes(out)


def _encode_into(out: bytearray, fields) -> None:
    for field in fields:
        if field is None:
            out += b"N"
        elif isinstance(field, bool):
            # bool is an int subclass; normalize so decode returns int.
            out += b"I" + _INT.pack(int(field))
        elif isinstance(field, int):
            out += b"I" + _INT.pack(field)
        elif isinstance(field, str):
            raw = field.encode("utf-8")
            out += b"S" + _LEN.pack(len(raw)) + raw
        elif isinstance(field, (bytes, bytearray, memoryview)):
            raw = bytes(field)
            out += b"B" + _LEN.pack(len(raw)) + raw
        elif isinstance(field, (list, tuple)):
            out += b"L" + _LEN.pack(len(field))
            _encode_into(out, field)
        else:
            raise DiskFormatError(
                f"cannot encode field of type {type(field).__name__}"
            )


def decode_fields(data: bytes) -> List[object]:
    """Decode bytes produced by :func:`encode_fields`."""
    fields, offset = _decode_count(data, 0, count=None)
    if offset != len(data):
        raise DiskFormatError(
            f"trailing garbage after field {len(fields)} "
            f"(offset {offset} of {len(data)})"
        )
    return fields


def _decode_count(data: bytes, offset: int,
                  count) -> Tuple[List[object], int]:
    fields: List[object] = []
    while (count is None and offset < len(data)) \
            or (count is not None and len(fields) < count):
        if offset >= len(data):
            raise DiskFormatError("truncated field stream")
        tag = data[offset:offset + 1]
        offset += 1
        if tag == b"N":
            fields.append(None)
        elif tag == b"I":
            if offset + 8 > len(data):
                raise DiskFormatError("truncated integer field")
            fields.append(_INT.unpack_from(data, offset)[0])
            offset += 8
        elif tag in (b"S", b"B"):
            if offset + 4 > len(data):
                raise DiskFormatError("truncated length prefix")
            length = _LEN.unpack_from(data, offset)[0]
            offset += 4
            if offset + length > len(data):
                raise DiskFormatError("truncated payload")
            raw = data[offset:offset + length]
            offset += length
            fields.append(raw.decode("utf-8") if tag == b"S" else raw)
        elif tag == b"L":
            if offset + 4 > len(data):
                raise DiskFormatError("truncated list prefix")
            nested_count = _LEN.unpack_from(data, offset)[0]
            offset += 4
            nested, offset = _decode_count(data, offset, nested_count)
            fields.append(nested)
        else:
            raise DiskFormatError(f"unknown field tag {tag!r}")
    return fields, offset
