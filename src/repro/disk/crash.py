"""The crash matrix: power-fail at *every* journal record boundary.

The strongest claim ``repro.disk`` makes is not "recovery usually
works" but "there is **no** record boundary at which a crash loses
consistency". This module makes that claim executable:

1. a baseline run of a scripted workload (~50+ metadata operations over
   both volumes, including a rename over an existing destination)
   counts the journal records it writes, N;
2. for each k in 1..N, a fresh identically-seeded boot runs the same
   workload with a ``DISK``-plane CRASH plan armed to fire at the k-th
   record — power dies mid-write, the device's pending-write window
   resolves under its seed, and the rest of the workload runs against
   a dead disk (writes silently lost, exactly like hardware);
3. the surviving image is checked by ``reprofsck`` (zero findings
   required — a torn tail is designed behaviour, not damage), then
   remounted: recovery must replay the committed prefix, and every
   public segment that survived must reopen *by address* through the
   real ``open_by_addr`` syscall with intact contents;
4. each point's :class:`RecoveryStats.trail` is captured so a second
   identical run can assert bit-identical recovery, record for record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.disk.blockdev import BlockDevice
from repro.disk.fsck import fsck
from repro.errors import SimulationError
from repro.inject import (
    FaultKind,
    FaultPlan,
    Plane,
    cancel_injection,
    request_injection,
)

DEFAULT_SEED = 0x1993
DEFAULT_NBLOCKS = 2048


def scripted_workload(kernel) -> int:
    """50+ journaled metadata operations across both volumes.

    Exercises every journaled op: create, write, truncate, mkdir,
    rmdir, symlink, link (root volume only), unlink, rename — including
    the rename-over-existing-destination case whose atomicity the
    journal's nested-transaction rule guarantees. Returns the number of
    VFS calls made (each is one or two journal transactions).
    """
    vfs = kernel.vfs
    calls = 0

    def did() -> None:
        nonlocal calls
        calls += 1

    # --- root volume: logs with rotation ------------------------------
    vfs.makedirs("/var/tmp"); did()
    for i in range(6):
        vfs.write_whole(f"/var/tmp/log{i}",
                        f"host-log-{i}\n".encode() * (i + 1)); did()
    vfs.link("/var/tmp/log0", "/var/tmp/log0.hard"); did()
    vfs.rename("/var/tmp/log1", "/var/tmp/rotated"); did()
    vfs.rename("/var/tmp/log2", "/var/tmp/rotated"); did()  # overwrite
    vfs.unlink("/var/tmp/log3"); did()
    vfs.write_whole("/var/tmp/log4", b"rewritten\n"); did()

    # --- shared volume: segments moved between directories ------------
    vfs.makedirs("/shared/data/a"); did()
    vfs.mkdir("/shared/data/b"); did()
    for i in range(10):
        vfs.write_whole(f"/shared/data/a/seg{i}",
                        bytes([0x40 + i]) * (192 + 64 * i)); did()
    vfs.symlink("data/a/seg9", "/shared/latest"); did()
    for i in range(0, 10, 2):
        vfs.rename(f"/shared/data/a/seg{i}",
                   f"/shared/data/b/seg{i}"); did()
    # Rename over an existing destination on the shared volume too.
    vfs.rename("/shared/data/a/seg1", "/shared/data/b/seg0"); did()
    vfs.unlink("/shared/data/a/seg3"); did()
    vfs.write_whole("/shared/data/b/seg2", b"updated"); did()
    vfs.mkdir("/shared/data/scratch"); did()
    vfs.rmdir("/shared/data/scratch"); did()
    vfs.rename("/shared/data/a/seg5", "/shared/data/seg5"); did()
    vfs.unlink("/shared/latest"); did()
    vfs.symlink("data/b/seg0", "/shared/latest"); did()
    return calls


def verify_segments(kernel) -> List[str]:
    """Reopen every public segment by its address through the real
    ``open_by_addr`` syscall; return a list of failures (ideally [])."""

    def _probe_body(_kernel, _proc):
        yield

    proc = kernel.create_native_process("fsck-probe", _probe_body)
    failures: List[str] = []
    sfs = kernel.sfs
    syscalls = kernel.syscalls
    for path, inode in sfs.segments():
        address = sfs.address_of_inode(inode.number)
        expect = kernel.sfs_mount + path
        try:
            got_path, offset = syscalls.addr_to_path(proc, address)
            fd = syscalls.open_by_address(proc, address)
            data = syscalls.read(proc, fd, inode.size + 1)
            syscalls.close(proc, fd)
        except SimulationError as error:
            failures.append(f"{expect}: {type(error).__name__}: {error}")
            continue
        if got_path != expect or offset != 0:
            failures.append(
                f"{expect}: addr 0x{address:x} resolved to "
                f"{got_path!r}+{offset}")
        elif data != inode.memobj.read(0, inode.size):
            failures.append(f"{expect}: contents differ when reopened "
                            f"by address")
    return failures


@dataclass
class CrashPoint:
    """One cell of the matrix: crash at record *k*, then recover."""

    record: int
    crashed: bool
    findings: List[str]
    seg_failures: List[str]
    replayed_txns: int
    discarded_records: int
    segments: int
    trail: Tuple[tuple, ...]

    @property
    def clean(self) -> bool:
        return not self.findings and not self.seg_failures


@dataclass
class CrashMatrix:
    total_records: int
    points: List[CrashPoint] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(p.clean for p in self.points)

    def failures(self) -> List[str]:
        out = []
        for point in self.points:
            for text in point.findings:
                out.append(f"record {point.record}: fsck: {text}")
            for text in point.seg_failures:
                out.append(f"record {point.record}: segment: {text}")
        return out


def run_baseline(seed: int = DEFAULT_SEED,
                 nblocks: int = DEFAULT_NBLOCKS,
                 workload: Callable = scripted_workload
                 ) -> Tuple[BlockDevice, int]:
    """One uncrashed run; returns (device, journal records written)."""
    from repro import boot

    device = BlockDevice(nblocks=nblocks, seed=seed)
    system = boot(disk=device)
    workload(system.kernel)
    records = system.kernel.disk.journal.records_written
    system.kernel.shutdown()
    return device, records


def run_crash_point(k: int, seed: int = DEFAULT_SEED,
                    nblocks: int = DEFAULT_NBLOCKS,
                    workload: Callable = scripted_workload) -> CrashPoint:
    """Crash at the k-th journal record, remount, verify everything."""
    from repro import boot

    plan = FaultPlan(Plane.DISK, FaultKind.CRASH, site="journal-*",
                     after=k - 1, max_faults=1)
    device = BlockDevice(nblocks=nblocks, seed=seed)
    request_injection([plan], seed=seed)
    try:
        system = boot(disk=device)
        try:
            workload(system.kernel)
        except SimulationError:
            pass  # post-crash op surfaced an error; acceptable
        system.kernel.shutdown()
    finally:
        cancel_injection()
    survivor = device.reopen()
    check = fsck(survivor, subject=f"crash@{k}")
    system2 = boot(disk=survivor)
    recovery = system2.kernel.recovery
    seg_failures = verify_segments(system2.kernel)
    system2.kernel.shutdown()
    return CrashPoint(
        record=k,
        crashed=device.crashed,
        findings=[str(f) for f in check.report],
        seg_failures=seg_failures,
        replayed_txns=recovery.replayed_txns,
        discarded_records=recovery.discarded_records,
        segments=recovery.addrmap_segments,
        trail=tuple(recovery.trail),
    )


def run_crash_matrix(seed: int = DEFAULT_SEED,
                     nblocks: int = DEFAULT_NBLOCKS,
                     stride: int = 1,
                     max_points: Optional[int] = None,
                     workload: Callable = scripted_workload
                     ) -> CrashMatrix:
    """Crash at every stride-th record boundary of the workload."""
    _device, total = run_baseline(seed, nblocks, workload)
    ks = list(range(1, total + 1, max(stride, 1)))
    if max_points is not None and len(ks) > max_points:
        step = len(ks) / max_points
        ks = [ks[int(i * step)] for i in range(max_points)]
    matrix = CrashMatrix(total_records=total)
    for k in ks:
        matrix.points.append(
            run_crash_point(k, seed=seed, nblocks=nblocks,
                            workload=workload))
    return matrix
