"""``reprofsck``: the offline disk-image consistency checker.

Read-only: the checker reconstructs the image's state in *scratch*
volumes (never the mounted kernel's) and reports findings with stable
``DSK###`` codes from the shared :mod:`repro.analyze.report` catalogue.
A healthy image — including one produced by a crash at any journal
record boundary — yields an empty report: a torn journal tail is the
*designed* crash outcome and is surfaced through :class:`FsckStats`,
not as a finding. Findings mean actual damage: checksum failures,
structural violations, or disagreement between the kernel's stored
address map and the SFS inode table it was derived from (§3's
boot-time rebuild exists precisely because the map must be
reconstructible from — and therefore consistent with — the inodes).

Checks, in order (later phases are skipped when earlier ones fail):

1. superblock validity + geometry (DSK001, DSK002);
2. checkpoint decodability and checksum (DSK003);
3. journal structure: mid-stream damage vs honest torn tail (DSK004),
   ops outside their transaction (DSK005);
4. replay of committed transactions onto the scratch tree (DSK006);
5. tree invariants: dangling dirents (DSK010), link counts (DSK011),
   orphans (DSK012), empty symlinks (DSK013);
6. shared-volume invariants: limits (DSK020) and the stored
   address-map ↔ inode cross-checks (DSK021–DSK024).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analyze.report import Report, finding
from repro.disk.blockdev import BlockDevice
from repro.disk.image import decode_checkpoint, restore_volume
from repro.disk.journal import scan_journal
from repro.disk.mount import (
    VOLUME_KEYS,
    apply_journal_op,
    read_checkpoint_blob,
    read_superblock,
)
from repro.errors import DiskFormatError, FsckError, SimulationError
from repro.fs.filesystem import Filesystem
from repro.vm.pages import PhysicalMemory


@dataclass
class FsckStats:
    """Non-finding observations (a torn tail is normal after a crash)."""

    generation: int = 0
    applied_txid: int = 0
    committed_txns: int = 0
    replayed_txns: int = 0
    discarded_records: int = 0
    inodes: Dict[str, int] = field(default_factory=dict)
    segments: int = 0


@dataclass
class FsckResult:
    report: Report
    stats: FsckStats

    def __iter__(self):
        return iter(self.report)

    def __len__(self) -> int:
        return len(self.report)

    def raise_if_findings(self) -> None:
        if len(self.report):
            raise FsckError([str(f) for f in self.report],
                            subject=self.report.subject)


def _scratch_volume(kind: str, name: str) -> Filesystem:
    physmem = PhysicalMemory()
    if kind == "sfs":
        from repro.sfs.sharedfs import SharedFilesystem

        return SharedFilesystem(physmem, name=name)
    if kind == "sfs64":
        from repro.sfs.sfs64 import SharedFilesystem64

        return SharedFilesystem64(physmem, name=name)
    return Filesystem(physmem, name=name)


def fsck(device: BlockDevice, subject: str = "") -> FsckResult:
    """Check *device* and return findings + stats. Read-only."""
    report = Report(subject or device.name)
    stats = FsckStats()

    super_fields = read_superblock(device, 0)
    used_backup = False
    if super_fields is None:
        backup_index = device.nblocks - 1
        super_fields = read_superblock(device, backup_index)
        used_backup = True
    if super_fields is None:
        report.add(finding("DSK001", device.name,
                           "primary and backup superblocks both invalid"))
        return FsckResult(report, stats)
    if used_backup:
        report.add(finding("DSK002", device.name,
                           "primary superblock invalid; used the backup"))
    if super_fields["block_size"] != device.block_size \
            or super_fields["nblocks"] != device.nblocks \
            or not (0 < super_fields["journal_start"]
                    <= super_fields["slot_a"]
                    < super_fields["slot_b"] < device.nblocks):
        report.add(finding("DSK001", device.name,
                           "superblock geometry disagrees with the "
                           "device"))
        return FsckResult(report, stats)
    stats.generation = super_fields["generation"]
    stats.applied_txid = super_fields["applied_txid"]

    try:
        blob = read_checkpoint_blob(device, super_fields)
        applied, records = decode_checkpoint(blob)
    except DiskFormatError as error:
        report.add(finding("DSK003", device.name, str(error)))
        return FsckResult(report, stats)

    volumes: Dict[str, Filesystem] = {}
    stored_maps: Dict[str, Optional[list]] = {}
    for key in VOLUME_KEYS:
        record = records.get(key)
        if record is None:
            report.add(finding("DSK003", device.name,
                               f"checkpoint lacks volume {key!r}"))
            return FsckResult(report, stats)
        fs = _scratch_volume(record[0], f"{device.name}:{key}")
        try:
            stored_maps[key] = restore_volume(fs, record)
        except DiskFormatError as error:
            report.add(finding("DSK003", device.name,
                               f"volume {key!r}: {error}"))
            return FsckResult(report, stats)
        volumes[key] = fs

    # Cross-check the *stored* kernel address map against the inode
    # table at checkpoint time (before replay mutates the tree).
    _check_addrmap(report, volumes["sfs"], stored_maps["sfs"])

    scan = scan_journal(device, super_fields["journal_start"],
                        super_fields["journal_blocks"],
                        super_fields["generation"], deep=True)
    stats.committed_txns = len(scan.committed)
    stats.discarded_records = scan.discarded_records
    if scan.mid_corruption:
        report.add(finding(
            "DSK004", device.name,
            "a valid journal record exists beyond the tail — mid-stream "
            "damage, not a crash tear"))
    for violation in scan.malformed:
        report.add(finding("DSK005", device.name, violation))

    for txid, ops in scan.committed:
        if txid <= super_fields["applied_txid"]:
            continue
        for volume, op, args in ops:
            fs = volumes.get(volume)
            try:
                if fs is None:
                    raise DiskFormatError(
                        f"unknown volume {volume!r}")
                apply_journal_op(fs, op, args)
            except (SimulationError, ValueError, TypeError) as error:
                report.add(finding(
                    "DSK006", device.name,
                    f"txn {txid} op {op!r}: {error}"))
                return FsckResult(report, stats)
        stats.replayed_txns += 1

    for key, fs in volumes.items():
        stats.inodes[key] = fs.inode_count()
        _check_tree(report, fs)
    _check_sfs(report, volumes["sfs"], stats)
    return FsckResult(report, stats)


def fsck_image(path: str) -> FsckResult:
    """Check a saved device image file (the ``reprofsck`` CLI path)."""
    device = BlockDevice.load(path)
    return fsck(device, subject=path)


# ---------------------------------------------------------------------------
# invariant checks
# ---------------------------------------------------------------------------

def _check_tree(report: Report, fs: Filesystem) -> None:
    refs: Dict[int, int] = {fs.root.number: 1}  # the implicit mount ref
    subdirs: Dict[int, int] = {}
    for inode in fs.inodes():
        if not inode.is_dir:
            continue
        for name, child in inode.entries.items():
            if name in (".", ".."):
                continue
            if fs.inode_by_number(child.number) is not child:
                report.add(finding(
                    "DSK010", fs.name,
                    f"entry {name!r} in dir {inode.number} references "
                    f"missing inode {child.number}"))
                continue
            refs[child.number] = refs.get(child.number, 0) + 1
            if child.is_dir:
                subdirs[inode.number] = subdirs.get(inode.number, 0) + 1
    for inode in fs.inodes():
        if inode.is_dir:
            expected = 2 + subdirs.get(inode.number, 0)
        else:
            expected = refs.get(inode.number, 0)
        if inode.nlink != expected:
            report.add(finding(
                "DSK011", fs.name,
                f"inode {inode.number} has nlink {inode.nlink}, "
                f"directory tree implies {expected}"))
        if inode.is_symlink and not inode.symlink_target:
            report.add(finding(
                "DSK013", fs.name,
                f"symlink inode {inode.number} has no target"))
    reachable = {fs.root.number}
    fs.walk(lambda _path, inode: reachable.add(inode.number))
    for inode in fs.inodes():
        if inode.number not in reachable:
            report.add(finding(
                "DSK012", fs.name,
                f"inode {inode.number} ({inode.type.value}) is "
                f"unreachable from the root"))


def _check_addrmap(report: Report, sfs, stored: Optional[list]) -> None:
    """The stored kernel map vs the inode table it must mirror."""
    if stored is None:
        return
    stored_by_ino = {}
    for base, span, ino in stored:
        stored_by_ino[ino] = (base, span)
        if sfs.inode_by_number(ino) is None \
                or not sfs.inode_by_number(ino).is_file:
            report.add(finding(
                "DSK021", sfs.name,
                f"map entry 0x{base:x}+0x{span:x} names inode {ino}, "
                f"which is not a segment inode"))
    for inode in sfs.inodes():
        if not inode.is_file:
            continue
        entry = stored_by_ino.get(inode.number)
        if entry is None:
            report.add(finding(
                "DSK022", sfs.name,
                f"segment inode {inode.number} has no stored map entry"))
            continue
        base, _span = entry
        expected = sfs.address_of_inode(inode.number)
        if base != expected:
            report.add(finding(
                "DSK023", sfs.name,
                f"map places inode {inode.number} at 0x{base:x}, the "
                f"inode's address is 0x{expected:x}"))


def _check_sfs(report: Report, sfs, stats: FsckStats) -> None:
    from repro.sfs.sharedfs import (
        MAX_FILE_SIZE,
        MAX_INODES,
        SharedFilesystem,
    )
    narrow = isinstance(sfs, SharedFilesystem) \
        and not hasattr(sfs, "_cursor")
    ranges: List[tuple] = []
    for inode in sfs.inodes():
        if narrow and not 0 <= inode.number < MAX_INODES:
            report.add(finding(
                "DSK020", sfs.name,
                f"inode number {inode.number} outside the "
                f"{MAX_INODES}-inode volume"))
            continue
        if not inode.is_file:
            continue
        if narrow and inode.size > MAX_FILE_SIZE:
            report.add(finding(
                "DSK020", sfs.name,
                f"segment inode {inode.number} holds {inode.size} "
                f"bytes (limit {MAX_FILE_SIZE})"))
        span = getattr(inode, "segment_span", MAX_FILE_SIZE)
        base = sfs.address_of_inode(inode.number)
        ranges.append((base, span, inode.number))
        stats.segments += 1
    ranges.sort()
    for (base_a, span_a, ino_a), (base_b, _span_b, ino_b) \
            in zip(ranges, ranges[1:]):
        if base_a + span_a > base_b:
            report.add(finding(
                "DSK024", sfs.name,
                f"segments of inodes {ino_a} and {ino_b} overlap "
                f"(0x{base_a:x}+0x{span_a:x} vs 0x{base_b:x})"))


__all__ = ["fsck", "fsck_image", "FsckResult", "FsckStats"]
