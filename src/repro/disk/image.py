"""Checkpoint images: whole-volume serialization and in-place restore.

A checkpoint captures one volume — inode table, directory tree, file
bytes, symlinks, and the volume's allocator state — as a TLV field
tree (:mod:`repro.disk.codec`). Two things make the format more than a
dump:

* **allocator state is exact**: the 32-bit SFS stores its free-inode
  list in order and sfs64 stores its range allocator cursor and free
  list, so inode/address allocation after recovery continues precisely
  where the original run left off (bit-identical replay);
* **the SFS address map is stored**, even though it is derivable, so
  ``reprofsck`` can cross-check the kernel's map against the inode
  table — a map/table disagreement is exactly the corruption class the
  paper's boot-time rebuild exists to fix.

Restore is *in place*: the kernel's mounted ``Filesystem`` objects are
rebuilt rather than replaced, so the VFS mount table and every
``fs``-typed reference around the kernel stay valid across recovery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.disk.codec import encode_fields, decode_fields
from repro.errors import DiskFormatError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import Inode, InodeType
from repro.vm.pages import MemoryObject

IMAGE_VERSION = 1

_TYPE_TAGS = {InodeType.FILE: "f", InodeType.DIRECTORY: "d",
              InodeType.SYMLINK: "l"}
_TAG_TYPES = {tag: itype for itype, tag in _TYPE_TAGS.items()}


def volume_kind(fs: Filesystem) -> str:
    """'fs' | 'sfs' | 'sfs64' — decides which allocator fields exist."""
    from repro.sfs.sfs64 import SharedFilesystem64
    from repro.sfs.sharedfs import SharedFilesystem
    if isinstance(fs, SharedFilesystem64):
        return "sfs64"
    if isinstance(fs, SharedFilesystem):
        return "sfs"
    return "fs"


def serialize_volume(fs: Filesystem) -> list:
    """One volume as a nested field list (codec-encodable)."""
    kind = volume_kind(fs)
    inodes: List[list] = []
    for inode in sorted(fs.inodes(), key=lambda i: i.number):
        size = 0
        data = b""
        if inode.is_file:
            assert inode.memobj is not None
            size = inode.memobj.size
            # Trailing zeros restore implicitly via the size field, so
            # strip them — sparse files stay cheap on disk.
            data = inode.memobj.read(0, size).rstrip(b"\0")
        inodes.append([
            inode.number, _TYPE_TAGS[inode.type], inode.mode, inode.uid,
            inode.nlink, inode.symlink_target, size, data,
            getattr(inode, "segment_address", None),
            getattr(inode, "segment_span", None),
        ])
    dirents: List[list] = []
    for inode in sorted(fs.inodes(), key=lambda i: i.number):
        if not inode.is_dir:
            continue
        for name in sorted(inode.entries):
            if name in (".", ".."):
                continue
            dirents.append([inode.number, name,
                            inode.entries[name].number])
    alloc: Optional[list] = None
    addrmap: Optional[list] = None
    if kind == "sfs":
        alloc = [list(fs._free_inos)]
        addrmap = [list(entry) for entry in fs.addrmap.entries()]
    elif kind == "sfs64":
        flat: List[int] = []
        for base, span in fs._free_ranges:
            flat += [base, span]
        alloc = [fs._cursor, fs.default_reservation, flat]
        addrmap = [list(entry) for entry in fs.addrmap.entries()]
    return [kind, fs.name, fs.root.number, fs._next_ino, alloc,
            inodes, dirents, addrmap]


def restore_volume(fs: Filesystem, record: list) -> Optional[list]:
    """Rebuild *fs* in place from a :func:`serialize_volume` record.

    Returns the stored address-map entries (for cross-checking), or
    None for volumes without one.
    """
    try:
        (kind, name, root_ino, next_ino, alloc, inodes, dirents,
         addrmap) = record
    except ValueError:
        raise DiskFormatError("malformed volume record")
    if kind != volume_kind(fs):
        raise DiskFormatError(
            f"volume {name!r} is a {kind!r} image but the mounted "
            f"volume is {volume_kind(fs)!r}"
        )
    # Drop the current tree, releasing its frames.
    for inode in fs.inodes():
        if inode.memobj is not None:
            inode.memobj.free()
    fs._inodes.clear()
    fs._next_ino = next_ino
    if kind == "sfs":
        (free_inos,) = alloc
        fs._free_inos = list(free_inos)
    elif kind == "sfs64":
        cursor, default_reservation, flat = alloc
        fs._cursor = cursor
        fs.default_reservation = default_reservation
        fs._free_ranges = [(flat[i], flat[i + 1])
                           for i in range(0, len(flat), 2)]
    table: Dict[int, Inode] = {}
    for row in inodes:
        try:
            (ino, tag, mode, uid, nlink, symlink_target, size, data,
             seg_addr, seg_span) = row
            itype = _TAG_TYPES[tag]
        except (ValueError, KeyError):
            raise DiskFormatError("malformed inode row")
        memobj = None
        if itype is InodeType.FILE:
            memobj = MemoryObject(fs.physmem, 0, name=f"{name}:ino{ino}")
            if data:
                memobj.write(0, data)
            memobj.size = size
        inode = Inode(ino, itype, mode, uid, memobj)
        inode.nlink = nlink
        inode.symlink_target = symlink_target
        if seg_addr is not None:
            inode.segment_address = seg_addr
            inode.segment_span = seg_span
        table[ino] = inode
    if root_ino not in table or not table[root_ino].is_dir:
        raise DiskFormatError(f"volume {name!r} has no root directory")
    fs._inodes.update(table)
    root = table[root_ino]
    root.entries["."] = root
    root.entries[".."] = root
    for dir_ino, entry_name, child_ino in dirents:
        parent = table.get(dir_ino)
        child = table.get(child_ino)
        if parent is None or child is None or not parent.is_dir:
            raise DiskFormatError(
                f"dangling directory entry {entry_name!r} "
                f"({dir_ino} -> {child_ino})"
            )
        parent.entries[entry_name] = child
        if child.is_dir:
            child.entries["."] = child
            child.entries[".."] = parent
    fs.root = root
    if hasattr(fs, "rebuild_address_map"):
        fs.rebuild_address_map()
    fs._index_rebuild()
    return addrmap


def encode_checkpoint(volumes: Dict[str, Filesystem],
                      applied_txid: int) -> bytes:
    """Serialize every mounted volume into one checkpoint blob."""
    records = [[key] + [serialize_volume(fs)]
               for key, fs in sorted(volumes.items())]
    return encode_fields([IMAGE_VERSION, applied_txid, records])


def decode_checkpoint(blob: bytes):
    """(applied_txid, {volume_key: record}) from a checkpoint blob."""
    try:
        version, applied_txid, records = decode_fields(blob)
    except (ValueError, DiskFormatError) as error:
        raise DiskFormatError(f"undecodable checkpoint: {error}")
    if version != IMAGE_VERSION:
        raise DiskFormatError(
            f"unsupported checkpoint version {version}"
        )
    out = {}
    for row in records:
        try:
            key, record = row
        except ValueError:
            raise DiskFormatError("malformed checkpoint volume row")
        out[key] = record
    return applied_txid, out
