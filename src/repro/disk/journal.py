"""The write-ahead metadata journal.

Every mutating file-system operation flows through here as one
*transaction*: a ``BEGIN`` record, one ``OP`` record per logical
operation (create, unlink, rename, write, ...), a **barrier** — so the
operation payload (including file data) is durable strictly before —
then a ``COMMIT`` record and a final barrier. Recovery replays
committed transactions in order and discards the torn tail: a crash
between records loses at most the uncommitted transaction, never
half of one.

Record layout (block-aligned; a record spans consecutive blocks)::

    +----------------------------- 36-byte header ----------------------+
    | magic 'HJRN' | type B | pad | gen H | txid Q | seq Q | plen I |   |
    | payload crc32 I | header crc32 I                                  |
    +--------------------------------------------------------------------+
    | payload (OP records: TLV-encoded [volume, op, args...])           |
    +--------------------------------------------------------------------+

``gen`` is the journal generation: each checkpoint bumps it, so stale
records from the previous generation — still physically present in the
ring — are ignored by the scan. ``seq`` numbers records within a
generation; a gap or repeat ends the valid prefix.

Nesting: a transaction opened inside another transaction is absorbed
into it, and only the *outermost* operation emits an OP record. That is
what makes ``rename`` over an existing destination atomic — its
internal unlink adds no record of its own, so recovery sees exactly one
RENAME to replay (which re-performs the unlink itself).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.disk.blockdev import BlockDevice
from repro.disk.codec import encode_fields, decode_fields
from repro.errors import DiskFormatError, DiskFullError
from repro.trace import tracer as _trace
from repro.trace.events import EventKind

MAGIC = b"HJRN"
REC_BEGIN = 1
REC_OP = 2
REC_COMMIT = 3

_HEADER = struct.Struct(">4sBxHQQII")
_HCRC = struct.Struct(">I")
HEADER_SIZE = _HEADER.size + _HCRC.size      # 36 bytes

_SITES = {REC_BEGIN: "journal-begin", REC_OP: "journal-op",
          REC_COMMIT: "journal-commit"}


def _pack_record(rtype: int, gen: int, txid: int, seq: int,
                 payload: bytes) -> bytes:
    head = _HEADER.pack(MAGIC, rtype, gen, txid, seq, len(payload),
                        zlib.crc32(payload))
    return head + _HCRC.pack(zlib.crc32(head)) + payload


@dataclass
class ScannedRecord:
    """One valid record met by the scan."""

    rtype: int
    txid: int
    seq: int
    block: int
    nblocks: int
    payload: bytes


@dataclass
class JournalScan:
    """The scan's verdict over one generation of the journal region."""

    records: List[ScannedRecord] = field(default_factory=list)
    #: Committed transactions, in commit order: (txid, [(vol, op, args)]).
    committed: List[Tuple[int, List[tuple]]] = field(default_factory=list)
    #: Records belonging to an unfinished transaction at the tail.
    discarded_records: int = 0
    #: txid of the transaction left open at the tail, if any.
    uncommitted_txid: Optional[int] = None
    #: Structural violations (op outside txn, double begin, ...).
    malformed: List[str] = field(default_factory=list)
    #: True when a valid same-generation record exists *after* the first
    #: invalid one — mid-stream corruption, not a legitimate torn tail.
    mid_corruption: bool = False
    #: Where the next record would be appended.
    next_block: int = 0
    next_seq: int = 0


def scan_journal(device: BlockDevice, start: int, nblocks: int,
                 generation: int, deep: bool = False) -> JournalScan:
    """Walk the journal region, collecting the valid record prefix.

    The scan stops at the first invalid record (torn tail). With
    ``deep=True`` (fsck) it keeps probing the region for a valid
    same-generation record beyond the tear, which would indicate
    mid-stream corruption rather than an honest crash.
    """
    scan = JournalScan()
    end = start + nblocks
    block = start
    seq = 0
    open_txid: Optional[int] = None
    open_ops: List[tuple] = []
    while block < end:
        record, span = _read_record(device, block, end, generation, seq)
        if record is None:
            break
        scan.records.append(record)
        if record.rtype == REC_BEGIN:
            if open_txid is not None:
                scan.malformed.append(
                    f"BEGIN txn {record.txid} inside open txn {open_txid}"
                )
            open_txid = record.txid
            open_ops = []
        elif record.rtype == REC_OP:
            if open_txid is None or record.txid != open_txid:
                scan.malformed.append(
                    f"OP record for txn {record.txid} outside its "
                    f"transaction"
                )
            else:
                try:
                    fields = decode_fields(record.payload)
                    volume, op = fields[0], fields[1]
                    open_ops.append((volume, op, fields[2:]))
                except (DiskFormatError, IndexError) as error:
                    scan.malformed.append(
                        f"undecodable OP payload in txn {record.txid}: "
                        f"{error}"
                    )
        elif record.rtype == REC_COMMIT:
            if open_txid is None or record.txid != open_txid:
                scan.malformed.append(
                    f"COMMIT for txn {record.txid} without its BEGIN"
                )
            else:
                scan.committed.append((open_txid, open_ops))
                open_txid = None
                open_ops = []
        block += span
        seq += 1
    if open_txid is not None:
        # The crash interrupted this transaction before COMMIT: its
        # records are discarded — the designed outcome, not damage.
        scan.discarded_records += 1 + len(open_ops)
        scan.uncommitted_txid = open_txid
    scan.next_block = block
    scan.next_seq = seq
    if deep and block < end:
        probe = block + 1
        while probe < end:
            record, _span = _read_record(device, probe, end, generation,
                                         None)
            if record is not None and record.seq > seq:
                scan.mid_corruption = True
                break
            probe += 1
    return scan


def _read_record(device: BlockDevice, block: int, end: int,
                 generation: int, expect_seq: Optional[int]):
    """Parse the record starting at *block*; (record, span) or (None, 0)."""
    raw = device.read(block)
    if raw[:4] != MAGIC:
        return None, 0
    try:
        magic, rtype, gen, txid, seq, plen, pcrc = _HEADER.unpack_from(raw)
        (hcrc,) = _HCRC.unpack_from(raw, _HEADER.size)
    except struct.error:
        return None, 0
    if zlib.crc32(raw[:_HEADER.size]) != hcrc:
        return None, 0
    if gen != generation or rtype not in _SITES:
        return None, 0
    if expect_seq is not None and seq != expect_seq:
        return None, 0
    span = (HEADER_SIZE + plen + device.block_size - 1) \
        // device.block_size
    if block + span > end:
        return None, 0
    payload = bytearray(raw[HEADER_SIZE:])
    for extra in range(1, span):
        payload += device.read(block + extra)
    payload = bytes(payload[:plen])
    if zlib.crc32(payload) != pcrc:
        return None, 0
    return ScannedRecord(rtype, txid, seq, block, span, payload), span


class _NullTxn:
    """The no-journal fast path: entering a transaction does nothing."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_TXN = _NullTxn()


class _Txn:
    def __init__(self, journal: "Journal") -> None:
        self.journal = journal

    def __enter__(self):
        self.journal._enter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.journal._exit(exc_type is None)
        return False


class Journal:
    """The append-side of the journal, bound to one device region."""

    def __init__(self, device: BlockDevice, start: int, nblocks: int,
                 generation: int = 1, next_txid: int = 1,
                 clock=None, cost_per_block: int = 120) -> None:
        self.device = device
        self.start = start
        self.nblocks = nblocks
        self.generation = generation
        self.next_txid = next_txid
        self.clock = clock
        self.cost_per_block = cost_per_block
        self.suspended = False
        #: Checkpoint callback armed by the DiskStore: invoked when the
        #: region cannot hold the next transaction.
        self.on_full: Optional[Callable[[], None]] = None
        self.records_written = 0
        self.txns_committed = 0
        self._head = start
        self._seq = 0
        self._depth = 0
        self._ops: List[Tuple[str, str, list]] = []

    # ------------------------------------------------------------------
    # transaction API (used by repro.fs.filesystem)
    # ------------------------------------------------------------------

    def transaction(self) -> _Txn:
        return _Txn(self)

    def _enter(self) -> None:
        self._depth += 1

    def _exit(self, ok: bool) -> None:
        self._depth -= 1
        if self._depth > 0:
            return
        ops, self._ops = self._ops, []
        if ok and ops and not self.suspended:
            self._commit(ops)

    def log(self, volume: str, op: str, fields: list) -> None:
        """Record one logical operation.

        Only the outermost operation of a nested group is recorded —
        inner mutations (rename's implicit unlink) are re-derived by
        replaying the outer op. A log outside any transaction gets an
        implicit single-op transaction.
        """
        if self.suspended:
            return
        if self._depth == 0:
            with self.transaction():
                self._ops.append((volume, op, fields))
            return
        if self._depth == 1:
            self._ops.append((volume, op, fields))

    # ------------------------------------------------------------------
    # record emission
    # ------------------------------------------------------------------

    def _commit(self, ops: List[Tuple[str, str, list]]) -> None:
        txid = self.next_txid
        self.next_txid += 1
        payloads = [encode_fields([volume, op] + list(fields))
                    for volume, op, fields in ops]
        total = self._record_span(0)  # BEGIN
        total += sum(self._record_span(len(p)) for p in payloads)
        total += self._record_span(0)  # COMMIT
        if self._head + total > self.start + self.nblocks:
            # The region cannot hold this transaction: checkpoint. The
            # in-memory state (which already includes these ops) is
            # captured wholesale, so the records need not be written.
            if self.on_full is None:
                raise DiskFullError(
                    f"journal region full ({self.nblocks} blocks) and "
                    f"no checkpoint handler armed"
                )
            self.on_full()
            if total > self.nblocks:
                raise DiskFullError(
                    f"transaction of {total} blocks exceeds the whole "
                    f"journal region ({self.nblocks} blocks)"
                )
            return
        subjects = [f"{volume}:{op}" for volume, op, _fields in ops]
        self._write_record(REC_BEGIN, txid, b"", f"txn{txid}")
        for payload, subject in zip(payloads, subjects):
            self._write_record(REC_OP, txid, payload, subject)
        self.device.barrier()   # ops (and their data) before commit
        self._write_record(REC_COMMIT, txid, b"", f"txn{txid}")
        self.device.barrier()   # commit durable before acknowledging
        self.txns_committed += 1

    def _record_span(self, payload_len: int) -> int:
        return (HEADER_SIZE + payload_len + self.device.block_size - 1) \
            // self.device.block_size

    def _write_record(self, rtype: int, txid: int, payload: bytes,
                      subject: str) -> None:
        site = _SITES[rtype]
        self.records_written += 1
        injector = self.device.injector
        if injector is not None and injector.on_disk_record(site, subject):
            # Crash-at-record: power dies as this record is written —
            # neither it nor anything after it persists.
            self.device.crash()
        record = _pack_record(rtype, self.generation, txid, self._seq,
                              payload)
        span = self._record_span(len(payload))
        size = self.device.block_size
        for index in range(span):
            self.device.write(self._head + index,
                              record[index * size:(index + 1) * size])
        self._head += span
        self._seq += 1
        if self.clock is not None:
            self.clock.charge("journal", span * self.cost_per_block)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.DISK, name=f"{site}:{subject}",
                        value=txid)

    # ------------------------------------------------------------------

    def reset(self, generation: int, next_txid: int) -> None:
        """Start a fresh generation (after a checkpoint)."""
        self.generation = generation
        self.next_txid = next_txid
        self._head = self.start
        self._seq = 0

    def resume(self, scan: JournalScan) -> None:
        """Continue appending after the scanned valid prefix."""
        self._head = scan.next_block
        self._seq = scan.next_seq
