"""Mounting the durable store: format, checkpoint, crash recovery.

On-disk geometry (fixed at format time, recorded in the superblock)::

    block 0                      primary superblock
    blocks 1 .. J                journal region (~half the device)
    blocks J+1 .. J+S            checkpoint slot A
    blocks J+S+1 .. J+2S         checkpoint slot B
    last block                   backup superblock

A *checkpoint* serializes every mounted volume into the inactive slot,
barriers, then flips both superblocks to point at it and bumps the
journal generation — so the flip is atomic (the old superblock stays
valid until the new one is durable) and every journal record written
before the checkpoint becomes stale by generation number, not by
erasure. The journal fills → checkpoint; clean shutdown → checkpoint;
recovery → checkpoint (leaving a freshly clean image).

Recovery (``DiskStore.recover``) is the boot path for a non-blank
device, crashed or not:

1. read the primary superblock, falling back to the backup;
2. restore every volume from the active checkpoint slot, in place;
3. scan the journal for this generation's valid record prefix,
   discarding the torn tail;
4. replay committed transactions beyond ``applied_txid`` through the
   ordinary file-system methods (journal suspended, inode numbers
   forced from the records);
5. rebuild the SFS address↔inode table from the recovered inodes —
   the paper's boot-time scan — so ``open_by_addr`` works across
   reboots;
6. checkpoint.

Every step lands in :class:`RecoveryStats.trail`, a compact record the
crash matrix compares across runs: recovery is required to be
bit-identical per seed.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.disk.blockdev import BlockDevice
from repro.disk.codec import encode_fields, decode_fields
from repro.disk.image import (
    decode_checkpoint,
    encode_checkpoint,
    restore_volume,
)
from repro.disk.journal import Journal, scan_journal
from repro.errors import DiskError, DiskFormatError, DiskFullError, \
    SimulationError
from repro.trace import tracer as _trace
from repro.trace.events import EventKind

SUPER_MAGIC = b"HDSK"
SUPER_VERSION = 1
_SUPER_HEAD = struct.Struct(">4sII")   # magic, payload len, payload crc

#: The volume keys a disk image stores. Order matters for restore (the
#: root volume first, then the shared volume).
VOLUME_KEYS = ("root", "sfs")


@dataclass
class Geometry:
    journal_start: int
    journal_blocks: int
    slot_starts: Tuple[int, int]
    slot_blocks: int
    backup_super: int


def compute_geometry(nblocks: int) -> Geometry:
    usable = nblocks - 2
    journal_blocks = usable // 2
    slot_blocks = (usable - journal_blocks) // 2
    if slot_blocks < 1:
        raise DiskError(f"device too small for a store ({nblocks} blocks)")
    slot_a = 1 + journal_blocks
    return Geometry(1, journal_blocks, (slot_a, slot_a + slot_blocks),
                    slot_blocks, nblocks - 1)


def pack_superblock(fields: dict, block_size: int) -> bytes:
    payload = encode_fields([
        SUPER_VERSION, fields["block_size"], fields["nblocks"],
        fields["journal_start"], fields["journal_blocks"],
        fields["slot_a"], fields["slot_b"], fields["slot_blocks"],
        fields["active_slot"], fields["generation"],
        fields["ckpt_len"], fields["ckpt_crc"],
        fields["applied_txid"], fields["next_txid"],
    ])
    block = _SUPER_HEAD.pack(SUPER_MAGIC, len(payload),
                             zlib.crc32(payload)) + payload
    if len(block) > block_size:
        raise DiskError("superblock does not fit in one block")
    return block


def read_superblock(device: BlockDevice, index: int) -> Optional[dict]:
    """Parse the superblock at *index*; None if invalid."""
    raw = device.read(index)
    if raw[:4] != SUPER_MAGIC:
        return None
    try:
        _magic, length, crc = _SUPER_HEAD.unpack_from(raw)
    except struct.error:
        return None
    payload = raw[_SUPER_HEAD.size:_SUPER_HEAD.size + length]
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        (version, block_size, nblocks, journal_start, journal_blocks,
         slot_a, slot_b, slot_blocks, active_slot, generation,
         ckpt_len, ckpt_crc, applied_txid, next_txid) = \
            decode_fields(payload)
    except (ValueError, DiskFormatError):
        return None
    if version != SUPER_VERSION:
        return None
    return {
        "block_size": block_size, "nblocks": nblocks,
        "journal_start": journal_start, "journal_blocks": journal_blocks,
        "slot_a": slot_a, "slot_b": slot_b, "slot_blocks": slot_blocks,
        "active_slot": active_slot, "generation": generation,
        "ckpt_len": ckpt_len, "ckpt_crc": ckpt_crc,
        "applied_txid": applied_txid, "next_txid": next_txid,
    }


def read_checkpoint_blob(device: BlockDevice, super_fields: dict
                         ) -> bytes:
    """The active slot's checkpoint blob (crc-verified)."""
    start = (super_fields["slot_a"], super_fields["slot_b"])[
        super_fields["active_slot"]]
    length = super_fields["ckpt_len"]
    nblocks = (length + device.block_size - 1) // device.block_size
    raw = bytearray()
    for index in range(nblocks):
        raw += device.read(start + index)
    blob = bytes(raw[:length])
    if zlib.crc32(blob) != super_fields["ckpt_crc"]:
        raise DiskFormatError("checkpoint blob fails its checksum")
    return blob


def apply_journal_op(fs, op: str, args: list) -> None:
    """Replay one logged operation through the ordinary FS methods
    (shared by mount-time recovery and fsck's scratch replay)."""
    def directory(ino):
        inode = fs.inode_by_number(ino)
        if inode is None:
            raise DiskFormatError(f"no inode {ino} on {fs.name!r}")
        return inode

    if op == "create":
        dir_ino, name, uid, mode, ino = args[:5]
        if len(args) > 5 and hasattr(fs, "reserving"):
            with fs.reserving(args[5]):
                fs.create_file(directory(dir_ino), name, uid, mode,
                               _ino=ino)
        else:
            fs.create_file(directory(dir_ino), name, uid, mode,
                           _ino=ino)
    elif op == "mkdir":
        dir_ino, name, uid, mode, ino = args
        fs.mkdir(directory(dir_ino), name, uid, mode, _ino=ino)
    elif op == "symlink":
        dir_ino, name, target, uid, ino = args
        fs.symlink(directory(dir_ino), name, target, uid, _ino=ino)
    elif op == "link":
        dir_ino, name, target_ino = args
        fs.link(directory(dir_ino), name, directory(target_ino))
    elif op == "unlink":
        dir_ino, name = args
        fs.unlink(directory(dir_ino), name)
    elif op == "rmdir":
        dir_ino, name = args
        fs.rmdir(directory(dir_ino), name)
    elif op == "rename":
        src_ino, src_name, dst_ino, dst_name = args
        fs.rename(directory(src_ino), src_name,
                  directory(dst_ino), dst_name)
    elif op == "write":
        ino, offset, data = args
        fs.write_file(directory(ino), offset, data)
    elif op == "truncate":
        ino, size = args
        fs.truncate_file(directory(ino), size)
    else:
        raise DiskFormatError(f"unknown journal op {op!r}")


@dataclass
class RecoveryStats:
    """What one mount's recovery did (surfaced via ``Kernel.stats()``)."""

    generation: int = 0
    applied_txid: int = 0
    clean: bool = True
    used_backup_superblock: bool = False
    replayed_txns: int = 0
    replayed_ops: int = 0
    discarded_records: int = 0
    uncommitted_txid: Optional[int] = None
    addrmap_segments: int = 0
    addrmap_mismatches: int = 0
    #: Compact deterministic log of every recovery step, compared
    #: bit-for-bit across runs by the crash matrix.
    trail: List[tuple] = field(default_factory=list)


class DiskStore:
    """One mounted durable store binding a kernel to a block device."""

    def __init__(self, kernel, device: BlockDevice) -> None:
        self.kernel = kernel
        self.device = device
        self.volumes: Dict[str, object] = {
            "root": kernel.rootfs, "sfs": kernel.sfs,
        }
        self.geometry = compute_geometry(device.nblocks)
        self.active_slot = 0
        self.generation = 0
        self.journal: Optional[Journal] = None
        self.recovery = RecoveryStats()
        self.checkpoints = 0

    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, kernel, device: BlockDevice) -> "DiskStore":
        """Mount *device* into *kernel*: format a blank device, recover
        anything else."""
        device.require_alive()
        if device.injector is None:
            device.injector = kernel.injector
        store = cls(kernel, device)
        if store._is_blank():
            store.format()
        else:
            store.recover()
        return store

    def _is_blank(self) -> bool:
        return (read_superblock(self.device, 0) is None
                and read_superblock(self.device,
                                    self.geometry.backup_super) is None)

    # ------------------------------------------------------------------
    # format / checkpoint
    # ------------------------------------------------------------------

    def format(self) -> None:
        self.generation = 0
        self._arm_journal(generation=0, next_txid=1)
        self.checkpoint()
        self.recovery = RecoveryStats(generation=self.generation,
                                      applied_txid=0, clean=True)
        self.recovery.trail.append(("format", self.generation))

    def checkpoint(self) -> None:
        """Capture every volume and flip to a fresh journal generation."""
        if self.device.crashed:
            return  # power is off; nothing can persist
        assert self.journal is not None
        applied = self.journal.next_txid - 1
        blob = encode_checkpoint(self.volumes, applied)
        geo = self.geometry
        size = self.device.block_size
        span = (len(blob) + size - 1) // size
        if span > geo.slot_blocks:
            raise DiskFullError(
                f"checkpoint of {len(blob)} bytes exceeds the "
                f"{geo.slot_blocks}-block slot"
            )
        target = 1 - self.active_slot
        start = geo.slot_starts[target]
        for index in range(span):
            self.device.write(start + index,
                              blob[index * size:(index + 1) * size])
        self.device.barrier()   # slot contents before the flip
        self.active_slot = target
        self.generation += 1
        fields = {
            "block_size": size, "nblocks": self.device.nblocks,
            "journal_start": geo.journal_start,
            "journal_blocks": geo.journal_blocks,
            "slot_a": geo.slot_starts[0], "slot_b": geo.slot_starts[1],
            "slot_blocks": geo.slot_blocks,
            "active_slot": self.active_slot,
            "generation": self.generation,
            "ckpt_len": len(blob), "ckpt_crc": zlib.crc32(blob),
            "applied_txid": applied,
            "next_txid": self.journal.next_txid,
        }
        block = pack_superblock(fields, size)
        self.device.write(0, block)
        self.device.write(geo.backup_super, block)
        self.device.barrier()   # flip durable before any new record
        self.journal.reset(self.generation, self.journal.next_txid)
        self.checkpoints += 1
        clock = self.kernel.clock
        clock.charge("journal",
                     (span + 2) * self.journal.cost_per_block)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.DISK, name="checkpoint",
                        value=self.generation)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self) -> None:
        device = self.device
        stats = RecoveryStats(clean=False)
        super_fields = read_superblock(device, 0)
        if super_fields is None:
            super_fields = read_superblock(device,
                                           self.geometry.backup_super)
            stats.used_backup_superblock = True
        if super_fields is None:
            raise DiskFormatError(
                "no valid superblock (primary and backup both bad)"
            )
        if super_fields["block_size"] != device.block_size \
                or super_fields["nblocks"] != device.nblocks:
            raise DiskFormatError(
                "superblock geometry disagrees with the device"
            )
        self.active_slot = super_fields["active_slot"]
        self.generation = super_fields["generation"]
        stats.generation = self.generation
        stats.applied_txid = super_fields["applied_txid"]
        blob = read_checkpoint_blob(device, super_fields)
        applied, records = decode_checkpoint(blob)
        stored_maps: Dict[str, Optional[list]] = {}
        for key in VOLUME_KEYS:
            if key not in records:
                raise DiskFormatError(f"checkpoint lacks volume {key!r}")
            stored_maps[key] = restore_volume(self.volumes[key],
                                              records[key])
        stats.trail.append(("checkpoint", self.generation, applied))
        # Cross-check the stored kernel address map against the inode
        # table it was derived from (pre-replay state on both sides).
        sfs = self.volumes["sfs"]
        stored = stored_maps.get("sfs")
        if stored is not None:
            current = {tuple(entry) for entry in sfs.addrmap.entries()}
            stats.addrmap_mismatches = len(
                current.symmetric_difference(
                    tuple(entry) for entry in stored))
        scan = scan_journal(device, self.geometry.journal_start,
                            self.geometry.journal_blocks, self.generation)
        if scan.malformed:
            raise DiskFormatError(
                f"journal is structurally damaged: {scan.malformed[0]}"
            )
        last_txid = applied
        for txid, ops in scan.committed:
            if txid <= applied:
                continue  # already in the checkpoint: replay once only
            self._replay_txn(txid, ops, stats)
            last_txid = txid
        stats.discarded_records = scan.discarded_records
        stats.uncommitted_txid = scan.uncommitted_txid
        if scan.discarded_records:
            stats.trail.append(("discard", scan.discarded_records,
                                scan.uncommitted_txid))
        # The paper's boot-time scan: rebuild addr↔inode from inodes.
        stats.addrmap_segments = sfs.rebuild_address_map()
        stats.trail.append(("addrmap", stats.addrmap_segments))
        stats.clean = (not stats.replayed_txns
                       and not stats.discarded_records
                       and not stats.used_backup_superblock)
        self.recovery = stats
        tracer = _trace.TRACER
        if tracer.enabled:
            for entry in stats.trail:
                tracer.emit(EventKind.RECOVER, name=str(entry[0]),
                            value=int(entry[1]))
        next_txid = max(super_fields["next_txid"], last_txid + 1)
        self._arm_journal(generation=self.generation,
                          next_txid=next_txid)
        self.checkpoint()

    def _replay_txn(self, txid: int, ops: List[tuple],
                    stats: RecoveryStats) -> None:
        for volume, op, args in ops:
            fs = self.volumes.get(volume)
            if fs is None:
                raise DiskFormatError(
                    f"journal names unknown volume {volume!r}"
                )
            try:
                self._apply_op(fs, op, args)
            except DiskFormatError:
                raise
            except (SimulationError, ValueError, TypeError) as error:
                raise DiskFormatError(
                    f"replay of txn {txid} op {op!r} failed: {error}"
                )
            stats.replayed_ops += 1
        stats.replayed_txns += 1
        stats.trail.append(("replay", txid, len(ops)))

    def _apply_op(self, fs, op: str, args: list) -> None:
        apply_journal_op(fs, op, args)

    # ------------------------------------------------------------------

    def _arm_journal(self, generation: int, next_txid: int) -> None:
        geo = self.geometry
        self.journal = Journal(
            self.device, geo.journal_start, geo.journal_blocks,
            generation=generation, next_txid=next_txid,
            clock=self.kernel.clock,
            cost_per_block=self.kernel.clock.costs.journal_block,
        )
        self.journal.on_full = self.checkpoint
        for key, fs in self.volumes.items():
            fs.journal = self.journal
            fs.journal_volume = key

    def detach(self) -> None:
        """Disarm journaling (shutdown teardown)."""
        for fs in self.volumes.values():
            fs.journal = None
