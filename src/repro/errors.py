"""Exception hierarchy for the Hemlock reproduction.

Every error raised by the simulation derives from :class:`SimulationError`,
so callers can distinguish simulated-system failures (a bad address, a
missing module, a link error) from genuine Python bugs.

The hierarchy mirrors the layering of the system: hardware faults at the
bottom, then virtual-memory and kernel errors, then file-system errors,
then linker errors at the top.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Root of all errors raised by the simulated system."""


# ---------------------------------------------------------------------------
# Hardware / VM level
# ---------------------------------------------------------------------------

class HardwareError(SimulationError):
    """Errors raised by the simulated CPU or its memory system."""


class InvalidInstructionError(HardwareError):
    """The CPU fetched a word that does not decode to a valid instruction."""

    def __init__(self, pc: int, word: int) -> None:
        super().__init__(f"invalid instruction 0x{word:08x} at pc=0x{pc:08x}")
        self.pc = pc
        self.word = word


class AlignmentError(HardwareError):
    """A load, store, or jump used a misaligned address."""

    def __init__(self, address: int, alignment: int) -> None:
        super().__init__(
            f"address 0x{address:08x} is not {alignment}-byte aligned"
        )
        self.address = address
        self.alignment = alignment


class ExecutionBudgetExceeded(HardwareError):
    """A bounded run elapsed without reaching a trap (likely a hang)."""


class VMError(SimulationError):
    """Errors raised by the virtual-memory subsystem."""


class MappingError(VMError):
    """A map/unmap/mprotect request was invalid (overlap, bad range...)."""


class OutOfMemoryError(VMError):
    """The simulated physical memory pool is exhausted."""


# ---------------------------------------------------------------------------
# Kernel level
# ---------------------------------------------------------------------------

class KernelError(SimulationError):
    """Errors raised by the simulated kernel proper."""


class SyscallError(KernelError):
    """A system call failed.

    Carries a Unix-flavoured symbolic errno so callers can match on the
    failure kind rather than on message text.
    """

    def __init__(self, errno: str, message: str) -> None:
        super().__init__(f"[{errno}] {message}")
        self.errno = errno
        self.message = message


class NoSuchProcessError(KernelError):
    """A pid did not name a live process."""


class ProcessDiedError(KernelError):
    """A simulated process terminated abnormally (unhandled fault/signal)."""

    def __init__(self, pid: int, reason: str) -> None:
        super().__init__(f"process {pid} died: {reason}")
        self.pid = pid
        self.reason = reason


# ---------------------------------------------------------------------------
# File-system level
# ---------------------------------------------------------------------------

class FilesystemError(SimulationError):
    """Errors raised by the in-memory file systems."""


class FileNotFoundSimError(FilesystemError):
    """Path resolution failed (ENOENT analogue)."""


class FileExistsSimError(FilesystemError):
    """Exclusive creation hit an existing entry (EEXIST analogue)."""


class NotADirectorySimError(FilesystemError):
    """A path component was not a directory (ENOTDIR analogue)."""


class IsADirectorySimError(FilesystemError):
    """A file operation was applied to a directory (EISDIR analogue)."""


class PermissionSimError(FilesystemError):
    """Access check failed (EACCES analogue)."""


class FileLimitError(FilesystemError):
    """An SFS limit was exceeded (inode count or max file size)."""


class AddressMapError(FilesystemError):
    """An address-map registration overlapped or duplicated a live
    segment (the translation tables must stay injective both ways)."""


# ---------------------------------------------------------------------------
# Durable block store (repro.disk)
# ---------------------------------------------------------------------------

class DiskError(SimulationError):
    """Errors raised by the simulated block device and its journal."""


class DiskFormatError(DiskError):
    """An on-disk structure (superblock, checkpoint, record) is invalid."""


class DiskFullError(DiskError):
    """The device, journal region, or checkpoint slot is out of space."""


class DiskCrashedError(DiskError):
    """An operation was attempted on a crashed (powered-off) device."""


class FsckError(DiskError):
    """``reprofsck`` found inconsistencies at or above its threshold.

    Carries the rendered findings, mirroring :class:`LintError`.
    """

    def __init__(self, findings: "list[str]", subject: str = "") -> None:
        self.findings = list(findings)
        self.subject = subject
        head = f"{subject}: " if subject else ""
        summary = "; ".join(self.findings[:3])
        more = len(self.findings) - 3
        if more > 0:
            summary += f"; ... and {more} more"
        super().__init__(
            f"{head}fsck failed ({len(self.findings)} finding(s)): "
            f"{summary}"
        )


# ---------------------------------------------------------------------------
# Cluster fabric (repro.net)
# ---------------------------------------------------------------------------

class NetError(SimulationError):
    """Errors raised by the simulated cluster network and its
    coherence protocol (a synchronous exchange that exhausted its
    retransmission budget, a malformed frame, a protocol violation)."""


# ---------------------------------------------------------------------------
# Trace and record/replay level
# ---------------------------------------------------------------------------

class TraceCursorError(SimulationError):
    """A tracer cursor no longer addresses retained events: either the
    ring buffer dropped events past it (the gap would otherwise vanish
    silently into a replay) or the cursor is ahead of everything
    emitted (a stale or corrupt checkpoint)."""


class RRError(SimulationError):
    """Record/replay failed: a malformed ``.rrr`` recording, a
    checkpoint that cannot be materialized (live native generators are
    not serializable), or a seek outside the recorded run."""


class DivergenceError(RRError):
    """A replay diverged from its recording. Carries the first
    divergent event (or cycle-count mismatch) so CI can report the
    exact cycle nondeterminism crept in."""

    def __init__(self, message: str, cycle: int = -1,
                 index: int = -1) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.index = index


# ---------------------------------------------------------------------------
# Object-file and linker level
# ---------------------------------------------------------------------------

class ObjectFormatError(SimulationError):
    """An object file was malformed or had an unsupported feature."""


class AssemblerError(SimulationError):
    """The assembler rejected its input."""

    def __init__(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)
        self.line = line


class CompileError(SimulationError):
    """The toy compiler rejected its input."""

    def __init__(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)
        self.line = line


class LinkError(SimulationError):
    """A static or dynamic link step failed."""


class UndefinedSymbolError(LinkError):
    """A reference could not be resolved and the policy demands an error."""

    def __init__(self, symbols: "list[str] | tuple[str, ...] | str") -> None:
        if isinstance(symbols, str):
            symbols = [symbols]
        names = ", ".join(sorted(symbols))
        super().__init__(f"undefined symbol(s): {names}")
        self.symbols = tuple(sorted(symbols))


class DuplicateSymbolError(LinkError):
    """Two modules in the same scope defined the same global symbol."""

    def __init__(self, symbol: str, first: str, second: str) -> None:
        super().__init__(
            f"symbol {symbol!r} defined in both {first!r} and {second!r}"
        )
        self.symbol = symbol
        self.modules = (first, second)


class ModuleNotFoundLinkError(LinkError):
    """A module named on a link line could not be located on any path."""

    def __init__(self, name: str, searched: "list[str]") -> None:
        where = ", ".join(searched) if searched else "<empty search path>"
        super().__init__(f"module {name!r} not found (searched: {where})")
        self.name = name
        self.searched = list(searched)


class RelocationError(LinkError):
    """A relocation could not be applied (overflow, bad type...)."""


class InjectedFaultError(SimulationError):
    """Mixin-base of every fault raised by the :mod:`repro.inject` planes.

    Concrete injected errors multiply inherit from this class *and* from
    the natural error type of their plane (``SyscallError``,
    ``FilesystemError``, ...), so existing containment code — errno
    translation in the machine-syscall dispatcher, ``except
    SyscallError`` in the runtime — handles injected faults through
    exactly the paths a real failure would take, while tests and the
    kernel's containment counters can still identify them.

    The injector stamps instance attributes after construction:
    ``plane``/``site``/``fault_kind`` locate the choke point, and
    ``transient`` marks faults that a bounded retry (``ldl``'s
    deterministic backoff) is allowed to absorb.
    """

    plane = ""
    site = ""
    fault_kind = ""
    transient = False


class InjectedSyscallError(InjectedFaultError, SyscallError):
    """An injected failure of one system call (the syscall plane)."""


class InjectedIOError(InjectedFaultError, FilesystemError):
    """An injected device error on file I/O (the io plane)."""


class InjectedDiskFullError(InjectedFaultError, FileLimitError):
    """An injected ENOSPC (the io plane, write side)."""


class InjectedLinkError(InjectedFaultError, LinkError):
    """An injected failure inside the linker (the linker plane)."""


class InjectedDiskError(InjectedFaultError, DiskError):
    """An injected block-device failure (the disk plane)."""


class InjectedNetError(InjectedFaultError, NetError):
    """An injected network failure that exhausted the fabric's bounded
    retransmission (the net plane). Travels the same typed channel as a
    genuine protocol timeout would."""


class InjectedModuleNotFoundError(InjectedFaultError,
                                  ModuleNotFoundLinkError):
    """An injected module-lookup miss (the linker plane's MISSING kind).

    Subclasses :class:`ModuleNotFoundLinkError` so ``ldl``'s existing
    missing-module tolerance (warn at link, fault at use) applies.
    """


class LintError(LinkError):
    """The static verifier (repro.analyze) refused an object.

    Raised by the opt-in post-link gate in ``lds``/``ldl`` *before* the
    offending image is mapped, and by ``reprolint --strict``. Carries
    the rendered findings so callers can report individual diagnostics.
    """

    def __init__(self, findings: "list[str]", subject: str = "") -> None:
        self.findings = list(findings)
        self.subject = subject
        head = f"{subject}: " if subject else ""
        summary = "; ".join(self.findings[:3])
        more = len(self.findings) - 3
        if more > 0:
            summary += f"; ... and {more} more"
        super().__init__(
            f"{head}static verification failed "
            f"({len(self.findings)} finding(s)): {summary}"
        )
