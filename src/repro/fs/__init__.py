"""In-memory Unix-like file system and VFS.

Provides the traditional hierarchy (directories, regular files, symlinks,
permissions, advisory locks) that Hemlock deliberately retains: "retention
of the Unix file system interface ... provides valuable functionality"
(§6). The shared file system of :mod:`repro.sfs` subclasses the generic
:class:`Filesystem` here and is grafted into the name space with a mount.
"""

from repro.fs.inode import Inode, InodeType, Stat
from repro.fs.filesystem import Filesystem
from repro.fs.path import normalize, split_path, join, dirname, basename
from repro.fs.vfs import Vfs, OpenFile, O_RDONLY, O_WRONLY, O_RDWR, O_CREAT, \
    O_EXCL, O_TRUNC, O_APPEND

__all__ = [
    "Inode",
    "InodeType",
    "Stat",
    "Filesystem",
    "normalize",
    "split_path",
    "join",
    "dirname",
    "basename",
    "Vfs",
    "OpenFile",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_EXCL",
    "O_TRUNC",
    "O_APPEND",
]
