"""A generic in-memory inode file system.

One instance is one mounted volume: it owns an inode table and a root
directory. Cross-volume concerns (mount points, path walking with
symlinks, file descriptors) live in :mod:`repro.fs.vfs`.

Subclasses can impose volume policies by overriding the ``_check_*``
hooks — the shared file system uses them for its 1024-inode / 1 MiB-file
limits, its hard-link prohibition, and its address-map maintenance.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    FilesystemError,
    IsADirectorySimError,
    NotADirectorySimError,
)
from repro.fs.inode import Inode, InodeType
from repro.vm.pages import MemoryObject, PhysicalMemory

DEFAULT_FILE_MODE = 0o644
DEFAULT_DIR_MODE = 0o755


class Filesystem:
    """One volume of the simulated file hierarchy."""

    def __init__(self, physmem: PhysicalMemory, name: str = "fs") -> None:
        self.physmem = physmem
        self.name = name
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = 0
        self.root = self._new_inode(InodeType.DIRECTORY, DEFAULT_DIR_MODE, 0)
        self.root.entries["."] = self.root
        self.root.entries[".."] = self.root
        self.root.nlink = 2

    # ------------------------------------------------------------------
    # policy hooks (overridden by the SFS)
    # ------------------------------------------------------------------

    def _allocate_ino(self) -> int:
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _check_new_inode(self) -> None:
        """Raise if the volume cannot hold another inode."""

    def _check_write(self, inode: Inode, end_offset: int) -> None:
        """Raise if a write growing *inode* to *end_offset* exceeds limits."""

    def _allow_hard_links(self) -> bool:
        return True

    def _on_create(self, inode: Inode) -> None:
        """Called after a new inode is linked into a directory."""

    def _on_destroy(self, inode: Inode) -> None:
        """Called when an inode's last link goes away."""

    # ------------------------------------------------------------------
    # inode management
    # ------------------------------------------------------------------

    def _new_inode(self, itype: InodeType, mode: int, uid: int) -> Inode:
        self._check_new_inode()
        ino = self._allocate_ino()
        memobj = None
        if itype is InodeType.FILE:
            memobj = MemoryObject(self.physmem, 0,
                                  name=f"{self.name}:ino{ino}")
        inode = Inode(ino, itype, mode, uid, memobj)
        self._inodes[ino] = inode
        return inode

    def inode_by_number(self, number: int) -> Optional[Inode]:
        return self._inodes.get(number)

    def inode_count(self) -> int:
        return len(self._inodes)

    def inodes(self) -> Iterator[Inode]:
        return iter(list(self._inodes.values()))

    # ------------------------------------------------------------------
    # directory-level operations (single volume; no path walking here)
    # ------------------------------------------------------------------

    def lookup(self, directory: Inode, name: str) -> Inode:
        if not directory.is_dir:
            raise NotADirectorySimError(f"{name!r}: parent is not a directory")
        child = directory.entries.get(name)
        if child is None:
            raise FileNotFoundSimError(f"no entry {name!r}")
        return child

    def create_file(self, directory: Inode, name: str, uid: int,
                    mode: int = DEFAULT_FILE_MODE) -> Inode:
        self._check_entry_free(directory, name)
        inode = self._new_inode(InodeType.FILE, mode, uid)
        directory.entries[name] = inode
        self._on_create(inode)
        return inode

    def mkdir(self, directory: Inode, name: str, uid: int,
              mode: int = DEFAULT_DIR_MODE) -> Inode:
        self._check_entry_free(directory, name)
        inode = self._new_inode(InodeType.DIRECTORY, mode, uid)
        inode.entries["."] = inode
        inode.entries[".."] = directory
        inode.nlink = 2
        directory.entries[name] = inode
        directory.nlink += 1
        self._on_create(inode)
        return inode

    def symlink(self, directory: Inode, name: str, target: str,
                uid: int) -> Inode:
        self._check_entry_free(directory, name)
        inode = self._new_inode(InodeType.SYMLINK, 0o777, uid)
        inode.symlink_target = target
        directory.entries[name] = inode
        self._on_create(inode)
        return inode

    def link(self, directory: Inode, name: str, target: Inode) -> None:
        """Hard link — prohibited on the SFS (one-one inode/path mapping)."""
        if not self._allow_hard_links():
            raise FilesystemError(
                f"hard links are prohibited on {self.name!r}"
            )
        if target.is_dir:
            raise IsADirectorySimError("cannot hard-link a directory")
        self._check_entry_free(directory, name)
        directory.entries[name] = target
        target.nlink += 1

    def unlink(self, directory: Inode, name: str) -> None:
        inode = self.lookup(directory, name)
        if inode.is_dir:
            raise IsADirectorySimError(f"{name!r} is a directory")
        del directory.entries[name]
        inode.nlink -= 1
        if inode.nlink == 0:
            self._destroy(inode)

    def rmdir(self, directory: Inode, name: str) -> None:
        inode = self.lookup(directory, name)
        if not inode.is_dir:
            raise NotADirectorySimError(f"{name!r} is not a directory")
        if set(inode.entries) - {".", ".."}:
            raise FilesystemError(f"directory {name!r} not empty")
        del directory.entries[name]
        directory.nlink -= 1
        inode.nlink = 0
        self._destroy(inode)

    def rename(self, src_dir: Inode, src_name: str, dst_dir: Inode,
               dst_name: str) -> None:
        inode = self.lookup(src_dir, src_name)
        existing = dst_dir.entries.get(dst_name)
        if existing is inode:
            return
        if existing is not None:
            if existing.is_dir:
                raise IsADirectorySimError(f"{dst_name!r} exists")
            self.unlink(dst_dir, dst_name)
        del src_dir.entries[src_name]
        dst_dir.entries[dst_name] = inode
        if inode.is_dir:
            inode.entries[".."] = dst_dir
            src_dir.nlink -= 1
            dst_dir.nlink += 1

    def readdir(self, directory: Inode) -> List[str]:
        if not directory.is_dir:
            raise NotADirectorySimError("not a directory")
        return sorted(n for n in directory.entries if n not in (".", ".."))

    def _check_entry_free(self, directory: Inode, name: str) -> None:
        if not directory.is_dir:
            raise NotADirectorySimError("parent is not a directory")
        if "/" in name or name in (".", "..", ""):
            raise FilesystemError(f"invalid entry name {name!r}")
        if name in directory.entries:
            raise FileExistsSimError(f"entry {name!r} exists")

    def _destroy(self, inode: Inode) -> None:
        self._on_destroy(inode)
        if inode.memobj is not None:
            inode.memobj.free()
        self._inodes.pop(inode.number, None)

    # ------------------------------------------------------------------
    # file I/O (offset-based; fd bookkeeping lives in the VFS)
    # ------------------------------------------------------------------

    def read_file(self, inode: Inode, offset: int, length: int) -> bytes:
        if not inode.is_file:
            raise IsADirectorySimError("read of non-regular file")
        assert inode.memobj is not None
        return inode.memobj.read(offset, length)

    def write_file(self, inode: Inode, offset: int, data: bytes) -> int:
        if not inode.is_file:
            raise IsADirectorySimError("write of non-regular file")
        assert inode.memobj is not None
        self._check_write(inode, offset + len(data))
        return inode.memobj.write(offset, data)

    def truncate_file(self, inode: Inode, size: int) -> None:
        if not inode.is_file:
            raise IsADirectorySimError("truncate of non-regular file")
        assert inode.memobj is not None
        self._check_write(inode, size)
        inode.memobj.truncate(size)

    # ------------------------------------------------------------------

    def walk(self, visit: Callable[[str, Inode], None],
             directory: Optional[Inode] = None, prefix: str = "") -> None:
        """Depth-first traversal calling ``visit(path, inode)``."""
        directory = directory or self.root
        for name in self.readdir(directory):
            child = directory.entries[name]
            path = f"{prefix}/{name}"
            visit(path, child)
            if child.is_dir:
                self.walk(visit, child, path)
