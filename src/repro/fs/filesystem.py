"""A generic in-memory inode file system.

One instance is one mounted volume: it owns an inode table and a root
directory. Cross-volume concerns (mount points, path walking with
symlinks, file descriptors) live in :mod:`repro.fs.vfs`.

Subclasses can impose volume policies by overriding the ``_check_*``
hooks — the shared file system uses them for its 1024-inode / 1 MiB-file
limits, its hard-link prohibition, and its address-map maintenance.

Durability: when a :class:`repro.disk.journal.Journal` is armed on the
volume (``self.journal``), every mutating operation runs inside a
journal transaction and logs one logical OP record. The journal applies
the operation in memory first and makes it durable on commit; recovery
replays committed records through these very same methods (with the
journal suspended and inode numbers forced), so the replayed tree is
produced by the production code paths, not by a parallel interpreter.

Reverse lookup: volumes that prohibit hard links (``_index_paths``)
maintain an incremental inode→path index, making ``path_of_inode`` —
and therefore the kernel's address→path translation — O(1) instead of
a volume walk.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    FilesystemError,
    IsADirectorySimError,
    NotADirectorySimError,
)
from repro.fs.inode import Inode, InodeType
from repro.vm.pages import MemoryObject, PhysicalMemory


class _NullTxn:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TXN = _NullTxn()

DEFAULT_FILE_MODE = 0o644
DEFAULT_DIR_MODE = 0o755


class Filesystem:
    """One volume of the simulated file hierarchy."""

    #: Maintain the O(1) inode→path index. Only sound on volumes that
    #: prohibit hard links (each inode has exactly one path), so the
    #: base class leaves it off and the SFS classes turn it on.
    _index_paths = False

    def __init__(self, physmem: PhysicalMemory, name: str = "fs") -> None:
        self.physmem = physmem
        self.name = name
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = 0
        # Armed by repro.disk.mount.DiskStore; None = volatile volume.
        self.journal = None
        self.journal_volume = name
        self._ino_paths: Dict[int, str] = {}
        self.root = self._new_inode(InodeType.DIRECTORY, DEFAULT_DIR_MODE, 0)
        self.root.entries["."] = self.root
        self.root.entries[".."] = self.root
        self.root.nlink = 2
        if self._index_paths:
            self._ino_paths[self.root.number] = ""

    # ------------------------------------------------------------------
    # journaling plumbing
    # ------------------------------------------------------------------

    def _txn(self):
        """The volume's current journal transaction context (no-op when
        no journal is armed — the default volatile configuration)."""
        journal = self.journal
        if journal is None:
            return _NULL_TXN
        return journal.transaction()

    def _log(self, op: str, *fields) -> None:
        journal = self.journal
        if journal is not None:
            journal.log(self.journal_volume, op, list(fields))

    # ------------------------------------------------------------------
    # inode→path index (O(1) reverse lookup; hard-link-free volumes)
    # ------------------------------------------------------------------

    def _index_add(self, directory: Inode, name: str, inode: Inode) -> None:
        if not self._index_paths:
            return
        base = self._ino_paths.get(directory.number, "")
        self._ino_paths[inode.number] = f"{base}/{name}"

    def _index_drop(self, inode: Inode) -> None:
        if self._index_paths:
            self._ino_paths.pop(inode.number, None)

    def _index_move(self, inode: Inode, dst_dir: Inode,
                    dst_name: str) -> None:
        if not self._index_paths:
            return
        old = self._ino_paths.get(inode.number)
        new = f"{self._ino_paths.get(dst_dir.number, '')}/{dst_name}"
        self._ino_paths[inode.number] = new
        if inode.is_dir and old is not None and old != new:
            # Every path below a moved directory shifts with it.
            prefix = old + "/"
            for ino, path in list(self._ino_paths.items()):
                if path.startswith(prefix):
                    self._ino_paths[ino] = new + path[len(old):]

    def _index_rebuild(self) -> None:
        """Recompute the index from the tree (post-recovery restore)."""
        if not self._index_paths:
            return
        paths: Dict[int, str] = {self.root.number: ""}

        def visit(path: str, inode: Inode) -> None:
            paths[inode.number] = path

        self.walk(visit)
        self._ino_paths = paths

    # ------------------------------------------------------------------
    # policy hooks (overridden by the SFS)
    # ------------------------------------------------------------------

    def _allocate_ino(self) -> int:
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _claim_ino(self, ino: int) -> None:
        """Mark a specific inode number used (journal replay forces the
        numbers recorded at run time so recovered trees are identical)."""
        if ino in self._inodes:
            raise FilesystemError(f"inode {ino} already allocated")
        self._next_ino = max(self._next_ino, ino + 1)

    def _check_new_inode(self) -> None:
        """Raise if the volume cannot hold another inode."""

    def _check_write(self, inode: Inode, end_offset: int) -> None:
        """Raise if a write growing *inode* to *end_offset* exceeds limits."""

    def _allow_hard_links(self) -> bool:
        return True

    def _on_create(self, inode: Inode) -> None:
        """Called after a new inode is linked into a directory."""

    def _on_destroy(self, inode: Inode) -> None:
        """Called when an inode's last link goes away."""

    def _journal_create_fields(self, inode: Inode) -> List[object]:
        """Extra fields the CREATE record must carry so replay can
        reproduce volume-specific allocation (sfs64's reservation)."""
        return []

    # ------------------------------------------------------------------
    # inode management
    # ------------------------------------------------------------------

    def _new_inode(self, itype: InodeType, mode: int, uid: int,
                   ino: Optional[int] = None) -> Inode:
        self._check_new_inode()
        if ino is None:
            ino = self._allocate_ino()
        else:
            self._claim_ino(ino)
        memobj = None
        if itype is InodeType.FILE:
            memobj = MemoryObject(self.physmem, 0,
                                  name=f"{self.name}:ino{ino}")
        inode = Inode(ino, itype, mode, uid, memobj)
        self._inodes[ino] = inode
        return inode

    def inode_by_number(self, number: int) -> Optional[Inode]:
        return self._inodes.get(number)

    def inode_count(self) -> int:
        return len(self._inodes)

    def inodes(self) -> Iterator[Inode]:
        return iter(list(self._inodes.values()))

    # ------------------------------------------------------------------
    # directory-level operations (single volume; no path walking here)
    # ------------------------------------------------------------------

    def lookup(self, directory: Inode, name: str) -> Inode:
        if not directory.is_dir:
            raise NotADirectorySimError(f"{name!r}: parent is not a directory")
        child = directory.entries.get(name)
        if child is None:
            raise FileNotFoundSimError(f"no entry {name!r}")
        return child

    def create_file(self, directory: Inode, name: str, uid: int,
                    mode: int = DEFAULT_FILE_MODE,
                    _ino: Optional[int] = None) -> Inode:
        with self._txn():
            self._check_entry_free(directory, name)
            inode = self._new_inode(InodeType.FILE, mode, uid, ino=_ino)
            directory.entries[name] = inode
            self._index_add(directory, name, inode)
            self._on_create(inode)
            self._log("create", directory.number, name, uid, mode,
                      inode.number, *self._journal_create_fields(inode))
        return inode

    def mkdir(self, directory: Inode, name: str, uid: int,
              mode: int = DEFAULT_DIR_MODE,
              _ino: Optional[int] = None) -> Inode:
        with self._txn():
            self._check_entry_free(directory, name)
            inode = self._new_inode(InodeType.DIRECTORY, mode, uid, ino=_ino)
            inode.entries["."] = inode
            inode.entries[".."] = directory
            inode.nlink = 2
            directory.entries[name] = inode
            directory.nlink += 1
            self._index_add(directory, name, inode)
            self._on_create(inode)
            self._log("mkdir", directory.number, name, uid, mode,
                      inode.number)
        return inode

    def symlink(self, directory: Inode, name: str, target: str,
                uid: int, _ino: Optional[int] = None) -> Inode:
        with self._txn():
            self._check_entry_free(directory, name)
            inode = self._new_inode(InodeType.SYMLINK, 0o777, uid, ino=_ino)
            inode.symlink_target = target
            directory.entries[name] = inode
            self._index_add(directory, name, inode)
            self._on_create(inode)
            self._log("symlink", directory.number, name, target, uid,
                      inode.number)
        return inode

    def link(self, directory: Inode, name: str, target: Inode) -> None:
        """Hard link — prohibited on the SFS (one-one inode/path mapping)."""
        if not self._allow_hard_links():
            raise FilesystemError(
                f"hard links are prohibited on {self.name!r}"
            )
        with self._txn():
            if target.is_dir:
                raise IsADirectorySimError("cannot hard-link a directory")
            self._check_entry_free(directory, name)
            directory.entries[name] = target
            target.nlink += 1
            self._log("link", directory.number, name, target.number)

    def unlink(self, directory: Inode, name: str) -> None:
        with self._txn():
            inode = self.lookup(directory, name)
            if inode.is_dir:
                raise IsADirectorySimError(f"{name!r} is a directory")
            del directory.entries[name]
            inode.nlink -= 1
            self._index_drop(inode)
            if inode.nlink == 0:
                self._destroy(inode)
            self._log("unlink", directory.number, name)

    def rmdir(self, directory: Inode, name: str) -> None:
        with self._txn():
            inode = self.lookup(directory, name)
            if not inode.is_dir:
                raise NotADirectorySimError(f"{name!r} is not a directory")
            if set(inode.entries) - {".", ".."}:
                raise FilesystemError(f"directory {name!r} not empty")
            del directory.entries[name]
            directory.nlink -= 1
            inode.nlink = 0
            self._index_drop(inode)
            self._destroy(inode)
            self._log("rmdir", directory.number, name)

    def rename(self, src_dir: Inode, src_name: str, dst_dir: Inode,
               dst_name: str) -> None:
        """Atomic rename, overwriting a non-directory destination.

        The whole move — including the implicit unlink of an existing
        destination — is one journal transaction carrying one RENAME
        record, so a crash at any record boundary leaves either the old
        tree or the new tree, never the entry in both directories (or
        neither). All validation happens before the first mutation for
        the same reason: a validation failure must leave no trace.
        """
        with self._txn():
            inode = self.lookup(src_dir, src_name)
            if not dst_dir.is_dir:
                raise NotADirectorySimError(
                    f"rename target parent is not a directory"
                )
            if "/" in dst_name or dst_name in (".", "..", ""):
                raise FilesystemError(f"invalid entry name {dst_name!r}")
            existing = dst_dir.entries.get(dst_name)
            if existing is inode:
                return
            if existing is not None:
                if existing.is_dir:
                    raise IsADirectorySimError(f"{dst_name!r} exists")
                # Nested op: absorbed into this transaction, no record
                # of its own — replaying RENAME re-derives the unlink.
                self.unlink(dst_dir, dst_name)
            del src_dir.entries[src_name]
            dst_dir.entries[dst_name] = inode
            if inode.is_dir:
                inode.entries[".."] = dst_dir
                src_dir.nlink -= 1
                dst_dir.nlink += 1
            self._index_move(inode, dst_dir, dst_name)
            self._log("rename", src_dir.number, src_name, dst_dir.number,
                      dst_name)

    def readdir(self, directory: Inode) -> List[str]:
        if not directory.is_dir:
            raise NotADirectorySimError("not a directory")
        return sorted(n for n in directory.entries if n not in (".", ".."))

    def _check_entry_free(self, directory: Inode, name: str) -> None:
        if not directory.is_dir:
            raise NotADirectorySimError("parent is not a directory")
        if "/" in name or name in (".", "..", ""):
            raise FilesystemError(f"invalid entry name {name!r}")
        if name in directory.entries:
            raise FileExistsSimError(f"entry {name!r} exists")

    def _destroy(self, inode: Inode) -> None:
        self._on_destroy(inode)
        self._index_drop(inode)
        if inode.memobj is not None:
            inode.memobj.free()
        self._inodes.pop(inode.number, None)

    # ------------------------------------------------------------------
    # file I/O (offset-based; fd bookkeeping lives in the VFS)
    # ------------------------------------------------------------------

    def read_file(self, inode: Inode, offset: int, length: int) -> bytes:
        if not inode.is_file:
            raise IsADirectorySimError("read of non-regular file")
        assert inode.memobj is not None
        return inode.memobj.read(offset, length)

    def write_file(self, inode: Inode, offset: int, data: bytes) -> int:
        if not inode.is_file:
            raise IsADirectorySimError("write of non-regular file")
        assert inode.memobj is not None
        with self._txn():
            self._check_write(inode, offset + len(data))
            written = inode.memobj.write(offset, data)
            self._log("write", inode.number, offset,
                      bytes(data[:written]))
        return written

    def truncate_file(self, inode: Inode, size: int) -> None:
        if not inode.is_file:
            raise IsADirectorySimError("truncate of non-regular file")
        assert inode.memobj is not None
        with self._txn():
            self._check_write(inode, size)
            inode.memobj.truncate(size)
            self._log("truncate", inode.number, size)

    # ------------------------------------------------------------------
    # reverse lookup
    # ------------------------------------------------------------------

    def path_of_inode(self, ino: int) -> str:
        """Volume-relative path of inode *ino*.

        On hard-link-free volumes this is a dictionary hit against the
        incrementally maintained index; elsewhere (where an inode may
        have several paths) it falls back to a volume walk and returns
        the first path found.
        """
        if self._index_paths:
            path = self._ino_paths.get(ino)
            if path:
                return path
            raise FileNotFoundSimError(f"no path for inode {ino}")
        found: List[str] = []

        def visit(path: str, inode: Inode) -> None:
            if inode.number == ino:
                found.append(path)

        self.walk(visit)
        if not found:
            raise FileNotFoundSimError(f"no path for inode {ino}")
        return found[0]

    # ------------------------------------------------------------------

    def walk(self, visit: Callable[[str, Inode], None],
             directory: Optional[Inode] = None, prefix: str = "") -> None:
        """Depth-first traversal calling ``visit(path, inode)``."""
        directory = directory or self.root
        for name in self.readdir(directory):
            child = directory.entries[name]
            path = f"{prefix}/{name}"
            visit(path, child)
            if child.is_dir:
                self.walk(visit, child, path)
