"""Inodes: the on-"disk" objects of the simulated file systems."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.vm.pages import MemoryObject


class InodeType(enum.Enum):
    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


@dataclass
class Stat:
    """The subset of ``struct stat`` the simulation needs.

    ``st_ino`` matters most: in the shared file system the inode number
    determines the file's global virtual address (§3, "the stat system
    call already returns an inode number").
    """

    st_ino: int
    st_mode: int
    st_uid: int
    st_size: int
    st_nlink: int
    st_type: InodeType


class Inode:
    """One file-system object.

    Regular files hold their bytes in a :class:`MemoryObject`, which is
    exactly what makes a file mappable as a *segment*: mapping and file
    I/O hit the same pages.
    """

    def __init__(self, number: int, itype: InodeType, mode: int,
                 uid: int, memobj: Optional[MemoryObject] = None) -> None:
        self.number = number
        self.type = itype
        self.mode = mode
        self.uid = uid
        self.nlink = 1
        self.memobj = memobj
        # Directory entries: name -> Inode. Present only on directories.
        self.entries: Dict[str, "Inode"] = {}
        # Symlink target path. Present only on symlinks.
        self.symlink_target: Optional[str] = None
        # Advisory whole-file lock owner (pid) or None; see kernel.sync.
        self.lock_owner: Optional[int] = None

    @property
    def is_dir(self) -> bool:
        return self.type is InodeType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.type is InodeType.FILE

    @property
    def is_symlink(self) -> bool:
        return self.type is InodeType.SYMLINK

    @property
    def size(self) -> int:
        if self.is_file:
            assert self.memobj is not None
            return self.memobj.size
        if self.is_symlink:
            return len(self.symlink_target or "")
        return len(self.entries)

    def stat(self) -> Stat:
        return Stat(self.number, self.mode, self.uid, self.size, self.nlink,
                    self.type)

    def check_access(self, uid: int, want: str) -> bool:
        """Owner/other permission check; *want* is 'r', 'w', or 'x'.

        uid 0 (the superuser) passes everything, matching Unix.
        """
        if uid == 0:
            return True
        bit = {"r": 4, "w": 2, "x": 1}[want]
        if uid == self.uid:
            return bool((self.mode >> 6) & bit)
        return bool(self.mode & bit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Inode #{self.number} {self.type.value} mode=0o{self.mode:o}>"
