"""Pure path-string manipulation for the simulated file systems.

Only absolute or cwd-relative POSIX-style paths exist in the simulation;
these helpers normalize them without touching the host file system.
"""

from __future__ import annotations

from typing import List


def split_path(path: str) -> List[str]:
    """Split into components, dropping empty ones (``//`` collapses)."""
    return [part for part in path.split("/") if part]


def normalize(path: str, cwd: str = "/") -> str:
    """Produce a canonical absolute path, resolving ``.`` and ``..``
    lexically (symlink-aware resolution happens in the VFS)."""
    if not path.startswith("/"):
        path = cwd.rstrip("/") + "/" + path
    stack: List[str] = []
    for part in split_path(path):
        if part == ".":
            continue
        if part == "..":
            if stack:
                stack.pop()
            continue
        stack.append(part)
    return "/" + "/".join(stack)


def join(*parts: str) -> str:
    """Join path fragments with single slashes; later absolute parts win."""
    result = ""
    for part in parts:
        if not part:
            continue
        if part.startswith("/") or not result:
            result = part
        else:
            result = result.rstrip("/") + "/" + part
    return result or "/"


def dirname(path: str) -> str:
    """Parent directory of *path* (lexical)."""
    parts = split_path(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


def basename(path: str) -> str:
    """Final component of *path* (lexical)."""
    parts = split_path(path)
    return parts[-1] if parts else ""
