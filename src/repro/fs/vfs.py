"""The virtual file system: mounts, path walking, open files.

The VFS stitches volumes into one name space. In the standard Hemlock
configuration the kernel mounts a regular :class:`Filesystem` at ``/``
and a :class:`~repro.sfs.SharedFilesystem` at ``/shared`` — the "special
disk partition" of §3 on which all public modules and their templates
must reside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    FilesystemError,
    IsADirectorySimError,
    NotADirectorySimError,
    PermissionSimError,
)
from repro.fs.filesystem import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE, Filesystem
from repro.fs.inode import Inode, Stat
from repro.fs.path import normalize, split_path

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_EXCL = 0x80
O_TRUNC = 0x200
O_APPEND = 0x400

_ACCMODE = 0x3
_MAX_SYMLINKS = 40


@dataclass
class OpenFile:
    """An open file description (shared across dup'ed descriptors)."""

    vfs: "Vfs"
    fs: Filesystem
    inode: Inode
    path: str
    flags: int
    offset: int = 0
    refcount: int = 1

    @property
    def readable(self) -> bool:
        return (self.flags & _ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & _ACCMODE) in (O_WRONLY, O_RDWR)

    def read(self, length: int) -> bytes:
        if not self.readable:
            raise PermissionSimError(f"{self.path!r} not open for reading")
        data = self.fs.read_file(self.inode, self.offset, length)
        injector = self.vfs.injector
        if injector is not None:
            data = injector.filter_read(self.path, data, site="read")
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        if not self.writable:
            raise PermissionSimError(f"{self.path!r} not open for writing")
        if self.flags & O_APPEND:
            self.offset = self.inode.size
        pending = None
        injector = self.vfs.injector
        if injector is not None:
            data, pending = injector.filter_write(self.path, data,
                                                  site="write")
        written = self.fs.write_file(self.inode, self.offset, data)
        self.offset += written
        if pending is not None:
            # Torn write: the shortened prefix persisted before the
            # error surfaces, exactly like a mid-write crash.
            raise pending
        return written

    def pread(self, offset: int, length: int) -> bytes:
        if not self.readable:
            raise PermissionSimError(f"{self.path!r} not open for reading")
        data = self.fs.read_file(self.inode, offset, length)
        injector = self.vfs.injector
        if injector is not None:
            data = injector.filter_read(self.path, data, site="read")
        return data

    def pwrite(self, offset: int, data: bytes) -> int:
        if not self.writable:
            raise PermissionSimError(f"{self.path!r} not open for writing")
        pending = None
        injector = self.vfs.injector
        if injector is not None:
            data, pending = injector.filter_write(self.path, data,
                                                  site="write")
        written = self.fs.write_file(self.inode, offset, data)
        if pending is not None:
            raise pending
        return written

    def lseek(self, offset: int, whence: int = 0) -> int:
        if whence == 0:
            new = offset
        elif whence == 1:
            new = self.offset + offset
        elif whence == 2:
            new = self.inode.size + offset
        else:
            raise FilesystemError(f"bad whence {whence}")
        if new < 0:
            raise FilesystemError("negative seek")
        self.offset = new
        return new

    def truncate(self, size: int) -> None:
        if not self.writable:
            raise PermissionSimError(f"{self.path!r} not open for writing")
        self.fs.truncate_file(self.inode, size)


class Vfs:
    """Mount table plus path-level operations."""

    def __init__(self, rootfs: Filesystem) -> None:
        self._mounts: Dict[str, Filesystem] = {"/": rootfs}
        self.injector = None  # set by repro.inject.install_injector

    @property
    def rootfs(self) -> Filesystem:
        return self._mounts["/"]

    def mount(self, path: str, fs: Filesystem, uid: int = 0) -> None:
        """Mount *fs* at *path*, creating the mount-point directory."""
        path = normalize(path)
        if path in self._mounts:
            raise FilesystemError(f"{path!r} is already a mount point")
        parent_fs, parent = self._resolve_dir(dirname_of(path), uid)
        name = split_path(path)[-1]
        if name not in parent.entries:
            parent_fs.mkdir(parent, name, uid)
        self._mounts[path] = fs

    def filesystem_at(self, path: str) -> Optional[Filesystem]:
        return self._mounts.get(normalize(path))

    def mounts(self) -> Dict[str, Filesystem]:
        return dict(self._mounts)

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------

    def resolve(self, path: str, uid: int = 0, follow: bool = True,
                cwd: str = "/") -> Tuple[Filesystem, Inode]:
        """Walk *path* to its inode, crossing mounts and symlinks."""
        fs, inode, _, _ = self._walk(normalize(path, cwd), uid, follow)
        return fs, inode

    def _resolve_dir(self, path: str, uid: int) -> Tuple[Filesystem, Inode]:
        fs, inode = self.resolve(path, uid)
        if not inode.is_dir:
            raise NotADirectorySimError(f"{path!r} is not a directory")
        return fs, inode

    def _walk(self, path: str, uid: int, follow: bool,
              depth: int = 0) -> Tuple[Filesystem, Inode, Filesystem, Inode]:
        """Returns (fs, inode, parent_fs, parent_inode)."""
        if depth > _MAX_SYMLINKS:
            raise FilesystemError("too many levels of symbolic links")
        fs = self._mounts["/"]
        inode = fs.root
        parent_fs, parent = fs, fs.root
        components = split_path(path)
        walked: List[str] = []
        for index, name in enumerate(components):
            if not inode.is_dir:
                raise NotADirectorySimError(
                    "/" + "/".join(walked) + " is not a directory"
                )
            if not inode.check_access(uid, "x"):
                raise PermissionSimError(
                    "search permission denied on /" + "/".join(walked)
                )
            parent_fs, parent = fs, inode
            child = fs.lookup(inode, name)
            walked.append(name)
            mounted = self._mounts.get("/" + "/".join(walked))
            if mounted is not None:
                fs, child = mounted, mounted.root
            last = index == len(components) - 1
            if child.is_symlink and (follow or not last):
                target = child.symlink_target or ""
                rest = "/".join(components[index + 1:])
                base = "/" + "/".join(walked[:-1])
                new_path = normalize(
                    target if target.startswith("/")
                    else base.rstrip("/") + "/" + target
                )
                if rest:
                    new_path = new_path.rstrip("/") + "/" + rest
                return self._walk(new_path, uid, follow, depth + 1)
            fs, inode = fs, child
        return fs, inode, parent_fs, parent

    def _locate_parent(self, path: str, uid: int,
                       cwd: str = "/") -> Tuple[Filesystem, Inode, str]:
        """Resolve the parent directory of *path*; returns the leaf name."""
        path = normalize(path, cwd)
        components = split_path(path)
        if not components:
            raise FilesystemError("cannot operate on the root directory")
        parent_path = "/" + "/".join(components[:-1])
        fs, parent = self._resolve_dir(parent_path, uid)
        return fs, parent, components[-1]

    # ------------------------------------------------------------------
    # file and directory operations
    # ------------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, uid: int = 0,
             mode: int = DEFAULT_FILE_MODE, cwd: str = "/") -> OpenFile:
        path = normalize(path, cwd)
        created = False
        try:
            fs, inode = self.resolve(path, uid)
            if flags & O_CREAT and flags & O_EXCL:
                raise FileExistsSimError(f"{path!r} exists")
        except FileNotFoundSimError:
            if not flags & O_CREAT:
                raise
            fs, parent, name = self._locate_parent(path, uid)
            if not parent.check_access(uid, "w"):
                raise PermissionSimError(f"cannot create in {path!r}")
            inode = fs.create_file(parent, name, uid, mode)
            created = True
        if inode.is_dir and (flags & _ACCMODE) != O_RDONLY:
            raise IsADirectorySimError(f"{path!r} is a directory")
        accmode = flags & _ACCMODE
        # As in Unix, the creating open is not subject to the new file's
        # mode bits; only later opens are.
        if not created:
            if accmode in (O_RDONLY, O_RDWR) \
                    and not inode.check_access(uid, "r"):
                raise PermissionSimError(
                    f"read permission denied on {path!r}"
                )
            if accmode in (O_WRONLY, O_RDWR) \
                    and not inode.check_access(uid, "w"):
                raise PermissionSimError(
                    f"write permission denied on {path!r}"
                )
        handle = OpenFile(self, fs, inode, path, flags)
        if flags & O_TRUNC and inode.is_file and handle.writable:
            fs.truncate_file(inode, 0)
        return handle

    def stat(self, path: str, uid: int = 0, follow: bool = True,
             cwd: str = "/") -> Stat:
        _, inode = self.resolve(path, uid, follow=follow, cwd=cwd)
        return inode.stat()

    def exists(self, path: str, uid: int = 0, cwd: str = "/") -> bool:
        try:
            self.resolve(path, uid, cwd=cwd)
            return True
        except (FileNotFoundSimError, NotADirectorySimError):
            return False

    def mkdir(self, path: str, uid: int = 0, mode: int = DEFAULT_DIR_MODE,
              cwd: str = "/") -> None:
        fs, parent, name = self._locate_parent(path, uid, cwd)
        if not parent.check_access(uid, "w"):
            raise PermissionSimError(f"cannot create directory {path!r}")
        fs.mkdir(parent, name, uid, mode)

    def makedirs(self, path: str, uid: int = 0) -> None:
        """mkdir -p."""
        built = ""
        for part in split_path(normalize(path)):
            built += "/" + part
            if not self.exists(built, uid):
                self.mkdir(built, uid)

    def symlink(self, target: str, linkpath: str, uid: int = 0,
                cwd: str = "/") -> None:
        fs, parent, name = self._locate_parent(linkpath, uid, cwd)
        fs.symlink(parent, name, target, uid)

    def readlink(self, path: str, uid: int = 0, cwd: str = "/") -> str:
        _, inode = self.resolve(path, uid, follow=False, cwd=cwd)
        if not inode.is_symlink:
            raise FilesystemError(f"{path!r} is not a symlink")
        return inode.symlink_target or ""

    def link(self, existing: str, new: str, uid: int = 0,
             cwd: str = "/") -> None:
        src_fs, inode = self.resolve(existing, uid, cwd=cwd)
        dst_fs, parent, name = self._locate_parent(new, uid, cwd)
        if src_fs is not dst_fs:
            raise FilesystemError("cross-volume hard links are not allowed")
        dst_fs.link(parent, name, inode)

    def unlink(self, path: str, uid: int = 0, cwd: str = "/") -> None:
        fs, parent, name = self._locate_parent(path, uid, cwd)
        if not parent.check_access(uid, "w"):
            raise PermissionSimError(f"cannot unlink {path!r}")
        fs.unlink(parent, name)

    def rmdir(self, path: str, uid: int = 0, cwd: str = "/") -> None:
        fs, parent, name = self._locate_parent(path, uid, cwd)
        fs.rmdir(parent, name)

    def rename(self, old: str, new: str, uid: int = 0,
               cwd: str = "/") -> None:
        src_fs, src_parent, src_name = self._locate_parent(old, uid, cwd)
        dst_fs, dst_parent, dst_name = self._locate_parent(new, uid, cwd)
        if src_fs is not dst_fs:
            raise FilesystemError("cross-volume rename is not allowed")
        src_fs.rename(src_parent, src_name, dst_parent, dst_name)

    def listdir(self, path: str, uid: int = 0, cwd: str = "/") -> List[str]:
        fs, inode = self.resolve(path, uid, cwd=cwd)
        if not inode.check_access(uid, "r"):
            raise PermissionSimError(f"cannot list {path!r}")
        return fs.readdir(inode)

    # convenience whole-file helpers -----------------------------------

    def read_whole(self, path: str, uid: int = 0, cwd: str = "/") -> bytes:
        handle = self.open(path, O_RDONLY, uid, cwd=cwd)
        return handle.pread(0, handle.inode.size)

    def write_whole(self, path: str, data: bytes, uid: int = 0,
                    mode: int = DEFAULT_FILE_MODE, cwd: str = "/") -> None:
        handle = self.open(path, O_WRONLY | O_CREAT | O_TRUNC, uid, mode,
                           cwd=cwd)
        handle.write(data)


def dirname_of(path: str) -> str:
    parts = split_path(path)
    return "/" + "/".join(parts[:-1]) if parts else "/"
