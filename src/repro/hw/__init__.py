"""Simulated hardware: an R3000-flavoured ISA, assembler, and CPU.

The ISA keeps exactly the properties Hemlock's linkers care about:

* 16-bit immediates, so absolute addresses are carried by ``lui``/``ori``
  pairs patched via HI16/LO16 relocations;
* 26-bit jump targets confined to a 256 MiB region, so direct calls into
  the 1 GiB shared file-system region need linker-inserted branch islands;
* a global-pointer register whose 16-bit-offset addressing is incompatible
  with a large sparse address space — Hemlock compiles with it disabled;
* precise, restartable memory faults, so a user-level SIGSEGV handler can
  map a segment (or run the lazy linker) and resume.

There are no branch delay slots; that simplification is irrelevant to the
linking behaviour under study.
"""

from repro.hw.isa import (
    REG_NAMES,
    REG_ZERO,
    REG_V0,
    REG_V1,
    REG_A0,
    REG_A1,
    REG_A2,
    REG_A3,
    REG_GP,
    REG_SP,
    REG_FP,
    REG_RA,
    register_number,
    encode_r,
    encode_i,
    encode_j,
    jump_target,
    jump_reachable,
    disassemble_word,
)
from repro.hw.cpu import Cpu, SyscallTrap, BreakTrap, ArithmeticTrap
from repro.hw.asm import assemble

__all__ = [
    "REG_NAMES",
    "REG_ZERO",
    "REG_V0",
    "REG_V1",
    "REG_A0",
    "REG_A1",
    "REG_A2",
    "REG_A3",
    "REG_GP",
    "REG_SP",
    "REG_FP",
    "REG_RA",
    "register_number",
    "encode_r",
    "encode_i",
    "encode_j",
    "jump_target",
    "jump_reachable",
    "disassemble_word",
    "Cpu",
    "SyscallTrap",
    "BreakTrap",
    "ArithmeticTrap",
    "assemble",
]
