"""A two-pass assembler producing HOF relocatable objects.

Supported syntax (MIPS-gas flavoured)::

            .text
            .globl  main
            .entry  main
    main:   addi    sp, sp, -8
            sw      ra, 0(sp)
            la      a0, message     # lui/ori pair with HI16/LO16 relocs
            jal     report          # JUMP26 reloc
            lw      ra, 0(sp)
            addi    sp, sp, 8
            jr      ra

            .data
    message:
            .asciiz "hello"
    table:  .word   main, message+4 # WORD32 relocs
            .bss
    buffer: .space  4096

Directives: ``.text .data .bss .globl .entry .word .half .byte .ascii
.asciiz .space .align .comm .heap .module .searchdir``. The last three are
Hemlock extensions: ``.heap`` requests per-segment heap slack for
``shmalloc``; ``.module``/``.searchdir`` embed a module list and search
path in the template, the hooks scoped linking builds on (§3).

Pseudo-instructions: ``li la move nop b beqz bnez call ret`` plus
symbol-addressed loads/stores (``lw rt, sym`` expands to a ``lui``/``lw``
pair through the assembler temporary).

References to symbols not defined in the file become undefined symbols
with relocations; local labels are kept as LOCAL symbols so relocations
against them survive into the link step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    Relocation,
    RelocType,
    SEC_BSS,
    SEC_DATA,
    SEC_TEXT,
    Symbol,
    SymBinding,
)
from repro.util.bits import fits_signed, fits_unsigned


@dataclass
class _Insn:
    """A parsed instruction pending encoding in pass 2."""

    section: str
    offset: int
    mnemonic: str
    operands: List[str]
    line: int
    size: int


@dataclass
class _Data:
    """A parsed data directive pending emission in pass 2."""

    section: str
    offset: int
    directive: str
    args: List[str]
    line: int
    size: int


@dataclass
class _State:
    """Assembler state threaded through both passes."""

    section: str = SEC_TEXT
    offsets: Dict[str, int] = field(
        default_factory=lambda: {SEC_TEXT: 0, SEC_DATA: 0, SEC_BSS: 0}
    )
    labels: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    globals_: List[str] = field(default_factory=list)
    sizes: Dict[str, int] = field(default_factory=dict)
    kinds: Dict[str, str] = field(default_factory=dict)
    entry: Optional[str] = None
    statements: List[object] = field(default_factory=list)
    heap_size: int = 0
    modules: List[Tuple[str, str]] = field(default_factory=list)
    searchdirs: List[str] = field(default_factory=list)


_THREE_REG = {
    "add": isa.FN_ADD, "sub": isa.FN_SUB, "and": isa.FN_AND,
    "or": isa.FN_OR, "xor": isa.FN_XOR, "nor": isa.FN_NOR,
    "slt": isa.FN_SLT, "sltu": isa.FN_SLTU, "mul": isa.FN_MUL,
    "div": isa.FN_DIV, "rem": isa.FN_REM,
}
_SHIFTS = {"sll": isa.FN_SLL, "srl": isa.FN_SRL, "sra": isa.FN_SRA}
_VAR_SHIFTS = {"sllv": isa.FN_SLLV, "srlv": isa.FN_SRLV,
               "srav": isa.FN_SRAV}
_IMM_OPS = {
    "addi": (isa.OP_ADDI, "signed"),
    "slti": (isa.OP_SLTI, "signed"),
    "sltiu": (isa.OP_SLTIU, "signed"),
    "andi": (isa.OP_ANDI, "unsigned"),
    "ori": (isa.OP_ORI, "unsigned"),
    "xori": (isa.OP_XORI, "unsigned"),
}
_LOADS = {"lw": isa.OP_LW, "lh": isa.OP_LH, "lb": isa.OP_LB,
          "lbu": isa.OP_LBU, "lhu": isa.OP_LHU}
_STORES = {"sw": isa.OP_SW, "sh": isa.OP_SH, "sb": isa.OP_SB}
_BRANCH2 = {"beq": isa.OP_BEQ, "bne": isa.OP_BNE}
_BRANCH1 = {"blez": isa.OP_BLEZ, "bgtz": isa.OP_BGTZ}
_REGIMM = {"bltz": isa.RT_BLTZ, "bgez": isa.RT_BGEZ}


def assemble(source: str, name: str = "a.o") -> ObjectFile:
    """Assemble *source* into a relocatable :class:`ObjectFile`."""
    return _Assembler(source, name).assemble()


class _Assembler:
    def __init__(self, source: str, name: str) -> None:
        self.source = source
        self.obj = ObjectFile(name)
        self.state = _State()

    # ------------------------------------------------------------------
    # pass 1: parse, size, and place
    # ------------------------------------------------------------------

    def assemble(self) -> ObjectFile:
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            self._parse_line(raw, line_no)
        self._build_symbols()
        self._emit_all()
        self.obj.bss_size = self.state.offsets[SEC_BSS]
        self.obj.heap_size = self.state.heap_size
        self.obj.entry_symbol = self.state.entry
        self.obj.link_info.dynamic_modules = list(self.state.modules)
        self.obj.link_info.search_path = list(self.state.searchdirs)
        return self.obj

    def _parse_line(self, raw: str, line_no: int) -> None:
        line = _strip_comment(raw).strip()
        while line:
            head, sep, rest = line.partition(":")
            if sep and _is_label(head.strip()) and not _in_quotes(raw, head):
                self._define_label(head.strip(), line_no)
                line = rest.strip()
            else:
                break
        if not line:
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic.startswith("."):
            self._directive(mnemonic, rest, line_no)
        else:
            self._instruction(mnemonic, rest, line_no)

    def _define_label(self, label: str, line_no: int) -> None:
        state = self.state
        if label in state.labels:
            raise AssemblerError(f"label {label!r} redefined", line_no)
        state.labels[label] = (state.section, state.offsets[state.section])

    def _advance(self, size: int) -> int:
        offset = self.state.offsets[self.state.section]
        self.state.offsets[self.state.section] = offset + size
        return offset

    def _align(self, alignment: int, line_no: int) -> None:
        if alignment & (alignment - 1):
            raise AssemblerError(
                f"alignment {alignment} is not a power of two", line_no
            )
        section = self.state.section
        offset = self.state.offsets[section]
        padded = (offset + alignment - 1) & ~(alignment - 1)
        if padded != offset:
            pad = padded - offset
            if section != SEC_BSS:
                self.state.statements.append(
                    _Data(section, offset, ".space", [str(pad)], line_no, pad)
                )
            self.state.offsets[section] = padded

    def _directive(self, directive: str, rest: str, line_no: int) -> None:
        state = self.state
        if directive in (".text", ".data", ".bss"):
            state.section = directive[1:]
            return
        if directive in (".globl", ".global"):
            for symbol in _split_commas(rest):
                state.globals_.append(symbol)
            return
        if directive == ".entry":
            state.entry = rest.strip()
            return
        if directive == ".heap":
            state.heap_size += _parse_number(rest.strip(), line_no)
            return
        if directive == ".module":
            args = _split_commas(rest)
            if not 1 <= len(args) <= 2:
                raise AssemblerError(".module takes name[, class]", line_no)
            sclass = args[1] if len(args) == 2 else "dynamic_public"
            state.modules.append((args[0], sclass))
            return
        if directive == ".searchdir":
            state.searchdirs.append(rest.strip())
            return
        if directive == ".size":
            args = _split_commas(rest)
            if len(args) != 2:
                raise AssemblerError(".size takes name, bytes", line_no)
            state.sizes[args[0]] = _parse_number(args[1], line_no)
            return
        if directive == ".type":
            args = _split_commas(rest)
            if len(args) != 2:
                raise AssemblerError(".type takes name, kind", line_no)
            state.kinds[args[0]] = args[1]
            return
        if directive == ".align":
            self._align(_parse_number(rest.strip(), line_no), line_no)
            return
        if directive == ".comm":
            args = _split_commas(rest)
            if len(args) != 2:
                raise AssemblerError(".comm takes name, size", line_no)
            size = _parse_number(args[1], line_no)
            saved = state.section
            state.section = SEC_BSS
            self._align(4, line_no)
            state.labels[args[0]] = (SEC_BSS, state.offsets[SEC_BSS])
            state.globals_.append(args[0])
            self._advance(size)
            state.section = saved
            return

        if directive in (".word", ".half", ".byte", ".ascii", ".asciiz",
                         ".space"):
            if state.section == SEC_BSS and directive != ".space":
                raise AssemblerError(
                    f"{directive} not allowed in .bss", line_no
                )
            if directive == ".word":
                self._align(4, line_no)
                args = _split_commas(rest)
                size = 4 * len(args)
            elif directive == ".half":
                self._align(2, line_no)
                args = _split_commas(rest)
                size = 2 * len(args)
            elif directive == ".byte":
                args = _split_commas(rest)
                size = len(args)
            elif directive in (".ascii", ".asciiz"):
                text = _parse_string(rest.strip(), line_no)
                args = [text]
                size = len(text.encode("latin-1"))
                if directive == ".asciiz":
                    size += 1
            else:  # .space
                args = [rest.strip()]
                size = _parse_number(rest.strip(), line_no)
            offset = self._advance(size)
            if state.section != SEC_BSS:
                state.statements.append(
                    _Data(state.section, offset, directive, args, line_no,
                          size)
                )
            return
        raise AssemblerError(f"unknown directive {directive!r}", line_no)

    def _instruction(self, mnemonic: str, rest: str, line_no: int) -> None:
        if self.state.section != SEC_TEXT:
            raise AssemblerError(
                f"instruction {mnemonic!r} outside .text", line_no
            )
        operands = _split_commas(rest)
        size = self._insn_size(mnemonic, operands, line_no)
        offset = self._advance(size)
        self.state.statements.append(
            _Insn(SEC_TEXT, offset, mnemonic, operands, line_no, size)
        )

    def _insn_size(self, mnemonic: str, operands: List[str],
                   line_no: int) -> int:
        if mnemonic == "li":
            if len(operands) != 2:
                raise AssemblerError("li takes rt, imm", line_no)
            value = _parse_number(operands[1], line_no)
            if fits_signed(value, 16) or fits_unsigned(value, 16):
                return 4
            return 8
        if mnemonic == "la":
            return 8
        if mnemonic in _LOADS or mnemonic in _STORES:
            if len(operands) == 2 and "(" not in operands[1] \
                    and not _looks_numeric(operands[1]):
                return 8  # symbol-addressed pseudo form
            return 4
        return 4

    # ------------------------------------------------------------------
    # symbols
    # ------------------------------------------------------------------

    def _build_symbols(self) -> None:
        state = self.state
        for label, (section, value) in state.labels.items():
            binding = (SymBinding.GLOBAL if label in state.globals_
                       else SymBinding.LOCAL)
            self.obj.add_symbol(Symbol(label, section, value, binding,
                                       size=state.sizes.get(label, 0),
                                       kind=state.kinds.get(label, "")))
        for name in state.globals_:
            if name not in state.labels:
                # Exported but not defined here: an undefined global the
                # linker must resolve (or a .comm already handled).
                self.obj.reference(name)

    def _symbol_or_none(self, name: str) -> Optional[Tuple[str, int]]:
        return self.state.labels.get(name)

    # ------------------------------------------------------------------
    # pass 2: emit
    # ------------------------------------------------------------------

    def _emit_all(self) -> None:
        text = bytearray(self.state.offsets[SEC_TEXT])
        data = bytearray(self.state.offsets[SEC_DATA])
        buffers = {SEC_TEXT: text, SEC_DATA: data}
        for statement in self.state.statements:
            if isinstance(statement, _Insn):
                self._emit_insn(statement, buffers[statement.section])
            else:
                self._emit_data(statement, buffers[statement.section])
        self.obj.text = text
        self.obj.data = data

    def _emit_data(self, stmt: _Data, buf: bytearray) -> None:
        offset = stmt.offset
        if stmt.directive == ".space":
            return  # already zero
        if stmt.directive in (".ascii", ".asciiz"):
            encoded = stmt.args[0].encode("latin-1")
            if stmt.directive == ".asciiz":
                encoded += b"\x00"
            buf[offset: offset + len(encoded)] = encoded
            return
        width = {".word": 4, ".half": 2, ".byte": 1}[stmt.directive]
        for arg in stmt.args:
            value = self._data_value(arg, stmt, offset, width)
            buf[offset: offset + width] = (value & ((1 << (8 * width)) - 1)) \
                .to_bytes(width, "little")
            offset += width

    def _data_value(self, arg: str, stmt: _Data, offset: int,
                    width: int) -> int:
        if _looks_numeric(arg):
            return _parse_number(arg, stmt.line)
        symbol, addend = _split_sym_addend(arg, stmt.line)
        if width != 4:
            raise AssemblerError(
                f"symbol reference {arg!r} must be word-sized", stmt.line
            )
        local = self._symbol_or_none(symbol)
        if local is None:
            self.obj.reference(symbol)
        self.obj.relocations.append(
            Relocation(stmt.section, offset, RelocType.WORD32, symbol,
                       addend)
        )
        return 0

    def _emit_insn(self, stmt: _Insn, buf: bytearray) -> None:
        words = self._encode(stmt)
        offset = stmt.offset
        for word in words:
            buf[offset: offset + 4] = word.to_bytes(4, "little")
            offset += 4
        if offset - stmt.offset != stmt.size:
            raise AssemblerError(
                f"internal: size mismatch for {stmt.mnemonic}", stmt.line
            )

    def _reg(self, name: str, line: int) -> int:
        try:
            return isa.register_number(name)
        except ValueError as exc:
            raise AssemblerError(str(exc), line) from None

    def _need(self, stmt: _Insn, count: int) -> List[str]:
        if len(stmt.operands) != count:
            raise AssemblerError(
                f"{stmt.mnemonic} takes {count} operand(s), got "
                f"{len(stmt.operands)}", stmt.line
            )
        return stmt.operands

    def _encode(self, stmt: _Insn) -> List[int]:
        m = stmt.mnemonic
        line = stmt.line

        if m == "nop":
            self._need(stmt, 0)
            return [0]
        if m == "syscall":
            self._need(stmt, 0)
            return [isa.encode_r(isa.FN_SYSCALL)]
        if m == "break":
            self._need(stmt, 0)
            return [isa.encode_r(isa.FN_BREAK)]
        if m == "ret":
            self._need(stmt, 0)
            return [isa.encode_r(isa.FN_JR, rs=isa.REG_RA)]
        if m in _THREE_REG:
            a, b, c = self._need(stmt, 3)
            return [isa.encode_r(_THREE_REG[m], rd=self._reg(a, line),
                                 rs=self._reg(b, line),
                                 rt=self._reg(c, line))]
        if m in _SHIFTS:
            a, b, c = self._need(stmt, 3)
            shamt = _parse_number(c, line)
            if not 0 <= shamt < 32:
                raise AssemblerError("shift amount out of range", line)
            return [isa.encode_r(_SHIFTS[m], rd=self._reg(a, line),
                                 rt=self._reg(b, line), shamt=shamt)]
        if m in _VAR_SHIFTS:
            # sllv rd, rt, rs: shift rt left by the low bits of rs.
            a, b, c = self._need(stmt, 3)
            return [isa.encode_r(_VAR_SHIFTS[m], rd=self._reg(a, line),
                                 rt=self._reg(b, line),
                                 rs=self._reg(c, line))]
        if m == "move":
            a, b = self._need(stmt, 2)
            return [isa.encode_r(isa.FN_OR, rd=self._reg(a, line),
                                 rs=self._reg(b, line), rt=isa.REG_ZERO)]
        if m in _IMM_OPS:
            a, b, c = self._need(stmt, 3)
            op, signedness = _IMM_OPS[m]
            value = _parse_number(c, line)
            if signedness == "signed" and not fits_signed(value, 16):
                raise AssemblerError(f"immediate {value} out of range", line)
            if signedness == "unsigned" and not fits_unsigned(value, 16):
                raise AssemblerError(f"immediate {value} out of range", line)
            return [isa.encode_i(op, rs=self._reg(b, line),
                                 rt=self._reg(a, line), imm=value)]
        if m == "lui":
            a, b = self._need(stmt, 2)
            value = _parse_number(b, line)
            if not fits_unsigned(value, 16):
                raise AssemblerError("lui immediate out of range", line)
            return [isa.encode_i(isa.OP_LUI, rt=self._reg(a, line),
                                 imm=value)]
        if m == "li":
            a, b = self._need(stmt, 2)
            rt = self._reg(a, line)
            value = _parse_number(b, line)
            if fits_signed(value, 16):
                return [isa.encode_i(isa.OP_ADDI, rs=isa.REG_ZERO, rt=rt,
                                     imm=value)]
            if fits_unsigned(value, 16):
                return [isa.encode_i(isa.OP_ORI, rs=isa.REG_ZERO, rt=rt,
                                     imm=value)]
            value &= 0xFFFFFFFF
            return [
                isa.encode_i(isa.OP_LUI, rt=rt, imm=value >> 16),
                isa.encode_i(isa.OP_ORI, rs=rt, rt=rt, imm=value & 0xFFFF),
            ]
        if m == "la":
            a, b = self._need(stmt, 2)
            rt = self._reg(a, line)
            symbol, addend = _split_sym_addend(b, line)
            self._note_reference(symbol)
            self.obj.relocations.append(
                Relocation(SEC_TEXT, stmt.offset, RelocType.HI16, symbol,
                           addend)
            )
            self.obj.relocations.append(
                Relocation(SEC_TEXT, stmt.offset + 4, RelocType.LO16, symbol,
                           addend)
            )
            return [
                isa.encode_i(isa.OP_LUI, rt=rt, imm=0),
                isa.encode_i(isa.OP_ORI, rs=rt, rt=rt, imm=0),
            ]
        if m in _LOADS or m in _STORES:
            return self._encode_mem(stmt)
        if m in _BRANCH2 or m in ("beqz", "bnez"):
            if m in ("beqz", "bnez"):
                a, target = self._need(stmt, 2)
                rs, rt = self._reg(a, line), isa.REG_ZERO
                op = isa.OP_BEQ if m == "beqz" else isa.OP_BNE
            else:
                a, b, target = self._need(stmt, 3)
                rs, rt = self._reg(a, line), self._reg(b, line)
                op = _BRANCH2[m]
            return [isa.encode_i(op, rs=rs, rt=rt,
                                 imm=self._branch_offset(target, stmt))]
        if m in _BRANCH1:
            a, target = self._need(stmt, 2)
            return [isa.encode_i(_BRANCH1[m], rs=self._reg(a, line),
                                 imm=self._branch_offset(target, stmt))]
        if m in _REGIMM:
            a, target = self._need(stmt, 2)
            return [isa.encode_i(isa.OP_REGIMM, rs=self._reg(a, line),
                                 rt=_REGIMM[m],
                                 imm=self._branch_offset(target, stmt))]
        if m == "b":
            (target,) = self._need(stmt, 1)
            return [isa.encode_i(isa.OP_BEQ, rs=isa.REG_ZERO,
                                 rt=isa.REG_ZERO,
                                 imm=self._branch_offset(target, stmt))]
        if m in ("j", "jal", "call"):
            (target,) = self._need(stmt, 1)
            op = isa.OP_J if m == "j" else isa.OP_JAL
            symbol, addend = _split_sym_addend(target, line)
            self._note_reference(symbol)
            self.obj.relocations.append(
                Relocation(SEC_TEXT, stmt.offset, RelocType.JUMP26, symbol,
                           addend)
            )
            return [isa.encode_j(op, 0)]
        if m == "jr":
            (a,) = self._need(stmt, 1)
            return [isa.encode_r(isa.FN_JR, rs=self._reg(a, line))]
        if m == "jalr":
            if len(stmt.operands) == 1:
                rd, rs = isa.REG_RA, self._reg(stmt.operands[0], line)
            else:
                a, b = self._need(stmt, 2)
                rd, rs = self._reg(a, line), self._reg(b, line)
            return [isa.encode_r(isa.FN_JALR, rd=rd, rs=rs)]
        raise AssemblerError(f"unknown instruction {m!r}", line)

    def _encode_mem(self, stmt: _Insn) -> List[int]:
        m = stmt.mnemonic
        line = stmt.line
        a, addr = self._need(stmt, 2)
        rt = self._reg(a, line)
        op = _LOADS.get(m, _STORES.get(m))
        assert op is not None
        if "(" in addr:
            offset_text, _, reg_text = addr.partition("(")
            reg_text = reg_text.rstrip(")")
            base = self._reg(reg_text, line)
            offset = _parse_number(offset_text, line) if offset_text.strip() \
                else 0
            if not fits_signed(offset, 16):
                raise AssemblerError("load/store offset out of range", line)
            return [isa.encode_i(op, rs=base, rt=rt, imm=offset)]
        if _looks_numeric(addr):
            offset = _parse_number(addr, line)
            if not fits_signed(offset, 16):
                raise AssemblerError("absolute address out of range", line)
            return [isa.encode_i(op, rs=isa.REG_ZERO, rt=rt, imm=offset)]
        # Symbol-addressed pseudo form: lui at, %hi(sym); op rt, %lo(sym)(at)
        symbol, addend = _split_sym_addend(addr, line)
        self._note_reference(symbol)
        self.obj.relocations.append(
            Relocation(SEC_TEXT, stmt.offset, RelocType.HI16, symbol, addend)
        )
        self.obj.relocations.append(
            Relocation(SEC_TEXT, stmt.offset + 4, RelocType.LO16, symbol,
                       addend)
        )
        return [
            isa.encode_i(isa.OP_LUI, rt=isa.REG_AT, imm=0),
            isa.encode_i(op, rs=isa.REG_AT, rt=rt, imm=0),
        ]

    def _branch_offset(self, target: str, stmt: _Insn) -> int:
        location = self._symbol_or_none(target)
        if location is None:
            raise AssemblerError(
                f"branch target {target!r} is not a local label "
                f"(use jal/j for external control transfer)", stmt.line
            )
        section, value = location
        if section != SEC_TEXT:
            raise AssemblerError(
                f"branch target {target!r} is not in .text", stmt.line
            )
        offset = (value - (stmt.offset + 4)) >> 2
        if not fits_signed(offset, 16):
            raise AssemblerError("branch out of range", stmt.line)
        return offset

    def _note_reference(self, symbol: str) -> None:
        if self._symbol_or_none(symbol) is None:
            self.obj.reference(symbol)


# ---------------------------------------------------------------------------
# lexical helpers
# ---------------------------------------------------------------------------

def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        if ch in "#;" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _in_quotes(line: str, before: str) -> bool:
    index = line.find(before)
    return index >= 0 and line[:index].count('"') % 2 == 1


def _is_label(text: str) -> bool:
    if not text:
        return False
    return (text[0].isalpha() or text[0] in "._$") and all(
        ch.isalnum() or ch in "._$" for ch in text
    )


def _split_commas(text: str) -> List[str]:
    if not text.strip():
        return []
    parts: List[str] = []
    depth = 0
    in_string = False
    current = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if ch == "(" and not in_string:
            depth += 1
        if ch == ")" and not in_string:
            depth -= 1
        if ch == "," and depth == 0 and not in_string:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    parts.append("".join(current).strip())
    return [p for p in parts if p]


def _looks_numeric(text: str) -> bool:
    text = text.strip()
    if not text:
        return False
    if text[0] in "+-":
        text = text[1:]
    return text[:2].lower() == "0x" or text[:1].isdigit() or (
        len(text) >= 3 and text[0] == "'"
    )


def _parse_number(text: str, line: int) -> int:
    text = text.strip()
    try:
        if len(text) >= 3 and text.startswith("'") and text.endswith("'"):
            body = text[1:-1]
            if body == "\\n":
                return 10
            if body == "\\t":
                return 9
            if body == "\\0":
                return 0
            if len(body) == 1:
                return ord(body)
            raise ValueError(text)
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad number {text!r}", line) from None


def _split_sym_addend(text: str, line: int) -> Tuple[str, int]:
    text = text.strip()
    for sep in "+-":
        index = text.rfind(sep)
        if index > 0:
            symbol = text[:index].strip()
            if not _is_label(symbol):
                continue
            addend = _parse_number(text[index:].replace(" ", ""), line)
            return symbol, addend
    if not _is_label(text):
        raise AssemblerError(f"bad symbol reference {text!r}", line)
    return text, 0


def _parse_string(text: str, line: int) -> str:
    if len(text) < 2 or not text.startswith('"') or not text.endswith('"'):
        raise AssemblerError(f"bad string literal {text}", line)
    body = text[1:-1]
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            escape = body[i + 1]
            mapped = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\",
                      '"': '"'}.get(escape)
            if mapped is None:
                raise AssemblerError(f"bad escape \\{escape}", line)
            out.append(mapped)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)
