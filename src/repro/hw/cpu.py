"""The CPU interpreter with precise, restartable faults.

The interpreter executes one instruction per :meth:`Cpu.step`. All memory
accesses go through the attached :class:`~repro.vm.AddressSpace`; a
:class:`~repro.vm.PageFaultError` propagates out of ``step`` *before* any
architectural state (registers, PC) is updated, so the kernel can run a
user-level fault handler and simply re-execute the instruction — the
mechanism Hemlock's lazy linking and pointer chasing depend on.

Traps (syscall, break, divide-by-zero) are also raised as exceptions; the
kernel services them and advances the PC itself.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import (
    AlignmentError,
    ExecutionBudgetExceeded,
    InvalidInstructionError,
)
from repro.util.bits import sign_extend, to_signed32
from repro.vm.address_space import PROT_EXEC, AddressSpace
from repro.vm.layout import PAGE_SHIFT, PAGE_SIZE
from repro.hw import isa

_WORD = struct.Struct("<I")
_PAGE_MASK = PAGE_SIZE - 1


class Trap(Exception):
    """A synchronous event requiring kernel service."""

    def __init__(self, pc: int) -> None:
        super().__init__(f"{type(self).__name__} at pc=0x{pc:08x}")
        self.pc = pc


class SyscallTrap(Trap):
    """The program executed ``syscall``."""


class BreakTrap(Trap):
    """The program executed ``break`` (used as an explicit halt/abort)."""


class ArithmeticTrap(Trap):
    """Integer divide or remainder by zero."""


_MASK32 = 0xFFFFFFFF


class Cpu:
    """One simulated processor context.

    Register state lives here; memory lives in the attached address
    space, which the kernel swaps on context switch along with the
    register file (see :mod:`repro.kernel.process`).
    """

    def __init__(self, address_space: Optional[AddressSpace] = None) -> None:
        self.regs: List[int] = [0] * 32
        self.pc = 0
        self.address_space = address_space
        self.instructions_executed = 0
        # Decoded-instruction cache traffic (the caches themselves live
        # on the frames; see repro.vm.pages.Frame.decode).
        self.decode_hits = 0
        self.decode_misses = 0

    # ------------------------------------------------------------------
    # register helpers
    # ------------------------------------------------------------------

    def get_reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index != isa.REG_ZERO:
            self.regs[index] = value & _MASK32

    def snapshot_regs(self) -> List[int]:
        return list(self.regs)

    def restore_regs(self, saved: List[int]) -> None:
        self.regs[:] = saved

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one instruction.

        Raises :class:`PageFaultError` with the PC still pointing at the
        faulting instruction, or a :class:`Trap` for syscall/break/divide
        faults. On normal completion the PC has advanced.
        """
        space = self.address_space
        if space is None:
            raise InvalidInstructionError(self.pc, 0)
        pc = self.pc
        if pc & 3:
            raise AlignmentError(pc, 4)
        entry = space.tlb.get(pc >> PAGE_SHIFT)
        if entry is not None and entry[1] & PROT_EXEC:
            # TLB hit on an executable page: fetch straight from the
            # frame and reuse (or fill) its decoded-instruction cache.
            space.tlb_hits += 1
            decode = entry[2].decode
            offset = pc & _PAGE_MASK
            decoded = decode.get(offset)
            if decoded is None:
                word = _WORD.unpack_from(entry[0], offset)[0]
                decoded = (word, (word >> 26) & 0x3F, (word >> 21) & 31,
                           (word >> 16) & 31)
                decode[offset] = decoded
                self.decode_misses += 1
            else:
                self.decode_hits += 1
            if space.smp is not None:
                # SMP shadow bookkeeping: this core now holds decoded
                # instructions of this frame, so a cross-core store to
                # it must be accounted as a decode shootdown.
                entry[2].decode_cores.add(space.core)
            word, op, rs, rt = decoded
        else:
            word = space.fetch_word(pc)
            op = (word >> 26) & 0x3F
            rs = (word >> 21) & 31
            rt = (word >> 16) & 31
        regs = self.regs
        next_pc = (pc + 4) & _MASK32

        if op == isa.OP_SPECIAL:
            rd = (word >> 11) & 31
            funct = word & 0x3F
            if funct == isa.FN_ADD:
                value = (regs[rs] + regs[rt]) & _MASK32
            elif funct == isa.FN_SUB:
                value = (regs[rs] - regs[rt]) & _MASK32
            elif funct == isa.FN_AND:
                value = regs[rs] & regs[rt]
            elif funct == isa.FN_OR:
                value = regs[rs] | regs[rt]
            elif funct == isa.FN_XOR:
                value = regs[rs] ^ regs[rt]
            elif funct == isa.FN_NOR:
                value = ~(regs[rs] | regs[rt]) & _MASK32
            elif funct == isa.FN_SLT:
                value = 1 if to_signed32(regs[rs]) < to_signed32(regs[rt]) \
                    else 0
            elif funct == isa.FN_SLTU:
                value = 1 if regs[rs] < regs[rt] else 0
            elif funct == isa.FN_MUL:
                value = (to_signed32(regs[rs]) * to_signed32(regs[rt])) \
                    & _MASK32
            elif funct == isa.FN_DIV:
                if regs[rt] == 0:
                    raise ArithmeticTrap(pc)
                quotient = int(to_signed32(regs[rs]) / to_signed32(regs[rt]))
                value = quotient & _MASK32
            elif funct == isa.FN_REM:
                if regs[rt] == 0:
                    raise ArithmeticTrap(pc)
                a, b = to_signed32(regs[rs]), to_signed32(regs[rt])
                value = (a - int(a / b) * b) & _MASK32
            elif funct == isa.FN_SLL:
                value = (regs[rt] << ((word >> 6) & 31)) & _MASK32
            elif funct == isa.FN_SRL:
                value = regs[rt] >> ((word >> 6) & 31)
            elif funct == isa.FN_SRA:
                value = (to_signed32(regs[rt]) >> ((word >> 6) & 31)) \
                    & _MASK32
            elif funct == isa.FN_SLLV:
                value = (regs[rt] << (regs[rs] & 31)) & _MASK32
            elif funct == isa.FN_SRLV:
                value = regs[rt] >> (regs[rs] & 31)
            elif funct == isa.FN_SRAV:
                value = (to_signed32(regs[rt]) >> (regs[rs] & 31)) \
                    & _MASK32
            elif funct == isa.FN_JR:
                target = regs[rs]
                if target & 3:
                    raise AlignmentError(target, 4)
                self.pc = target
                self.instructions_executed += 1
                return
            elif funct == isa.FN_JALR:
                target = regs[rs]
                if target & 3:
                    raise AlignmentError(target, 4)
                self.set_reg(rd, next_pc)
                self.pc = target
                self.instructions_executed += 1
                return
            elif funct == isa.FN_SYSCALL:
                raise SyscallTrap(pc)
            elif funct == isa.FN_BREAK:
                raise BreakTrap(pc)
            else:
                raise InvalidInstructionError(pc, word)
            self.set_reg(rd, value)
            self.pc = next_pc
            self.instructions_executed += 1
            return

        if op == isa.OP_REGIMM:
            offset = sign_extend(word & 0xFFFF, 16) << 2
            value = to_signed32(regs[rs])
            taken = value < 0 if rt == isa.RT_BLTZ else value >= 0
            self.pc = (next_pc + offset) & _MASK32 if taken else next_pc
            self.instructions_executed += 1
            return

        if op in (isa.OP_J, isa.OP_JAL):
            target = isa.jump_target(pc, word & 0x3FFFFFF)
            if op == isa.OP_JAL:
                self.set_reg(isa.REG_RA, next_pc)
            self.pc = target
            self.instructions_executed += 1
            return

        imm = word & 0xFFFF
        simm = sign_extend(imm, 16)

        if op == isa.OP_BEQ or op == isa.OP_BNE:
            taken = (regs[rs] == regs[rt]) == (op == isa.OP_BEQ)
            self.pc = (next_pc + (simm << 2)) & _MASK32 if taken else next_pc
            self.instructions_executed += 1
            return
        if op == isa.OP_BLEZ or op == isa.OP_BGTZ:
            value = to_signed32(regs[rs])
            taken = value <= 0 if op == isa.OP_BLEZ else value > 0
            self.pc = (next_pc + (simm << 2)) & _MASK32 if taken else next_pc
            self.instructions_executed += 1
            return

        if op == isa.OP_ADDI:
            self.set_reg(rt, (regs[rs] + simm) & _MASK32)
        elif op == isa.OP_SLTI:
            self.set_reg(rt, 1 if to_signed32(regs[rs]) < simm else 0)
        elif op == isa.OP_SLTIU:
            self.set_reg(rt, 1 if regs[rs] < (simm & _MASK32) else 0)
        elif op == isa.OP_ANDI:
            self.set_reg(rt, regs[rs] & imm)
        elif op == isa.OP_ORI:
            self.set_reg(rt, regs[rs] | imm)
        elif op == isa.OP_XORI:
            self.set_reg(rt, regs[rs] ^ imm)
        elif op == isa.OP_LUI:
            self.set_reg(rt, (imm << 16) & _MASK32)
        elif op == isa.OP_LW:
            address = (regs[rs] + simm) & _MASK32
            if address & 3:
                raise AlignmentError(address, 4)
            self.set_reg(rt, space.load_word(address))
        elif op == isa.OP_LH or op == isa.OP_LHU:
            address = (regs[rs] + simm) & _MASK32
            if address & 1:
                raise AlignmentError(address, 2)
            value = space.load_half(address)
            if op == isa.OP_LH:
                value = sign_extend(value, 16) & _MASK32
            self.set_reg(rt, value)
        elif op == isa.OP_LB or op == isa.OP_LBU:
            address = (regs[rs] + simm) & _MASK32
            value = space.load_byte(address)
            if op == isa.OP_LB:
                value = sign_extend(value, 8) & _MASK32
            self.set_reg(rt, value)
        elif op == isa.OP_SW:
            address = (regs[rs] + simm) & _MASK32
            if address & 3:
                raise AlignmentError(address, 4)
            space.store_word(address, regs[rt])
        elif op == isa.OP_SH:
            address = (regs[rs] + simm) & _MASK32
            if address & 1:
                raise AlignmentError(address, 2)
            space.write_bytes(
                address, (regs[rt] & 0xFFFF).to_bytes(2, "little")
            )
        elif op == isa.OP_SB:
            address = (regs[rs] + simm) & _MASK32
            space.write_bytes(address, bytes([regs[rt] & 0xFF]))
        else:
            raise InvalidInstructionError(pc, word)

        self.pc = next_pc
        self.instructions_executed += 1

    def run(self, max_instructions: int = 1_000_000) -> None:
        """Step until a trap or fault propagates, or the budget runs out.

        Convenience for bare-metal tests that run without a kernel.
        """
        for _ in range(max_instructions):
            self.step()
        raise ExecutionBudgetExceeded(
            f"no trap within {max_instructions} instructions "
            f"(pc=0x{self.pc:08x})"
        )
