"""Instruction-set definition: encodings, register names, disassembly.

32-bit fixed-width instructions, little-endian in memory. Three formats:

* R-type: ``op=0 | rs | rt | rd | shamt | funct``
* I-type: ``op | rs | rt | imm16``
* J-type: ``op | target26``

Branches use a signed 16-bit *word* offset relative to the instruction
after the branch. Jumps replace the low 28 bits of the next PC, keeping
the top 4 bits — the R3000 region limit central to §3 of the paper.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.bits import sign_extend

# ---------------------------------------------------------------------------
# registers
# ---------------------------------------------------------------------------

REG_NAMES: List[str] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
]

REG_ZERO = 0
REG_AT = 1
REG_V0 = 2
REG_V1 = 3
REG_A0 = 4
REG_A1 = 5
REG_A2 = 6
REG_A3 = 7
REG_GP = 28
REG_SP = 29
REG_FP = 30
REG_RA = 31

_REG_NUMBERS: Dict[str, int] = {}
for _i, _name in enumerate(REG_NAMES):
    _REG_NUMBERS[_name] = _i
    _REG_NUMBERS[f"r{_i}"] = _i
    _REG_NUMBERS[f"${_name}"] = _i
    _REG_NUMBERS[f"${_i}"] = _i


def register_number(name: str) -> int:
    """Resolve a register name (``a0``, ``$a0``, ``r4``, ``$4``) to 0..31."""
    try:
        return _REG_NUMBERS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register {name!r}") from None


# ---------------------------------------------------------------------------
# opcodes and functs
# ---------------------------------------------------------------------------

OP_SPECIAL = 0x00
OP_REGIMM = 0x01
OP_J = 0x02
OP_JAL = 0x03
OP_BEQ = 0x04
OP_BNE = 0x05
OP_BLEZ = 0x06
OP_BGTZ = 0x07
OP_ADDI = 0x08
OP_SLTI = 0x0A
OP_SLTIU = 0x0B
OP_ANDI = 0x0C
OP_ORI = 0x0D
OP_XORI = 0x0E
OP_LUI = 0x0F
OP_LB = 0x20
OP_LH = 0x21
OP_LW = 0x23
OP_LBU = 0x24
OP_LHU = 0x25
OP_SB = 0x28
OP_SH = 0x29
OP_SW = 0x2B

FN_SLL = 0x00
FN_SRL = 0x02
FN_SRA = 0x03
FN_SLLV = 0x04
FN_SRLV = 0x06
FN_SRAV = 0x07
FN_JR = 0x08
FN_JALR = 0x09
FN_SYSCALL = 0x0C
FN_BREAK = 0x0D
FN_MUL = 0x18
FN_DIV = 0x1A
FN_REM = 0x1B
FN_ADD = 0x20
FN_SUB = 0x22
FN_AND = 0x24
FN_OR = 0x25
FN_XOR = 0x26
FN_NOR = 0x27
FN_SLT = 0x2A
FN_SLTU = 0x2B

RT_BLTZ = 0x00
RT_BGEZ = 0x01

JUMP_REGION_BITS = 28  # j/jal reach: 2**28 bytes = 256 MiB


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

def encode_r(funct: int, rd: int = 0, rs: int = 0, rt: int = 0,
             shamt: int = 0) -> int:
    """Encode an R-type instruction."""
    return ((rs & 31) << 21) | ((rt & 31) << 16) | ((rd & 31) << 11) \
        | ((shamt & 31) << 6) | (funct & 0x3F)


def encode_i(op: int, rs: int = 0, rt: int = 0, imm: int = 0) -> int:
    """Encode an I-type instruction (immediate truncated to 16 bits)."""
    return ((op & 0x3F) << 26) | ((rs & 31) << 21) | ((rt & 31) << 16) \
        | (imm & 0xFFFF)


def encode_j(op: int, target26: int) -> int:
    """Encode a J-type instruction from a pre-shifted 26-bit field."""
    return ((op & 0x3F) << 26) | (target26 & 0x3FFFFFF)


def jump_field(address: int) -> int:
    """The 26-bit field encoding *address* (must be word-aligned)."""
    return (address >> 2) & 0x3FFFFFF


def jump_target(pc: int, target26: int) -> int:
    """Resolve a J-type field at *pc* to an absolute target address."""
    return ((pc + 4) & 0xF0000000) | (target26 << 2)


def jump_reachable(pc: int, target: int) -> bool:
    """True if a j/jal at *pc* can reach *target* (same 256 MiB region)."""
    return ((pc + 4) & 0xF0000000) == (target & 0xF0000000)


def branch_offset(pc: int, target: int) -> int:
    """Signed word offset for a branch at *pc* to *target*."""
    delta = target - (pc + 4)
    if delta % 4:
        raise ValueError("branch target not word aligned")
    return delta >> 2


# ---------------------------------------------------------------------------
# disassembly
# ---------------------------------------------------------------------------

_R_NAMES = {
    FN_SLL: "sll", FN_SRL: "srl", FN_SRA: "sra",
    FN_SLLV: "sllv", FN_SRLV: "srlv", FN_SRAV: "srav",
    FN_JR: "jr", FN_JALR: "jalr", FN_SYSCALL: "syscall",
    FN_BREAK: "break", FN_MUL: "mul", FN_DIV: "div", FN_REM: "rem",
    FN_ADD: "add", FN_SUB: "sub", FN_AND: "and", FN_OR: "or",
    FN_XOR: "xor", FN_NOR: "nor", FN_SLT: "slt", FN_SLTU: "sltu",
}

_I_NAMES = {
    OP_BEQ: "beq", OP_BNE: "bne", OP_BLEZ: "blez", OP_BGTZ: "bgtz",
    OP_ADDI: "addi", OP_SLTI: "slti", OP_SLTIU: "sltiu",
    OP_ANDI: "andi", OP_ORI: "ori", OP_XORI: "xori", OP_LUI: "lui",
    OP_LB: "lb", OP_LH: "lh", OP_LW: "lw", OP_LBU: "lbu", OP_LHU: "lhu",
    OP_SB: "sb", OP_SH: "sh", OP_SW: "sw",
}

_LOADSTORE_OPS = {OP_LB, OP_LH, OP_LW, OP_LBU, OP_LHU, OP_SB, OP_SH, OP_SW}
_BRANCH2_OPS = {OP_BEQ, OP_BNE}
_BRANCH1_OPS = {OP_BLEZ, OP_BGTZ}


def disassemble_word(word: int, pc: int = 0) -> str:
    """Best-effort one-line disassembly of *word* at address *pc*."""
    op = (word >> 26) & 0x3F
    rs = (word >> 21) & 31
    rt = (word >> 16) & 31
    rd = (word >> 11) & 31
    shamt = (word >> 6) & 31
    funct = word & 0x3F
    imm = word & 0xFFFF
    simm = sign_extend(imm, 16)
    n = REG_NAMES

    if word == 0:
        return "nop"
    if op == OP_SPECIAL:
        name = _R_NAMES.get(funct)
        if name is None:
            return f".word 0x{word:08x}"
        if funct in (FN_SLL, FN_SRL, FN_SRA):
            return f"{name} {n[rd]}, {n[rt]}, {shamt}"
        if funct in (FN_SLLV, FN_SRLV, FN_SRAV):
            return f"{name} {n[rd]}, {n[rt]}, {n[rs]}"
        if funct == FN_JR:
            return f"jr {n[rs]}"
        if funct == FN_JALR:
            return f"jalr {n[rd]}, {n[rs]}"
        if funct in (FN_SYSCALL, FN_BREAK):
            return name
        return f"{name} {n[rd]}, {n[rs]}, {n[rt]}"
    if op == OP_REGIMM:
        target = pc + 4 + (simm << 2)
        name = "bltz" if rt == RT_BLTZ else "bgez"
        return f"{name} {n[rs]}, 0x{target:x}"
    if op in (OP_J, OP_JAL):
        target = jump_target(pc, word & 0x3FFFFFF)
        return f"{'j' if op == OP_J else 'jal'} 0x{target:x}"
    name = _I_NAMES.get(op)
    if name is None:
        return f".word 0x{word:08x}"
    if op in _BRANCH2_OPS:
        target = pc + 4 + (simm << 2)
        return f"{name} {n[rs]}, {n[rt]}, 0x{target:x}"
    if op in _BRANCH1_OPS:
        target = pc + 4 + (simm << 2)
        return f"{name} {n[rs]}, 0x{target:x}"
    if op == OP_LUI:
        return f"lui {n[rt]}, 0x{imm:x}"
    if op in _LOADSTORE_OPS:
        return f"{name} {n[rt]}, {simm}({n[rs]})"
    if op in (OP_ANDI, OP_ORI, OP_XORI):
        return f"{name} {n[rt]}, {n[rs]}, 0x{imm:x}"
    return f"{name} {n[rt]}, {n[rs]}, {simm}"
