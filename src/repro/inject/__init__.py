"""repro.inject — deterministic, seed-driven fault injection.

Named injection planes sit at the four choke points Hemlock's
correctness argument rests on (syscall dispatch, page-fault delivery,
SFS/VFS I/O, and linker resolution). A :class:`FaultPlan` installed on a
kernel decides — under a seeded RNG — when each plane misbehaves, and
every trigger is recorded as an ``EventKind.INJECT`` trace event, so an
identical seed and plan set reproduce a bit-identical fault schedule.
See DESIGN.md §8.
"""

from repro.inject.injector import (
    CAMPAIGN,
    Injector,
    InjectStats,
    attach_kernel,
    cancel_injection,
    install_injector,
    remove_injector,
    request_injection,
)
from repro.inject.plan import FaultKind, FaultPlan, Plane

__all__ = [
    "CAMPAIGN",
    "FaultKind",
    "FaultPlan",
    "Injector",
    "InjectStats",
    "Plane",
    "attach_kernel",
    "cancel_injection",
    "install_injector",
    "remove_injector",
    "request_injection",
]
