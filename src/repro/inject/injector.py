"""The injector: seeded, deterministic fault decisions at the planes.

Design constraints, mirroring :mod:`repro.trace`:

1. **Zero perturbation when absent.** Every choke point costs one
   ``injector is not None`` attribute check when no injector is
   installed; no simulated cycles are ever charged by the injector
   itself (retry *backoff* is charged by the retrying layer, which is a
   modelled cost of the hardened ``ldl``, not of injection).
2. **Deterministic.** Each installed plan gets its own
   :class:`~repro.util.rng.DeterministicRng` seeded from
   ``mix(injector_seed, plan_index)``; decisions depend only on the
   seed, the plan list, and the (deterministic) simulation itself, so
   identical seed + plans => a bit-identical ``EventKind.INJECT`` stream.
3. **Observable.** Every trigger emits one ``INJECT`` trace event
   (``name="plane:kind:site"``, ``value=`` running trigger count), and
   :class:`InjectStats` counts checks/matches/triggers/containments.

Arming, like tracing, is either explicit::

    injector = install_injector(kernel, [FaultPlan(...)], seed=7)

or ambient for every kernel booted after the request (what the
``reprochaos`` CLI does)::

    request_injection([FaultPlan(...)], seed=7)
    system = boot()     # Kernel.__init__ attaches a fresh injector
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.errors import (
    InjectedDiskFullError,
    InjectedFaultError,
    InjectedIOError,
    InjectedLinkError,
    InjectedModuleNotFoundError,
    InjectedSyscallError,
)
from repro.inject.plan import (
    READ_KINDS,
    WRITE_KINDS,
    FaultKind,
    FaultPlan,
    Plane,
)
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.util.rng import DeterministicRng
from repro.vm.faults import AccessKind, PageFaultError

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix(seed: int, index: int) -> int:
    """Derive a per-plan seed (splitmix64-style finalizer)."""
    x = (seed + (index + 1) * 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass
class InjectStats:
    """Counters the chaos campaigns and ``kernel.stats()`` report."""

    checked: int = 0       # decision-point evaluations with plans armed
    matched: int = 0       # predicate matches (eligible or not)
    triggered: int = 0     # faults actually injected
    contained: int = 0     # injected faults absorbed at a kernel boundary
    retries: int = 0       # transient faults absorbed by retry/backoff
    by_kind: Dict[str, int] = field(default_factory=dict)
    contained_by: Dict[str, int] = field(default_factory=dict)


class _PlanState:
    """Mutable per-boot decision state for one installed plan."""

    __slots__ = ("plan", "rng", "matched", "triggered")

    def __init__(self, plan: FaultPlan, rng: DeterministicRng) -> None:
        self.plan = plan
        self.rng = rng
        self.matched = 0
        self.triggered = 0


class Injector:
    """Seeded fault source attached to one booted kernel."""

    def __init__(self, kernel, plans: Sequence[FaultPlan] = (),
                 seed: int = 0) -> None:
        self.kernel = kernel
        self.seed = seed
        self.stats = InjectStats()
        self._installed = 0
        self._states: Dict[Plane, List[_PlanState]] = {
            plane: [] for plane in Plane
        }
        for plan in plans:
            self.install(plan)

    def install(self, plan: FaultPlan) -> None:
        """Arm *plan*. Each plan draws from its own derived-seed RNG so
        adding a plan never perturbs the decisions of earlier ones."""
        state = _PlanState(
            plan, DeterministicRng(_mix(self.seed, self._installed))
        )
        self._installed += 1
        self._states[plan.plane].append(state)

    def plans(self) -> List[FaultPlan]:
        return [state.plan
                for states in self._states.values() for state in states]

    def resume_from(self, previous: "Injector") -> None:
        """Adopt *previous*'s per-plan decision state.

        A machine reboot builds a fresh kernel and with it a fresh
        injector, but a fault campaign is scoped to the whole cluster
        run, not to one boot: ``after`` offsets, ``max_faults`` caps
        and the per-plan RNG streams must keep counting across the
        reboot, or a capped CRASH plan would re-arm every time its
        victim came back up. Only planes whose plan lists are identical
        are adopted — a differing list means the ambient campaign
        changed between the boots, and fresh state is the honest
        interpretation."""
        for plane, states in previous._states.items():
            mine = self._states[plane]
            if [s.plan for s in states] == [s.plan for s in mine]:
                self._states[plane] = states

    # ------------------------------------------------------------------
    # the decision core
    # ------------------------------------------------------------------

    def _decide(self, plane: Plane, site: str, subject: str, pid: int,
                kinds: Optional[FrozenSet[FaultKind]] = None,
                addr: int = 0) -> Optional[_PlanState]:
        """First plan that fires at this point, or None.

        Probability draws happen only for plans that pass every
        predicate, so unrelated operations never consume RNG state —
        that is what keeps streams identical across reruns even when a
        workload's *untargeted* operation mix varies by plan set.
        """
        states = self._states[plane]
        if not states:
            return None
        stats = self.stats
        stats.checked += 1
        for state in states:
            plan = state.plan
            if kinds is not None and plan.kind not in kinds:
                continue
            if plan.pid is not None and plan.pid != pid:
                continue
            if plan.site != "*" and not fnmatchcase(site, plan.site):
                continue
            if plan.match != "*" and not fnmatchcase(subject, plan.match):
                continue
            state.matched += 1
            stats.matched += 1
            if state.matched <= plan.after:
                continue
            if plan.max_faults is not None \
                    and state.triggered >= plan.max_faults:
                continue
            if plan.probability < 1.0 \
                    and state.rng.random() >= plan.probability:
                continue
            state.triggered += 1
            stats.triggered += 1
            key = f"{plane.value}:{plan.kind.value}"
            stats.by_kind[key] = stats.by_kind.get(key, 0) + 1
            tracer = _trace.TRACER
            if tracer.enabled:
                tracer.emit(EventKind.INJECT,
                            name=f"{key}:{site}", pid=pid, addr=addr,
                            value=stats.triggered)
            return state
        return None

    def _stamp(self, error: InjectedFaultError, plane: Plane, site: str,
               plan: FaultPlan) -> InjectedFaultError:
        error.plane = plane.value
        error.site = site
        error.fault_kind = plan.kind.value
        error.transient = plan.transient
        return error

    # ------------------------------------------------------------------
    # plane entry points
    # ------------------------------------------------------------------

    def on_syscall(self, proc, name: str) -> None:
        """Syscall plane: called from the trap site; may raise."""
        state = self._decide(Plane.SYSCALL, name, name, proc.pid)
        if state is None:
            return
        plan = state.plan
        raise self._stamp(
            InjectedSyscallError(plan.errno,
                                 f"injected {plan.errno} in {name}()"),
            Plane.SYSCALL, name, plan,
        )

    def filter_read(self, path: str, data: bytes,
                    site: str = "read", pid: int = 0) -> bytes:
        """IO plane, read side: may raise, truncate, or corrupt."""
        state = self._decide(Plane.IO, site, path, pid, kinds=READ_KINDS)
        if state is None:
            return data
        plan = state.plan
        if plan.kind is FaultKind.SHORT_READ:
            return data[:state.rng.randint(0, len(data) - 1)] \
                if data else data
        if plan.kind is FaultKind.CORRUPT:
            return self._corrupt(state, data)
        raise self._stamp(
            InjectedIOError(f"injected I/O error reading {path!r}"),
            Plane.IO, site, plan,
        )

    def filter_write(self, path: str, data: bytes, site: str = "write",
                     pid: int = 0):
        """IO plane, write side.

        Returns ``(data, pending_error)``: TORN_WRITE hands back the
        surviving prefix plus the error the caller must raise *after*
        persisting it (the torn-write contract: bytes hit the device,
        then the failure surfaces). ENOSPC and ERROR raise immediately.
        """
        state = self._decide(Plane.IO, site, path, pid, kinds=WRITE_KINDS)
        if state is None:
            return data, None
        plan = state.plan
        if plan.kind is FaultKind.ENOSPC:
            raise self._stamp(
                InjectedDiskFullError(
                    f"injected ENOSPC writing {path!r}"),
                Plane.IO, site, plan,
            )
        if plan.kind is FaultKind.TORN_WRITE:
            keep = state.rng.randint(0, max(len(data) - 1, 0))
            error = self._stamp(
                InjectedIOError(
                    f"injected torn write to {path!r} "
                    f"({keep}/{len(data)} bytes persisted)"),
                Plane.IO, site, plan,
            )
            return data[:keep], error
        if plan.kind is FaultKind.CORRUPT:
            return self._corrupt(state, data), None
        raise self._stamp(
            InjectedIOError(f"injected I/O error writing {path!r}"),
            Plane.IO, site, plan,
        )

    def _corrupt(self, state: _PlanState, data: bytes) -> bytes:
        if not data:
            return data
        mutable = bytearray(data)
        for _ in range(1 + state.rng.randint(0, 7)):
            position = state.rng.randint(0, len(mutable) - 1)
            mutable[position] ^= 1 << state.rng.randint(0, 7)
        return bytes(mutable)

    def on_sfs(self, site: str, subject: str) -> None:
        """IO plane at the SFS policy hooks: injected device-full."""
        state = self._decide(Plane.IO, site, subject, 0,
                             kinds=frozenset({FaultKind.ENOSPC}))
        if state is None:
            return
        raise self._stamp(
            InjectedDiskFullError(
                f"injected ENOSPC on the shared partition ({site})"),
            Plane.IO, site, state.plan,
        )

    def on_fault_delivery(self, proc, fault) -> bool:
        """VM plane, DROP kind: True = suppress handler resolution, so
        the fault stands as if no handler had resolved it."""
        state = self._decide(Plane.VMFAULT, "deliver",
                             f"0x{fault.address:08x}", proc.pid,
                             kinds=frozenset({FaultKind.DROP}),
                             addr=fault.address)
        return state is not None

    def on_access(self, space_name: str, address: int,
                  access: AccessKind) -> None:
        """VM plane, SPURIOUS kind: fault an access whose page is fine.

        Raised with ``present=True`` so neither the lazy linker nor the
        segment mapper claims it — the victim dies, the kernel survives.
        """
        state = self._decide(Plane.VMFAULT, access.value,
                             f"0x{address:08x}", 0,
                             kinds=frozenset({FaultKind.SPURIOUS}),
                             addr=address)
        if state is None:
            return
        fault = PageFaultError(address, access, present=True)
        fault.injected = True
        raise fault

    def on_disk_record(self, site: str, subject: str) -> bool:
        """Disk plane, CRASH kind at a journal-record boundary.

        True = the device loses power exactly as this record would be
        written: the record (and everything after it) never persists,
        pending writes resolve through the device's reorder window.
        """
        state = self._decide(Plane.DISK, site, subject, 0,
                             kinds=frozenset({FaultKind.CRASH}))
        return state is not None

    def filter_disk_write(self, subject: str, data: bytes,
                          site: str = "block-write"):
        """Disk plane, block-write side.

        Returns ``(data, action)`` — *action* is ``None`` (persist
        *data*, possibly torn/corrupted), ``"drop"`` (acknowledge but
        never persist), or ``"crash"`` (power loss at this write).
        """
        state = self._decide(
            Plane.DISK, site, subject, 0,
            kinds=frozenset({FaultKind.TORN_WRITE, FaultKind.DROP,
                             FaultKind.CORRUPT, FaultKind.CRASH}))
        if state is None:
            return data, None
        plan = state.plan
        if plan.kind is FaultKind.DROP:
            return data, "drop"
        if plan.kind is FaultKind.CRASH:
            return data, "crash"
        if plan.kind is FaultKind.TORN_WRITE:
            keep = state.rng.randint(0, max(len(data) - 1, 0))
            return data[:keep], None
        return self._corrupt(state, data), None

    def filter_disk_read(self, subject: str, data: bytes,
                         site: str = "block-read") -> bytes:
        """Disk plane, read side: bit-rot on the transferred block."""
        state = self._decide(Plane.DISK, site, subject, 0,
                             kinds=frozenset({FaultKind.CORRUPT}))
        if state is None:
            return data
        return self._corrupt(state, data)

    _NET_KINDS = frozenset({FaultKind.DROP, FaultKind.CORRUPT,
                            FaultKind.DUP, FaultKind.DELAY})

    def filter_frame(self, subject: str, data: bytes,
                     site: str = "send"):
        """Net plane: one frame crossing the simulated wire.

        *subject* is ``"src->dst:port"`` for fnmatch targeting. Returns
        ``(data, action)`` — *action* is ``None`` (deliver *data*,
        possibly corrupted), ``"drop"`` (the frame is lost), ``"dup"``
        (delivered twice), or ``("delay", rounds)`` (held back *rounds*
        extra scheduling rounds, drawn from the plan's RNG).
        """
        state = self._decide(Plane.NET, site, subject, 0,
                             kinds=self._NET_KINDS)
        if state is None:
            return data, None
        plan = state.plan
        if plan.kind is FaultKind.DROP:
            return data, "drop"
        if plan.kind is FaultKind.DUP:
            return data, "dup"
        if plan.kind is FaultKind.DELAY:
            return data, ("delay", state.rng.randint(1, 4))
        return self._corrupt(state, data), None

    _NODE_KINDS = frozenset({FaultKind.CRASH, FaultKind.WEDGE,
                             FaultKind.PARTITION, FaultKind.REBOOT})

    def on_node(self, site: str, subject: str,
                kinds: Optional[FrozenSet[FaultKind]] = None
                ) -> Optional[_PlanState]:
        """Node plane: one whole-machine failure decision point.

        Called by the cluster's HA manager once per scheduling round
        per live node (*site* ``"crash"``/``"wedge"``, *subject*
        ``"nodeN"``), per crashed node (*site* ``"reboot"``), and once
        per round for the cluster-wide partition draw (*site*
        ``"partition"``, *subject* ``"cluster"``). Returns the fired
        plan state — the caller reads ``state.plan.kind`` and draws
        window lengths / node splits from ``state.rng`` so failure
        schedules stay bit-identical per seed.
        """
        return self._decide(Plane.NODE, site, subject, 0,
                            kinds=kinds or self._NODE_KINDS)

    def on_link(self, proc, site: str, name: str,
                as_syscall: bool = False) -> None:
        """Linker plane: template loads, public mapping/creation, and
        (with ``as_syscall=True``) the address-based segment open, whose
        errors must travel the syscall errno path."""
        state = self._decide(Plane.LINKER, site, name,
                             proc.pid if proc is not None else 0)
        if state is None:
            return
        plan = state.plan
        if plan.kind is FaultKind.MISSING:
            raise self._stamp(
                InjectedModuleNotFoundError(name, ["<injected>"]),
                Plane.LINKER, site, plan,
            )
        if as_syscall:
            raise self._stamp(
                InjectedSyscallError(
                    plan.errno, f"injected {plan.errno} at {site}"),
                Plane.LINKER, site, plan,
            )
        raise self._stamp(
            InjectedLinkError(
                f"injected link failure at {site} for {name!r}"),
            Plane.LINKER, site, plan,
        )

    # ------------------------------------------------------------------
    # containment accounting
    # ------------------------------------------------------------------

    def note_contained(self, where: str) -> None:
        """An injected fault was absorbed at a kernel boundary (victim
        terminated, errno returned, fault declined) without escaping."""
        self.stats.contained += 1
        self.stats.contained_by[where] = \
            self.stats.contained_by.get(where, 0) + 1

    def note_retry(self) -> None:
        """A transient injected fault was absorbed by retry/backoff."""
        self.stats.retries += 1


# ----------------------------------------------------------------------
# explicit and ambient installation
# ----------------------------------------------------------------------

def install_injector(kernel, plans: Sequence[FaultPlan] = (),
                     seed: int = 0) -> Injector:
    """Attach a fresh injector to *kernel* and every plane under it."""
    injector = Injector(kernel, plans, seed=seed)
    kernel.injector = injector
    kernel.vfs.injector = injector
    kernel.sfs.injector = injector
    disk = getattr(kernel, "disk", None)
    if disk is not None:
        disk.device.injector = injector
    for proc in kernel.processes.values():
        proc.address_space.injector = injector
    return injector


def remove_injector(kernel) -> None:
    """Detach the kernel's injector; all planes fall silent."""
    kernel.injector = None
    kernel.vfs.injector = None
    kernel.sfs.injector = None
    disk = getattr(kernel, "disk", None)
    if disk is not None:
        disk.device.injector = None
    for proc in kernel.processes.values():
        proc.address_space.injector = None


# Armed configuration consumed by every Kernel boot until cancelled
# (unlike tracing, a soak campaign arms *all* boots, not just the next).
_PENDING: Optional[dict] = None

#: Injectors created while armed, oldest first — the campaign record.
CAMPAIGN: List[Injector] = []


def request_injection(plans: Iterable[FaultPlan], seed: int = 0) -> None:
    """Arm injection for every kernel booted until
    :func:`cancel_injection`; each boot gets a fresh injector with the
    same plans and seed (so reruns of a script are bit-identical)."""
    global _PENDING
    _PENDING = {"plans": tuple(plans), "seed": seed}
    CAMPAIGN.clear()


def cancel_injection() -> None:
    """Disarm :func:`request_injection` (existing kernels keep theirs)."""
    global _PENDING
    _PENDING = None


def attach_kernel(kernel) -> None:
    """Called from ``Kernel.__init__``: honour an armed request."""
    if _PENDING is None:
        return
    CAMPAIGN.append(
        install_injector(kernel, _PENDING["plans"], _PENDING["seed"])
    )
