"""Fault plans: *what* to inject, *where*, and *when*.

A :class:`FaultPlan` is a pure, reusable specification — it carries no
run-time state, so the same plan object can arm many booted kernels (the
``reprochaos`` soak loop does exactly that). All mutable decision state
(the per-plan RNG, match and trigger counters) lives in the injector
that installs the plan.

Planes name the four choke points the paper's mechanisms depend on:

* ``SYSCALL`` — the trap in :meth:`repro.kernel.syscalls.Syscalls._syscall`;
* ``VMFAULT`` — page-fault raising and delivery in the VM/kernel;
* ``IO``      — VFS open-file reads/writes plus the SFS capacity hooks;
* ``LINKER``  — template loads, public-module mapping/creation, and the
  address-based segment open;
* ``DISK``    — the durable block store: per-block writes and reads plus
  the journal-record boundaries (crash-at-record);
* ``NET``     — the simulated cluster fabric: frames on the wire may be
  dropped, duplicated, delayed, or bit-flipped;
* ``NODE``    — whole-machine failures in a cluster: a node crashes
  (losing volatile state), its network daemon wedges for a window, the
  fabric partitions into seeded halves, or a crashed node reboots from
  its durable disk volume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional


class Plane(enum.Enum):
    """A named injection choke point."""

    SYSCALL = "syscall"
    VMFAULT = "vmfault"
    IO = "io"
    LINKER = "linker"
    DISK = "disk"
    NET = "net"
    NODE = "node"

    @classmethod
    def parse(cls, name: str) -> "Plane":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            known = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown injection plane {name!r} (known: {known})"
            )


class FaultKind(enum.Enum):
    """What goes wrong when a plan triggers."""

    ERROR = "error"            # the operation fails with a typed error
    SHORT_READ = "short-read"  # a read returns fewer bytes than asked
    TORN_WRITE = "torn-write"  # a write persists a prefix, then errors
    ENOSPC = "enospc"          # a write/create hits a full device
    CORRUPT = "corrupt"        # transferred bytes are bit-flipped
    MISSING = "missing"        # a module lookup reports not-found
    DROP = "drop"              # a fault delivery / block write is dropped
    SPURIOUS = "spurious"      # an access faults although the page is fine
    CRASH = "crash"            # power loss at a journal-record boundary
    DUP = "dup"                # a network frame is delivered twice
    DELAY = "delay"            # a network frame is held back extra rounds
    WEDGE = "wedge"            # a node's netd stops draining for a window
    PARTITION = "partition"    # the fabric splits into two node sets
    REBOOT = "reboot"          # a crashed node boots from its disk volume


#: Which kinds make sense on which plane (validated at construction).
VALID_KINDS = {
    Plane.SYSCALL: frozenset({FaultKind.ERROR}),
    Plane.VMFAULT: frozenset({FaultKind.DROP, FaultKind.SPURIOUS}),
    Plane.IO: frozenset({FaultKind.ERROR, FaultKind.SHORT_READ,
                         FaultKind.TORN_WRITE, FaultKind.ENOSPC,
                         FaultKind.CORRUPT}),
    Plane.LINKER: frozenset({FaultKind.ERROR, FaultKind.MISSING}),
    Plane.DISK: frozenset({FaultKind.TORN_WRITE, FaultKind.DROP,
                           FaultKind.CORRUPT, FaultKind.CRASH}),
    Plane.NET: frozenset({FaultKind.DROP, FaultKind.CORRUPT,
                          FaultKind.DUP, FaultKind.DELAY}),
    Plane.NODE: frozenset({FaultKind.CRASH, FaultKind.WEDGE,
                           FaultKind.PARTITION, FaultKind.REBOOT}),
}

#: Kind subsets each entry point accepts (a read site never sees ENOSPC).
READ_KINDS: FrozenSet[FaultKind] = frozenset(
    {FaultKind.ERROR, FaultKind.SHORT_READ, FaultKind.CORRUPT})
WRITE_KINDS: FrozenSet[FaultKind] = frozenset(
    {FaultKind.ERROR, FaultKind.TORN_WRITE, FaultKind.ENOSPC,
     FaultKind.CORRUPT})


@dataclass(frozen=True)
class FaultPlan:
    """One armed fault source.

    Attributes:
        plane: which choke point the plan watches.
        kind: what happens when it triggers.
        match: fnmatch pattern over the operation's subject — a path,
            syscall/module name, or ``0x%08x`` address for the VM plane.
        site: fnmatch pattern over the site label within the plane
            (``open``, ``read``, ``write``, ``map_public``, ...).
        pid: restrict to one process, or None for any.
        probability: chance an eligible match triggers, drawn from the
            plan's seeded deterministic RNG (1.0 = always).
        max_faults: stop triggering after this many faults (None = no cap).
        after: skip this many eligible matches before the first trigger.
        errno: symbolic errno carried by ERROR faults on the syscall plane.
        transient: mark faults as retry-absorbable; ``ldl``'s bounded
            deterministic backoff (and the runtime's segment mapper) will
            retry transient faults instead of surfacing them.
    """

    plane: Plane
    kind: FaultKind
    match: str = "*"
    site: str = "*"
    pid: Optional[int] = None
    probability: float = 1.0
    max_faults: Optional[int] = None
    after: int = 0
    errno: str = "EIO"
    transient: bool = False

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS[self.plane]:
            allowed = ", ".join(sorted(
                k.value for k in VALID_KINDS[self.plane]))
            raise ValueError(
                f"fault kind {self.kind.value!r} is not valid on the "
                f"{self.plane.value!r} plane (valid: {allowed})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.max_faults is not None and self.max_faults <= 0:
            raise ValueError("max_faults must be positive")

    def describe(self) -> str:
        """One-line rendering for CLI output."""
        bits = [f"{self.plane.value}:{self.kind.value}"]
        if self.site != "*":
            bits.append(f"site={self.site}")
        if self.match != "*":
            bits.append(f"match={self.match}")
        if self.pid is not None:
            bits.append(f"pid={self.pid}")
        if self.probability < 1.0:
            bits.append(f"p={self.probability:g}")
        if self.max_faults is not None:
            bits.append(f"max={self.max_faults}")
        if self.after:
            bits.append(f"after={self.after}")
        if self.transient:
            bits.append("transient")
        return " ".join(bits)
