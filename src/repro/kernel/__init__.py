"""The simulated Unix kernel.

Provides what Hemlock's user-level machinery needs from IRIX: processes
with ``fork``/``exec``, a syscall layer over the VFS, signal delivery
with restartable faults (SIGSEGV in particular), mmap/munmap/mprotect,
the new address↔path translation calls, advisory file locks, pipes and
message queues (the baselines shared memory is compared against), a
deterministic round-robin scheduler, and a cycle-accounting clock.
"""

from repro.kernel.timing import Clock, CostModel
from repro.kernel.signals import Signal, SigInfo
from repro.kernel.process import Process, ProcessState, NativeContext
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Syscalls

__all__ = [
    "Clock",
    "CostModel",
    "Signal",
    "SigInfo",
    "Process",
    "ProcessState",
    "NativeContext",
    "Kernel",
    "Syscalls",
]
