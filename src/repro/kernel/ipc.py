"""Message queues and pipes — the kernel IPC Hemlock is compared against.

§1 claim 4: "When supported by hardware, shared memory is generally
faster than either messages or files, since operating system overhead
and copying costs can often be avoided." Experiment E5 measures exactly
that, so these baselines charge the honest costs: a syscall per
operation, a copy into the kernel and a copy out, plus queueing
overhead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.errors import SyscallError
from repro.kernel.sync import WouldBlock
from repro.trace import tracer as _trace
from repro.trace.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.process import Process

MAX_QUEUE_BYTES = 64 * 1024
PIPE_CAPACITY = 64 * 1024


class MessageQueue:
    """A System V-flavoured message queue (single message type)."""

    def __init__(self, key: int) -> None:
        self.key = key
        self.messages: Deque[bytes] = deque()
        self.bytes_queued = 0
        self.readers: List["Process"] = []  # blocked in msgrcv
        self.writers: List["Process"] = []  # blocked in msgsnd

    def send(self, process: "Process", data: bytes,
             blocking: bool = True) -> bool:
        if self.bytes_queued + len(data) > MAX_QUEUE_BYTES:
            if not blocking:
                return False
            self.writers.append(process)
            raise WouldBlock()
        self.messages.append(bytes(data))
        self.bytes_queued += len(data)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.IPC, name="msgsnd", pid=process.pid,
                        addr=self.key, value=len(data))
        return True

    def receive(self, process: "Process",
                blocking: bool = True) -> Optional[bytes]:
        if not self.messages:
            if not blocking:
                return None
            self.readers.append(process)
            raise WouldBlock()
        data = self.messages.popleft()
        self.bytes_queued -= len(data)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.IPC, name="msgrcv", pid=process.pid,
                        addr=self.key, value=len(data))
        return data


class MessageQueueTable:
    """msgget-style registry by integer key."""

    def __init__(self) -> None:
        self._queues: Dict[int, MessageQueue] = {}

    def get(self, key: int, create: bool = True) -> MessageQueue:
        queue = self._queues.get(key)
        if queue is None:
            if not create:
                raise SyscallError("ENOENT", f"no message queue {key}")
            queue = MessageQueue(key)
            self._queues[key] = queue
        return queue

    def remove(self, key: int) -> None:
        self._queues.pop(key, None)

    def drained(self) -> bool:
        """True when no queue holds an undelivered message (the cluster
        scheduler's quiescence check)."""
        return all(not q.messages for q in self._queues.values())

    def backlog(self) -> int:
        """Total undelivered messages across every queue (the cluster
        scheduler's progress signature)."""
        return sum(len(q.messages) for q in self._queues.values())


class Pipe:
    """A byte-stream pipe with bounded buffering."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.read_open = True
        self.write_open = True
        self.readers: List["Process"] = []
        self.writers: List["Process"] = []

    def write(self, process: "Process", data: bytes,
              blocking: bool = True) -> int:
        if not self.read_open:
            raise SyscallError("EPIPE", "read end closed")
        space = PIPE_CAPACITY - len(self.buffer)
        if space <= 0:
            if not blocking:
                return 0
            self.writers.append(process)
            raise WouldBlock()
        chunk = data[:space]
        self.buffer.extend(chunk)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.IPC, name="pipe-write",
                        pid=process.pid, value=len(chunk))
        return len(chunk)

    def read(self, process: "Process", length: int,
             blocking: bool = True) -> Optional[bytes]:
        if not self.buffer:
            if not self.write_open:
                return b""
            if not blocking:
                return None
            self.readers.append(process)
            raise WouldBlock()
        chunk = bytes(self.buffer[:length])
        del self.buffer[:length]
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.IPC, name="pipe-read",
                        pid=process.pid, value=len(chunk))
        return chunk
