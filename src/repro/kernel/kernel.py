"""The kernel proper: boot, processes, scheduling, fault delivery.

Boot assembles the machine: physical memory, a root file system, the
shared file system mounted at ``/shared`` (the special partition of §3),
the syscall layer, lock/semaphore/message tables, and the clock.

Scheduling is deterministic round-robin. Machine processes run a fixed
instruction quantum; native processes run to their next ``yield``. A
page fault suspends the faulting instruction, delivers SIGSEGV through
the process's handler chain (the Hemlock runtime installs the handler
that implements lazy linking and pointer chasing), and — if some handler
resolves it — restarts the instruction. Unresolved faults kill the
process, exactly as an unhandled SIGSEGV would.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.errors import (
    HardwareError,
    InjectedFaultError,
    KernelError,
    NoSuchProcessError,
    SimulationError,
    SyscallError,
)
from repro.fs.filesystem import Filesystem
from repro.fs.vfs import Vfs
from repro.inject import injector as _inject
from repro.hw.cpu import ArithmeticTrap, BreakTrap, Cpu, SyscallTrap
from repro.kernel.ipc import MessageQueueTable
from repro.kernel.loader import load_executable
from repro.kernel.process import (
    NativeBody,
    NativeContext,
    Process,
    ProcessState,
)
from repro.kernel.signals import SigInfo, Signal
from repro.kernel.smp import SmpCoordinator
from repro.kernel.sync import FileLockTable, SemaphoreTable, WouldBlock
from repro.kernel.syscalls import Syscalls
from repro.kernel.timing import Clock, CostModel
from repro.objfile.format import ObjectFile
from repro.sfs.addrmap import AddressMap
from repro.sfs.sharedfs import SharedFilesystem
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.vm.address_space import AddressSpace
from repro.vm.faults import PageFaultError
from repro.vm.pages import PhysicalMemory

DEFAULT_QUANTUM = 2000          # instructions per machine-process slice
MAX_FAULT_RETRIES = 64          # same instruction faulting repeatedly
SFS_MOUNT = "/shared"


class Kernel:
    """One booted instance of the simulated system."""

    def __init__(self, addrmap: Optional[AddressMap] = None,
                 costs: Optional[CostModel] = None,
                 max_frames: Optional[int] = None,
                 wide_addresses: bool = False,
                 disk=None, ncores: Optional[int] = None) -> None:
        self.physmem = PhysicalMemory(**(
            {"max_frames": max_frames} if max_frames else {}
        ))
        self.clock = Clock(costs or CostModel())
        # The simulated CPU count (repro.smp). None consults the
        # ambient REPRO_CORES so every boot in a process — including
        # the ones tools like reprorr make internally — runs SMP; the
        # default stays 1, where self.smp is None and the classic
        # uniprocessor scheduler runs completely unchanged.
        if ncores is None:
            ncores = int(os.environ.get("REPRO_CORES", "1") or "1")
        self.ncores = max(1, ncores)
        self.clock.ncores = self.ncores
        self.smp = SmpCoordinator(self, self.ncores) \
            if self.ncores > 1 else None
        self.rootfs = Filesystem(self.physmem, name="rootfs")
        if wide_addresses:
            # The paper's 64-bit future work (§3): per-inode address
            # fields, a B-tree reverse map, relaxed limits.
            from repro.sfs.sfs64 import SharedFilesystem64

            self.sfs = SharedFilesystem64(self.physmem)
        else:
            self.sfs = SharedFilesystem(self.physmem, addrmap=addrmap)
        self.wide_addresses = wide_addresses
        self.vfs = Vfs(self.rootfs)
        self.sfs_mount = SFS_MOUNT
        self.vfs.mount(SFS_MOUNT, self.sfs)
        self.syscalls = Syscalls(self)
        self.locks = FileLockTable()
        self.semaphores = SemaphoreTable()
        self.queues = MessageQueueTable()
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._runqueue: List[int] = []
        self._wait_blocked: set = set()
        self.quantum = DEFAULT_QUANTUM
        # Hooks the runtime package registers at import/attach time so
        # exec can wire crt0/ldl without a kernel->runtime dependency.
        self.on_exec: Optional[Callable[[Process, ObjectFile], None]] = None
        # The fault injector (repro.inject). None keeps every plane
        # silent at the cost of one attribute check per choke point.
        self.injector = None
        # The cluster half (repro.net): this machine's NIC, node id,
        # and coherence agent. All None/0 on a single-machine boot, so
        # the classic configuration pays one attribute check per public
        # fault and nothing else.
        self.nic = None
        self.node_id = 0
        self.coherence = None
        # The cluster's HA manager (repro.net.ha), shared by every
        # member kernel when the cluster arms it; None otherwise.
        self.ha = None
        # The race/heap sanitizer (repro.sanitize). None keeps every
        # choke point at one attribute check.
        self.sanitizer = None
        # An armed ambient tracer (reprotrace, REPRO_TRACE=1) binds to
        # this kernel's clock; otherwise this is a no-op.
        _trace.attach_kernel(self)
        # An armed injection campaign (reprochaos) attaches a fresh,
        # identically seeded injector to every boot.
        _inject.attach_kernel(self)
        # An armed recording (reprorr) checkpoints this kernel
        # periodically via the clock's checkpoint hook. Imported lazily
        # for the same reason as repro.disk below: repro.rr pulls in
        # the disk image layer, which imports this module.
        from repro.rr import recorder as _rr_recorder

        _rr_recorder.attach_kernel(self)
        # An armed sanitize request (reprosan, REPRO_SAN=1) joins this
        # kernel to the shared race/heap sanitizer. Imported lazily:
        # repro.sanitize imports the VM layout and sfs modules.
        from repro.sanitize import ambient as _san_ambient

        _san_ambient.attach_kernel(self)
        # The durable store (repro.disk). A blank device is formatted;
        # anything else is recovered — committed journal transactions
        # replayed, the torn tail discarded, the addr↔inode table
        # rebuilt. None keeps the classic all-volatile configuration.
        self.disk = None
        self.recovery = None
        if disk is not None:
            from repro.disk.mount import DiskStore

            self.disk = DiskStore.attach(self, disk)
            self.recovery = self.disk.recovery
        else:
            # An armed durable campaign (reprochaos --crash) attaches a
            # fresh device to every boot, like injection and tracing.
            # Imported lazily: repro.disk pulls in repro.analyze, which
            # itself imports this module.
            from repro.disk import ambient as _disk_ambient

            _disk_ambient.attach_kernel(self)
            if self.disk is not None:
                self.recovery = self.disk.recovery

    def is_public_address(self, address: int) -> bool:
        """Does *address* fall in this machine's public region?

        The public region is the shared file system's: the 1 GiB window
        of the 32-bit prototype, or everything above 4 GiB in the
        64-bit configuration.
        """
        return self.sfs.region.contains(address)

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def _allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _bind_core(self, proc: Process) -> None:
        """Pin *proc* (and its address space) to its home core.

        Placement is the pure function ``pid % ncores`` — work lands on
        the same core in every run, which is half of what makes the SMP
        schedule deterministic (the other half is the round barrier).
        """
        smp = self.smp
        proc.core = proc.pid % self.ncores
        space = proc.address_space
        space.core = proc.core
        space.smp = smp

    def create_native_process(self, name: str, body: NativeBody,
                              uid: int = 0,
                              env: Optional[Dict[str, str]] = None,
                              cwd: str = "/") -> Process:
        """Create a native (Python-bodied) process, runnable immediately."""
        pid = self._allocate_pid()
        space = AddressSpace(self.physmem, name=f"pid{pid}")
        space.injector = self.injector
        proc = Process(pid, 0, uid, space, name)
        self._bind_core(proc)
        proc.native = NativeContext(body)
        proc.environ = dict(env or {})
        proc.cwd = cwd
        self.processes[pid] = proc
        self._runqueue.append(pid)
        if self.sanitizer is not None:
            self.sanitizer.register_process(self, proc)
        return proc

    def create_machine_process(self, name: str, image: ObjectFile,
                               uid: int = 0,
                               env: Optional[Dict[str, str]] = None,
                               cwd: str = "/") -> Process:
        """Create a machine process and exec *image* into it."""
        pid = self._allocate_pid()
        space = AddressSpace(self.physmem, name=f"pid{pid}")
        space.injector = self.injector
        proc = Process(pid, 0, uid, space, name)
        self._bind_core(proc)
        proc.cpu = Cpu(space)
        proc.environ = dict(env or {})
        proc.cwd = cwd
        self.processes[pid] = proc
        self._runqueue.append(pid)
        if self.sanitizer is not None:
            self.sanitizer.register_process(self, proc)
        self.exec_image(proc, image)
        return proc

    def spawn(self, path: str, name: Optional[str] = None, uid: int = 0,
              env: Optional[Dict[str, str]] = None,
              cwd: str = "/") -> Process:
        """Create a machine process from an executable *file* — the
        exec-from-filesystem path a shell would take."""
        data = self.vfs.read_whole(path, uid, cwd=cwd)
        image = ObjectFile.from_bytes(data)
        return self.create_machine_process(
            name or path.rsplit("/", 1)[-1], image, uid=uid, env=env,
            cwd=cwd,
        )

    def exec_image(self, proc: Process, image: ObjectFile) -> None:
        """Load *image* into *proc* (whose address space must be fresh)."""
        load_executable(proc, image)
        if self.on_exec is not None:
            self.on_exec(proc, image)

    def fork(self, proc: Process) -> Process:
        """Hemlock fork (§5): private mappings copied copy-on-write,
        public (shared) mappings shared; identical CPU state, child
        sees return value 0."""
        if proc.cpu is None:
            raise KernelError(
                "fork is only supported for machine processes; native "
                "bodies cannot be cloned — spawn a new process instead"
            )
        pid = self._allocate_pid()
        child_space = proc.address_space.fork(name=f"pid{pid}")
        child_space.injector = self.injector
        child = Process(pid, proc.pid, proc.uid, child_space,
                        f"{proc.name}:child")
        self._bind_core(child)
        child.cpu = Cpu(child_space)
        child.cpu.regs[:] = proc.cpu.regs
        child.cpu.pc = proc.cpu.pc
        child.environ = dict(proc.environ)
        child.cwd = proc.cwd
        child.brk = proc.brk
        child.runtime = proc.runtime
        # Parent and child share open file descriptions, like Unix.
        child.fds = dict(proc.fds)
        for handle in child.fds.values():
            handle.refcount += 1
        child._next_fd = proc._next_fd
        child.signal_handlers = {
            sig: list(handlers)
            for sig, handlers in proc.signal_handlers.items()
        }
        self.processes[pid] = child
        self._runqueue.append(pid)
        # The child comes out of fork with v0 = 0 and the PC past the
        # syscall; the parent's return is patched by the dispatcher.
        from repro.hw import isa

        child.cpu.set_reg(isa.REG_V0, 0)
        child.cpu.set_reg(isa.REG_V1, 0)
        child.cpu.pc += 4
        if self.sanitizer is not None:
            self.sanitizer.on_fork(self, proc, child)
        return child

    def terminate(self, proc: Process, code: int,
                  reason: Optional[str] = None) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_exit(self, proc)
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = code
        proc.death_reason = reason
        for handle in proc.fds.values():
            handle.refcount -= 1
        proc.fds.clear()
        proc.address_space.destroy()
        # Wake a parent blocked in wait(2), if any.
        parent = self.processes.get(proc.ppid)
        if parent is not None and parent.pid in self._wait_blocked \
                and parent.state is ProcessState.BLOCKED:
            self._wait_blocked.discard(parent.pid)
            self.wake(parent)

    def register_waiter(self, proc: Process) -> None:
        """Mark *proc* as about to block in wait(2)."""
        self._wait_blocked.add(proc.pid)

    def process(self, pid: int) -> Process:
        proc = self.processes.get(pid)
        if proc is None:
            raise NoSuchProcessError(f"no process {pid}")
        return proc

    # ------------------------------------------------------------------
    # faults and signals
    # ------------------------------------------------------------------

    def deliver_fault(self, proc: Process, fault: PageFaultError) -> bool:
        """Run the SIGSEGV handler chain; True if some handler resolved
        the fault (the faulting access should be retried)."""
        self.clock.page_fault()
        tracer = _trace.TRACER
        injector = self.injector
        if injector is not None and injector.on_fault_delivery(proc, fault):
            # DROP: resolution is suppressed; the fault stands exactly
            # as if every handler had declined it.
            injector.note_contained("fault-drop")
            if tracer.enabled:
                tracer.emit(EventKind.FAULT, name="dropped",
                            pid=proc.pid, addr=fault.address)
            return False
        info = SigInfo(Signal.SIGSEGV, address=fault.address,
                       access=fault.access,
                       pc=proc.cpu.pc if proc.cpu else 0,
                       present=fault.present)
        for handler in list(proc.signal_handlers.get(Signal.SIGSEGV, [])):
            self.clock.signal()
            if tracer.enabled:
                tracer.emit(EventKind.SIGNAL, name="SIGSEGV",
                            pid=proc.pid, addr=fault.address)
            if handler(proc, info):
                if tracer.enabled:
                    tracer.emit(EventKind.FAULT, name="resolved",
                                pid=proc.pid, addr=fault.address)
                return True
        if tracer.enabled:
            tracer.emit(EventKind.FAULT, name="unresolved",
                        pid=proc.pid, addr=fault.address)
        return False

    def run_with_faults(self, proc: Process, operation: Callable[[], object],
                        retries: int = MAX_FAULT_RETRIES) -> object:
        """Run *operation* (a memory access on behalf of *proc*),
        transparently resolving faults through the handler chain.

        This is the native-process analogue of instruction restart: the
        typed views in :mod:`repro.runtime.views` route every load and
        store through here.
        """
        for _ in range(retries):
            try:
                return operation()
            except PageFaultError as fault:
                if not self.deliver_fault(proc, fault):
                    raise
        raise KernelError(
            f"fault loop: {retries} consecutive faults at the same access"
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def wake(self, proc: Process) -> None:
        if proc.state is ProcessState.BLOCKED:
            proc.state = ProcessState.READY
            proc.block_reason = None
            proc.block_object = None

    def _block(self, proc: Process, reason: str) -> None:
        proc.state = ProcessState.BLOCKED
        proc.block_reason = reason

    def runnable(self) -> List[Process]:
        return [self.processes[pid] for pid in self._runqueue
                if pid in self.processes
                and self.processes[pid].state is ProcessState.READY]

    def schedule(self, max_slices: int = 100000) -> None:
        """Round-robin until every process exits (or deadlock)."""
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.schedule_begin(self)
        try:
            self._schedule(max_slices)
        finally:
            if sanitizer is not None:
                sanitizer.schedule_end(self)

    def _schedule(self, max_slices: int) -> None:
        if self.smp is not None:
            self.smp.schedule(max_slices)
            return
        slices = 0
        while True:
            ready = self.runnable()
            if not ready:
                blocked = [p for pid in self._runqueue
                           for p in [self.processes.get(pid)]
                           if p is not None
                           and p.state is ProcessState.BLOCKED]
                if blocked:
                    names = ", ".join(p.name for p in blocked)
                    raise KernelError(f"deadlock: blocked forever: {names}")
                return
            for proc in ready:
                slices += 1
                if slices > max_slices:
                    raise KernelError("scheduler slice budget exhausted")
                self.run_slice(proc)
                self.clock.context_switch()

    def run_until_exit(self, proc: Process,
                       max_slices: int = 100000) -> int:
        """Schedule until *proc* exits; returns its exit code."""
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.schedule_begin(self)
        try:
            return self._run_until_exit(proc, max_slices)
        finally:
            if sanitizer is not None:
                sanitizer.schedule_end(self)

    def _run_until_exit(self, proc: Process, max_slices: int) -> int:
        if self.smp is not None:
            return self.smp.run_until_exit(proc, max_slices)
        slices = 0
        while proc.alive:
            ready = self.runnable()
            if not ready:
                raise KernelError(
                    f"{proc.name} cannot finish: nothing is runnable"
                )
            for candidate in ready:
                slices += 1
                if slices > max_slices:
                    raise KernelError("scheduler slice budget exhausted")
                self.run_slice(candidate)
                self.clock.context_switch()
                if not proc.alive:
                    break
        assert proc.exit_code is not None
        return proc.exit_code

    def run_slice(self, proc: Process) -> None:
        """Run one scheduling quantum of *proc*."""
        if proc.state is not ProcessState.READY:
            return
        tracer = _trace.TRACER
        if tracer.enabled:
            with tracer.span(EventKind.SWITCH, name=proc.name,
                             pid=proc.pid):
                self._dispatch_slice(proc)
        else:
            self._dispatch_slice(proc)

    def _dispatch_slice(self, proc: Process) -> None:
        if proc.cpu is not None:
            self._run_machine_slice(proc)
        else:
            self._run_native_slice(proc)

    def _run_machine_slice(self, proc: Process) -> None:
        cpu = proc.cpu
        assert cpu is not None
        start = cpu.instructions_executed
        if self._run_machine_chunk(proc, start, self.quantum):
            self.clock.instructions(cpu.instructions_executed - start)

    def _run_machine_chunk(self, proc: Process, start: int,
                           target: int) -> bool:
        """Step *proc* until it has executed *target* instructions past
        *start*, leaves READY, or hits a slice-ending trap.

        Returns False when the quantum ended on a path that does not
        charge executed instructions (blocked in a syscall, or killed by
        a fault/trap); True otherwise — the caller charges the executed
        count when the whole quantum is done. The SMP scheduler calls
        this with sub-quantum targets; because the instruction counter
        only advances on a successful step (which also resets the fault
        streak), a chunk boundary never lands mid-fault-retry, making
        chunked execution bit-identical to one uninterrupted slice.
        """
        cpu = proc.cpu
        fault_streak = 0
        while cpu.instructions_executed - start < target \
                and proc.state is ProcessState.READY:
            try:
                cpu.step()
                fault_streak = 0
            except SyscallTrap:
                try:
                    self.syscalls.dispatch_machine(proc)
                except WouldBlock:
                    self._block(proc, "syscall")
                    return False
            except PageFaultError as fault:
                if self.deliver_fault(proc, fault):
                    fault_streak += 1
                    if fault_streak > MAX_FAULT_RETRIES:
                        self.terminate(
                            proc, -1,
                            reason=f"fault loop at 0x{fault.address:08x}",
                        )
                        return False
                    continue  # restart the faulting instruction
                if getattr(fault, "injected", False):
                    self.note_contained(fault, "spurious-fault")
                detail = ""
                pending = getattr(proc, "pending_fault_error", None)
                if pending is not None:
                    detail = f" [{type(pending).__name__}: {pending}]"
                    proc.pending_fault_error = None
                self.terminate(
                    proc, -1,
                    reason=f"unhandled SIGSEGV at 0x{fault.address:08x} "
                           f"({fault.access.value}, pc=0x{cpu.pc:08x})"
                           f"{detail}",
                )
                return False
            except BreakTrap:
                self.terminate(proc, -1, reason="break instruction")
                return False
            except ArithmeticTrap:
                self.terminate(proc, -1, reason="SIGFPE: divide by zero")
                return False
            except HardwareError as error:
                self.terminate(proc, -1, reason=f"SIGILL: {error}")
                return False
        return True

    def _run_native_slice(self, proc: Process) -> None:
        ctx = proc.native
        assert ctx is not None
        if ctx.generator is None:
            ctx.generator = ctx.body(self, proc)
        try:
            next(ctx.generator)
        except StopIteration as stop:
            ctx.result = stop.value
            if proc.alive:
                self.terminate(proc, 0)
        except WouldBlock:
            raise KernelError(
                f"native process {proc.name!r} hit a blocking kernel "
                f"operation mid-quantum; use the try_ variants and yield"
            )
        except SyscallError as error:
            self.note_contained(error, "native-terminate")
            self.terminate(proc, -1, reason=str(error))
        except PageFaultError as fault:
            if proc.alive:
                self.note_contained(fault, "native-terminate")
                self.terminate(
                    proc, -1,
                    reason=f"unhandled SIGSEGV at 0x{fault.address:08x}",
                )
        except SimulationError as error:
            if proc.alive:
                self.note_contained(error, "native-terminate")
                self.terminate(proc, -1, reason=f"{type(error).__name__}: "
                                                f"{error}")

    # ------------------------------------------------------------------
    # durability (repro.disk)
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Checkpoint the durable store (no-op when all-volatile).

        Also the only point at which segment bytes mutated through
        *memory stores* (not ``write``) become durable: the journal
        records file writes, but a mapped store hits the pages directly,
        and only a checkpoint captures pages wholesale.
        """
        if self.disk is not None:
            self.disk.checkpoint()

    def shutdown(self) -> None:
        """Clean shutdown: checkpoint and disarm journaling."""
        if self.disk is not None:
            self.disk.checkpoint()
            self.disk.detach()

    def crash(self) -> None:
        """Simulate power loss (resolves the device's pending-write
        window per its seed; everything after is silently lost)."""
        if self.disk is not None:
            self.disk.device.crash()

    # ------------------------------------------------------------------

    def note_contained(self, error, where: str) -> None:
        """Count an injected fault absorbed at a kernel boundary.

        A no-op for genuine (non-injected) errors and when no injector
        is installed; the fault-containment invariant the chaos suite
        asserts is ``triggered`` faults never escape the kernel, and
        these counters are its evidence.
        """
        injector = self.injector
        if injector is None:
            return
        if isinstance(error, InjectedFaultError) \
                or getattr(error, "injected", False):
            injector.note_contained(where)

    def stats(self) -> str:
        alive = sum(1 for p in self.processes.values() if p.alive)
        extra = ""
        if self.injector is not None:
            counts = self.injector.stats
            extra = (f" injected={counts.triggered} "
                     f"contained={counts.contained}")
        if self.recovery is not None:
            extra += (f" recovered_txns={self.recovery.replayed_txns} "
                      f"discarded_records="
                      f"{self.recovery.discarded_records} "
                      f"segments={self.recovery.addrmap_segments}")
        if self.sanitizer is not None:
            counts = self.sanitizer.stats
            extra += (f" san_races={counts.races} "
                      f"san_heap={counts.heap_findings}")
        return (
            f"processes={len(self.processes)} (alive {alive}) "
            f"frames={self.physmem.allocated} cycles={self.clock.cycles}"
            f"{extra}"
        )
