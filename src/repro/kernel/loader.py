"""exec(): loading an ``lds``-produced executable into an address space.

The loader maps the main load image into the *private* portion of the
address space (Figure 3): text read-execute at its linked base, data +
bss + initial heap read-write, and a stack below the top of the stack
region. Public and dynamic modules are NOT the loader's business — the
special ``crt0`` start-up arranges for ``ldl`` (the lazy dynamic linker)
to bring those in at run time.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.objfile.format import ObjectFile, ObjectKind
from repro.util.bits import align_up
from repro.vm.address_space import (
    MAP_PRIVATE,
    PROT_RW,
    PROT_RX,
)
from repro.vm.layout import PAGE_SIZE, STACK_TOP
from repro.kernel.process import Process

STACK_SIZE = 256 * 1024
DEFAULT_HEAP_SIZE = 1 << 20


def load_executable(process: Process, image: ObjectFile) -> int:
    """Map *image* into *process* and return the entry address.

    The process must have a fresh (or cleared) address space; its CPU
    state is initialized (PC at entry, SP just below the stack top).
    """
    if image.kind is not ObjectKind.EXECUTABLE:
        raise KernelError(f"{image.name!r} is not an executable image")
    for required in ("text", "data"):
        if required not in image.layout:
            raise KernelError(f"{image.name!r} lacks a {required} layout")

    space = process.address_space

    text = image.layout["text"]
    text_len = align_up(max(text.size, 1), PAGE_SIZE)
    space.map(text.base, text_len, prot=PROT_RX, flags=MAP_PRIVATE,
              name=f"{image.name}:text")
    space.write_bytes(text.base, bytes(image.text), force=True)

    data = image.layout["data"]
    bss = image.layout.get("bss")
    data_end = data.base + data.size
    if bss is not None:
        data_end = max(data_end, bss.base + bss.size)
    heap_base = align_up(data_end, PAGE_SIZE)
    map_len = align_up(
        max(heap_base + DEFAULT_HEAP_SIZE - data.base, PAGE_SIZE), PAGE_SIZE
    )
    space.map(data.base, map_len, prot=PROT_RW, flags=MAP_PRIVATE,
              name=f"{image.name}:data+heap")
    space.write_bytes(data.base, bytes(image.data), force=True)
    process.brk = heap_base

    stack_base = STACK_TOP - STACK_SIZE
    space.map(stack_base, STACK_SIZE, prot=PROT_RW, flags=MAP_PRIVATE,
              name=f"{image.name}:stack")

    entry = _entry_address(image)
    if process.cpu is not None:
        process.cpu.pc = entry
        process.cpu.regs[29] = STACK_TOP - 16  # sp
        process.cpu.address_space = space
    return entry


def _entry_address(image: ObjectFile) -> int:
    name = image.entry_symbol or "main"
    symbol = image.symbols.get(name)
    if symbol is None or not symbol.defined:
        raise KernelError(f"{image.name!r} has no entry symbol {name!r}")
    return symbol.value
