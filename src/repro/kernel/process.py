"""Processes: protection domain + thread of control + kernel state.

Two flavours share the same kernel state (address space, fd table,
environment, signal handlers):

* **machine processes** execute simulated ISA code on a :class:`Cpu`;
  the scheduler steps them instruction by instruction;
* **native processes** are Python generator bodies standing in for
  compiled C programs (the rwho/xfig/Presto applications of §4). They
  interact with the kernel through :class:`~repro.kernel.syscalls.Syscalls`
  and touch shared memory through :mod:`repro.runtime.views`, which runs
  every access under the same fault-handler machinery machine code gets.
  ``yield`` marks their voluntary preemption points.

The paper's "process" is the traditional Unix notion (protection domain +
single thread), and so is ours.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.errors import SyscallError
from repro.fs.vfs import OpenFile
from repro.hw.cpu import Cpu
from repro.kernel.signals import SigInfo, Signal
from repro.vm.address_space import AddressSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

# A handler gets (process, siginfo) and says whether it resolved things.
SignalHandler = Callable[["Process", SigInfo], bool]

# A native process body: generator function over (kernel, process).
NativeBody = Callable[["Kernel", "Process"], Generator[None, None, object]]


class ProcessState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"


class NativeContext:
    """Execution context of a native (Python-bodied) process."""

    def __init__(self, body: NativeBody) -> None:
        self.body = body
        self.generator: Optional[Generator[None, None, object]] = None
        self.result: object = None


class Process:
    """One simulated process."""

    def __init__(self, pid: int, ppid: int, uid: int,
                 address_space: AddressSpace, name: str = "<proc>") -> None:
        self.pid = pid
        self.ppid = ppid
        self.uid = uid
        self.address_space = address_space
        self.name = name
        self.state = ProcessState.READY
        self.exit_code: Optional[int] = None
        self.death_reason: Optional[str] = None
        self.reaped = False  # wait() already collected this zombie
        self.cwd = "/"
        self.environ: Dict[str, str] = {}
        self.fds: Dict[int, OpenFile] = {}
        self._next_fd = 3
        # Signal handlers, innermost-first. The Hemlock runtime installs
        # its SIGSEGV handler at index 0; a program-provided handler
        # registered through the wrapped signal() call goes after it (§2).
        self.signal_handlers: Dict[Signal, List[SignalHandler]] = {}
        # Machine execution state (None for native processes).
        self.cpu: Optional[Cpu] = None
        # Native execution state (None for machine processes).
        self.native: Optional[NativeContext] = None
        # Program break for brk/sbrk.
        self.brk = 0
        # Per-process Hemlock runtime instance (set by repro.runtime).
        self.runtime: object = None
        # stdout bytes captured by the console device.
        self.stdout = bytearray()
        # What blocks us, if anything (lock inode, message queue, pid...).
        self.block_reason: Optional[str] = None
        self.block_object: object = None
        # Home core under repro.smp (pid % ncores, fixed for life;
        # always 0 on a uniprocessor boot).
        self.core = 0

    # ------------------------------------------------------------------
    # descriptors
    # ------------------------------------------------------------------

    def install_fd(self, handle: OpenFile) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self.fds[fd] = handle
        return fd

    def fd(self, number: int) -> OpenFile:
        handle = self.fds.get(number)
        if handle is None:
            raise SyscallError("EBADF", f"bad file descriptor {number}")
        return handle

    def close_fd(self, number: int) -> None:
        handle = self.fds.pop(number, None)
        if handle is None:
            raise SyscallError("EBADF", f"bad file descriptor {number}")
        handle.refcount -= 1

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def push_handler(self, signal: Signal, handler: SignalHandler) -> None:
        """Install *handler* ahead of existing ones for *signal*."""
        self.signal_handlers.setdefault(signal, []).insert(0, handler)

    def append_handler(self, signal: Signal, handler: SignalHandler) -> None:
        """Install *handler* after existing ones (program handlers go
        behind the runtime's, per the wrapped signal() call)."""
        self.signal_handlers.setdefault(signal, []).append(handler)

    def remove_handler(self, signal: Signal,
                       handler: SignalHandler) -> None:
        handlers = self.signal_handlers.get(signal, [])
        if handler in handlers:
            handlers.remove(handler)

    # ------------------------------------------------------------------

    @property
    def is_machine(self) -> bool:
        return self.cpu is not None

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.ZOMBIE

    def getenv(self, name: str, default: str = "") -> str:
        return self.environ.get(name, default)

    def setenv(self, name: str, value: str) -> None:
        self.environ[name] = value

    def stdout_text(self) -> str:
        return self.stdout.decode("latin-1")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "machine" if self.is_machine else "native"
        return (
            f"<Process pid={self.pid} {self.name!r} {kind} "
            f"{self.state.value}>"
        )
