"""Signals — just enough of them.

Hemlock needs SIGSEGV with restartable faults and the ability for the
runtime library to interpose on ``signal()`` so that a program-provided
handler still runs when the dynamic linking system cannot resolve a fault
(§2). Handlers are Python callables because the runtime library is the
simulation's "user-level C library"; they run logically in user space.

A handler receives ``(process, siginfo)`` and returns True if it resolved
the condition (the kernel then restarts the faulting instruction) or
False to decline (the kernel falls through to the next handler or to the
default action — process death).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.vm.faults import AccessKind


class Signal(enum.Enum):
    SIGSEGV = 11
    SIGBUS = 7
    SIGFPE = 8
    SIGILL = 4


@dataclass
class SigInfo:
    """Delivery context for a synchronous signal."""

    signal: Signal
    address: int = 0
    access: Optional[AccessKind] = None
    pc: int = 0
    present: bool = False  # mapped-but-protected vs not-mapped-at-all
