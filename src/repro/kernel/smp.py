"""repro.smp — deterministic round-based multi-core scheduling.

K simulated CPUs execute one global quantum schedule: each round, every
process that was runnable at the round boundary is planned onto its
home core (``pid % ncores``) in runqueue order, and the cores then
advance in lockstep *sub-slices* of :data:`SMP_SUBQUANTUM` instructions
— core 0 runs up to 250 instructions of its current process, then core
1, and so on, until every core has finished its plan. Kernel sync
primitives (semaphores, flock), message queues, and page faults are the
only cross-core ordering points, so public-segment interleavings are
real — two workers genuinely alternate stores within one scheduling
quantum — yet the whole execution is a pure function of
``(workload, ncores)``: same boot, same trace, same cycle totals,
every run.

The model follows the deterministic-parallelism literature (see
PAPERS.md: "Efficient System-Enforced Deterministic Parallelism"):
logical time advances in rounds; within a round cores are isolated
except at kernel-mediated communication, and the round barrier is where
the clock's parallel makespan (``Clock.elapsed``) advances by the
slowest core's work.

Single-core boots never construct a coordinator: ``Kernel.smp`` stays
``None`` and the classic scheduler runs byte-for-byte unchanged. A
coordinator forced onto a 1-core kernel (the differential oracle in
tests/test_smp.py does this) produces bit-identical events and cycles
to the classic scheduler — the chunked quantum below was built to make
that equivalence exact:

* instructions are charged once at the end of a process's quantum
  (never per chunk), and not at all when the quantum ends by blocking
  or a kill — exactly the classic ``_run_machine_slice`` contract;
* a chunk boundary can only fall immediately after a *successful*
  ``Cpu.step()`` (traps and faults do not advance the instruction
  counter), and a successful step resets the fault streak, so starting
  each chunk with a zero streak is exact, not approximate;
* the SWITCH span opens at quantum start and closes at quantum end
  (spans carry their entry cycle and emit one event on exit, so
  interleaved per-core spans need no nesting stack);
* one ``context_switch`` is charged per planned process — including
  processes that lost runnability before their turn — matching the
  classic scheduler's per-slice charge.

The coordinator also owns the cross-core invalidation ledger: TLB
shootdowns (a mapping change initiated while a *different* core is
executing must invalidate the owning core's cached translations) and
decoded-instruction shootdowns (a store to a text frame some other core
has executed from). Both are accounting over the existing invalidation
plumbing — the caches themselves are kept coherent by the same
clear-on-write protocol that serial boots use.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.errors import KernelError
from repro.kernel.process import Process, ProcessState
from repro.trace import tracer as _trace
from repro.trace.events import EventKind

#: Instructions one core executes before the next core gets the bus.
#: Small enough that processes on different cores genuinely interleave
#: within a scheduling quantum (the race corpus depends on it), large
#: enough that the host-side round overhead stays negligible.
SMP_SUBQUANTUM = 250


class _Quantum:
    """One core's in-flight scheduling quantum."""

    __slots__ = ("proc", "start", "span")

    def __init__(self, proc: Process, start: int, span) -> None:
        self.proc = proc
        self.start = start      # cpu.instructions_executed at entry
        self.span = span        # open SWITCH span, or None


class _SliceBudget:
    """The per-schedule() slice budget, shared by all cores."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def tick(self) -> None:
        self.used += 1
        if self.used > self.limit:
            raise KernelError("scheduler slice budget exhausted")


class SmpCoordinator:
    """The deterministic multi-core half of one kernel."""

    def __init__(self, kernel, ncores: int) -> None:
        if ncores < 1:
            raise KernelError(f"ncores must be >= 1, got {ncores}")
        self.kernel = kernel
        self.ncores = ncores
        self.subquantum = SMP_SUBQUANTUM
        self.rounds = 0
        #: cross-core TLB invalidations charged to each (victim) core
        self.tlb_shootdowns = {core: 0 for core in range(ncores)}
        #: cross-core decode-cache invalidations per (victim) core
        self.decode_shootdowns = {core: 0 for core in range(ncores)}

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def place(self, proc: Process) -> int:
        """Deterministic home core for *proc* (fixed for its lifetime)."""
        return proc.pid % self.ncores

    # ------------------------------------------------------------------
    # cross-core invalidation ledger
    # ------------------------------------------------------------------

    def tlb_shootdown(self, space, dropped: int, reason: str) -> None:
        """*dropped* translations of *space* (home core ``space.core``)
        were invalidated. Counts as a shootdown only when some *other*
        core initiated it mid-round; serial kernel work and a core
        invalidating its own translations are local."""
        current = self.kernel.clock.current_core
        if current is None or current == space.core or not dropped:
            return
        self.tlb_shootdowns[space.core] += dropped
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.TLB, name=f"shootdown:{reason}",
                        value=dropped)

    def decode_shootdown(self, frame) -> None:
        """A store is about to clear *frame*'s decoded-instruction
        cache; every core that executed from the frame since the last
        clear — except the storing core itself — takes one shootdown."""
        current = self.kernel.clock.current_core
        victims = [core for core in sorted(frame.decode_cores)
                   if core != current]
        if not victims:
            return
        for core in victims:
            self.decode_shootdowns[core] += 1
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.TLB, name="shootdown:decode",
                        value=len(victims))

    # ------------------------------------------------------------------
    # the round scheduler
    # ------------------------------------------------------------------

    def schedule(self, max_slices: int) -> None:
        """Rounds until every process exits (or deadlock)."""
        self._loop(_SliceBudget(max_slices), None)

    def run_until_exit(self, proc: Process, max_slices: int) -> int:
        """Rounds until *proc* exits; returns its exit code."""
        self._loop(_SliceBudget(max_slices), proc)
        assert proc.exit_code is not None
        return proc.exit_code

    def _loop(self, budget: _SliceBudget,
              stop_proc: Optional[Process]) -> None:
        kernel = self.kernel
        while True:
            if stop_proc is not None and not stop_proc.alive:
                return
            ready = kernel.runnable()
            if not ready:
                if stop_proc is not None:
                    raise KernelError(
                        f"{stop_proc.name} cannot finish: nothing is "
                        f"runnable"
                    )
                blocked = [p for pid in kernel._runqueue
                           for p in [kernel.processes.get(pid)]
                           if p is not None
                           and p.state is ProcessState.BLOCKED]
                if blocked:
                    names = ", ".join(p.name for p in blocked)
                    raise KernelError(f"deadlock: blocked forever: {names}")
                return
            self._run_round(ready, budget, stop_proc)

    def _run_round(self, ready: List[Process], budget: _SliceBudget,
                   stop_proc: Optional[Process]) -> None:
        kernel = self.kernel
        clock = kernel.clock
        self.rounds += 1
        clock.round_begin()
        plans = [deque() for _ in range(self.ncores)]
        for proc in ready:
            plans[proc.core].append(proc)
        active: List[Optional[_Quantum]] = [None] * self.ncores
        try:
            while True:
                progressed = False
                for core in range(self.ncores):
                    run = active[core]
                    if run is None:
                        run = self._begin_quantum(core, plans[core], budget)
                        active[core] = run
                        if run is None:
                            continue
                    progressed = True
                    if self._step_core(core, run):
                        active[core] = None
                        if stop_proc is not None and not stop_proc.alive:
                            return
                if not progressed:
                    return
        finally:
            # A round cut short (stop process died, budget exhausted)
            # leaves other cores mid-quantum: account their executed
            # instructions and close their spans so traces stay
            # well-formed; no context switch — the quantum never ended.
            clock.current_core = None
            for core in range(self.ncores):
                run = active[core]
                if run is not None:
                    self._abandon_quantum(core, run)
            clock.round_end()

    def _begin_quantum(self, core: int, plan,
                       budget: _SliceBudget) -> Optional[_Quantum]:
        """Pop the next runnable process off *plan* and open its
        quantum; returns None when the core is done for this round."""
        kernel = self.kernel
        clock = kernel.clock
        while plan:
            proc = plan.popleft()
            budget.tick()
            if proc.state is not ProcessState.READY:
                # It lost runnability since the round boundary (killed
                # or blocked by someone who ran earlier in the round).
                # The classic scheduler still charges the switch; so do
                # we, on this core's meter.
                clock.current_core = core
                try:
                    clock.context_switch()
                finally:
                    clock.current_core = None
                continue
            tracer = _trace.TRACER
            span = None
            if tracer.enabled:
                span = tracer.span(EventKind.SWITCH, name=proc.name,
                                   pid=proc.pid)
                span.__enter__()
            start = proc.cpu.instructions_executed \
                if proc.cpu is not None else 0
            return _Quantum(proc, start, span)
        return None

    def _step_core(self, core: int, run: _Quantum) -> bool:
        """Advance *core*'s quantum by one sub-slice; True when the
        quantum is over (the core should plan its next process)."""
        kernel = self.kernel
        clock = kernel.clock
        proc = run.proc
        clock.current_core = core
        try:
            if proc.cpu is None:
                # Native bodies run to their next yield — one atomic
                # sub-slice, like one slice under the classic scheduler.
                kernel._run_native_slice(proc)
                self._finish_quantum(run, charge=False)
                return True
            cpu = proc.cpu
            consumed = cpu.instructions_executed - run.start
            target = min(consumed + self.subquantum, kernel.quantum)
            charged = kernel._run_machine_chunk(proc, run.start, target)
            if not charged:
                # Blocked or killed on a trap path: the classic slice
                # returns without charging instructions here.
                self._finish_quantum(run, charge=False)
                return True
            if proc.state is not ProcessState.READY \
                    or cpu.instructions_executed - run.start \
                    >= kernel.quantum:
                self._finish_quantum(run, charge=True)
                return True
            return False
        finally:
            clock.current_core = None

    def _finish_quantum(self, run: _Quantum, charge: bool) -> None:
        """Close out a completed quantum (caller holds current_core)."""
        kernel = self.kernel
        if charge:
            cpu = run.proc.cpu
            kernel.clock.instructions(cpu.instructions_executed - run.start)
        if run.span is not None:
            run.span.__exit__(None, None, None)
        kernel.clock.context_switch()

    def _abandon_quantum(self, core: int, run: _Quantum) -> None:
        """Close out a quantum the round abandoned mid-flight."""
        clock = self.kernel.clock
        proc = run.proc
        if proc.cpu is not None:
            executed = proc.cpu.instructions_executed - run.start
            if executed:
                clock.current_core = core
                try:
                    clock.instructions(executed)
                finally:
                    clock.current_core = None
        if run.span is not None:
            run.span.__exit__(None, None, None)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot (tests and the shadow-model oracle)."""
        return {
            "ncores": self.ncores,
            "rounds": self.rounds,
            "tlb_shootdowns": dict(self.tlb_shootdowns),
            "decode_shootdowns": dict(self.decode_shootdowns),
        }
