"""Kernel synchronization: advisory file locks and semaphores.

``ldl`` "uses file locking to synchronize the creation of shared
segments" (§4, footnote 3); semaphores are the kernel-supported
mechanism §5's synchronization discussion starts from.

The scheduler is cooperative and deterministic: a process that cannot
take a lock is moved to BLOCKED and re-runs the blocking operation when
woken. Native (Python-bodied) processes run their kernel calls to
completion within a quantum, so for them a contended lock is reported
with an exception rather than a block — which the Hemlock runtime never
triggers, because its critical sections are quantum-atomic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import KernelError, SyscallError
from repro.fs.inode import Inode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.process import Process


class WouldBlock(Exception):
    """Internal: the current operation must block and be retried."""


class FileLockTable:
    """Whole-file advisory exclusive locks, keyed by inode."""

    def __init__(self) -> None:
        self._waiters: Dict[int, List["Process"]] = {}

    def acquire(self, process: "Process", inode: Inode,
                blocking: bool = True) -> bool:
        """Take the lock; True on success.

        On contention: False when non-blocking; raises :class:`WouldBlock`
        (after queueing the process) when blocking.
        """
        if inode.lock_owner is None or inode.lock_owner == process.pid:
            inode.lock_owner = process.pid
            return True
        if not blocking:
            return False
        self._waiters.setdefault(id(inode), []).append(process)
        raise WouldBlock()

    def release(self, process: "Process", inode: Inode) -> Optional["Process"]:
        """Drop the lock; returns the woken next owner, if any."""
        if inode.lock_owner != process.pid:
            raise SyscallError(
                "EPERM", f"pid {process.pid} does not hold the lock"
            )
        waiters = self._waiters.get(id(inode), [])
        if waiters:
            next_owner = waiters.pop(0)
            inode.lock_owner = next_owner.pid
            return next_owner
        inode.lock_owner = None
        return None

    def drop_all(self, process: "Process", inodes: List[Inode]) -> None:
        """Release every lock *process* holds (process exit cleanup)."""
        for inode in inodes:
            if inode.lock_owner == process.pid:
                self.release(process, inode)


class Semaphore:
    """A counting semaphore with a FIFO wait queue."""

    def __init__(self, key: int, value: int = 1) -> None:
        if value < 0:
            raise KernelError("semaphore initial value must be >= 0")
        self.key = key
        self.value = value
        self.waiters: List["Process"] = []
        # Hoare-style handoff: V transfers the count directly to a woken
        # waiter, so its retried P succeeds even if others run first.
        self._granted: set = set()

    def try_p(self, process: "Process") -> bool:
        """Non-blocking P; True on success."""
        if process.pid in self._granted:
            self._granted.discard(process.pid)
            return True
        if self.value > 0:
            self.value -= 1
            return True
        return False

    def p(self, process: "Process") -> None:
        """Blocking P: queue and raise :class:`WouldBlock` on contention."""
        if not self.try_p(process):
            self.waiters.append(process)
            raise WouldBlock()

    def v(self) -> Optional["Process"]:
        """V; returns a woken process (which owns the decrement), if any."""
        if self.waiters:
            woken = self.waiters.pop(0)
            self._granted.add(woken.pid)
            return woken
        self.value += 1
        return None


class SemaphoreTable:
    """semget-style registry of semaphores by integer key."""

    def __init__(self) -> None:
        self._sems: Dict[int, Semaphore] = {}

    def get(self, key: int, value: int = 1, create: bool = True) -> Semaphore:
        sem = self._sems.get(key)
        if sem is None:
            if not create:
                raise SyscallError("ENOENT", f"no semaphore with key {key}")
            sem = Semaphore(key, value)
            self._sems[key] = sem
        return sem

    def remove(self, key: int) -> None:
        self._sems.pop(key, None)
