"""Kernel synchronization: advisory file locks and semaphores.

``ldl`` "uses file locking to synchronize the creation of shared
segments" (§4, footnote 3); semaphores are the kernel-supported
mechanism §5's synchronization discussion starts from.

The scheduler is cooperative and deterministic: a process that cannot
take a lock is moved to BLOCKED and re-runs the blocking operation when
woken. Native (Python-bodied) processes run their kernel calls to
completion within a quantum, so for them a contended lock is reported
with an exception rather than a block — which the Hemlock runtime never
triggers, because its critical sections are quantum-atomic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import KernelError, SyscallError
from repro.fs.inode import Inode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.process import Process


class WouldBlock(Exception):
    """Internal: the current operation must block and be retried."""


class WaitQueue:
    """Deterministic FIFO wait queue with per-core arrival accounting.

    Under repro.smp, contended sleeps are one of the few cross-core
    ordering points, so the queue discipline must be a pure function of
    the schedule: every arrival is stamped with a queue-local monotonic
    sequence number, and wakeups hand off strictly in stamp order. The
    SMP round scheduler serializes kernel entry (sub-slices run in core
    order), so arrival stamps — and therefore handoff order — are
    identical on every run of the same ``(workload, ncores)``.

    ``enqueued_by_core`` keeps per-core contention counts for the
    introspection the SMP tests and benchmarks use; it never influences
    handoff order.
    """

    __slots__ = ("_entries", "_next_seq", "enqueued_by_core")

    def __init__(self) -> None:
        self._entries: List[tuple] = []   # (stamp, process), FIFO
        self._next_seq = 0
        self.enqueued_by_core: Dict[int, int] = {}

    def push(self, process: "Process") -> int:
        """Queue *process*; returns its arrival stamp."""
        stamp = self._next_seq
        self._next_seq += 1
        self._entries.append((stamp, process))
        core = getattr(process, "core", 0)
        self.enqueued_by_core[core] = \
            self.enqueued_by_core.get(core, 0) + 1
        return stamp

    def pop(self) -> "Process":
        """Dequeue the longest-waiting process."""
        return self._entries.pop(0)[1]

    def remove(self, process: "Process") -> bool:
        """Drop *process* wherever it is queued (exit cleanup)."""
        for index, (_, waiter) in enumerate(self._entries):
            if waiter is process:
                del self._entries[index]
                return True
        return False

    def procs(self) -> List["Process"]:
        return [proc for _, proc in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class FileLockTable:
    """Whole-file advisory exclusive locks, keyed by inode."""

    def __init__(self) -> None:
        self._waiters: Dict[int, WaitQueue] = {}

    def acquire(self, process: "Process", inode: Inode,
                blocking: bool = True) -> bool:
        """Take the lock; True on success.

        On contention: False when non-blocking; raises :class:`WouldBlock`
        (after queueing the process) when blocking.
        """
        if inode.lock_owner is None or inode.lock_owner == process.pid:
            inode.lock_owner = process.pid
            return True
        if not blocking:
            return False
        queue = self._waiters.get(id(inode))
        if queue is None:
            queue = self._waiters[id(inode)] = WaitQueue()
        queue.push(process)
        raise WouldBlock()

    def release(self, process: "Process", inode: Inode) -> Optional["Process"]:
        """Drop the lock; returns the woken next owner, if any."""
        if inode.lock_owner != process.pid:
            raise SyscallError(
                "EPERM", f"pid {process.pid} does not hold the lock"
            )
        queue = self._waiters.get(id(inode))
        if queue:
            next_owner = queue.pop()
            inode.lock_owner = next_owner.pid
            return next_owner
        inode.lock_owner = None
        return None

    def drop_all(self, process: "Process", inodes: List[Inode]) -> None:
        """Release every lock *process* holds (process exit cleanup)."""
        for inode in inodes:
            if inode.lock_owner == process.pid:
                self.release(process, inode)


class Semaphore:
    """A counting semaphore with a FIFO wait queue."""

    def __init__(self, key: int, value: int = 1) -> None:
        if value < 0:
            raise KernelError("semaphore initial value must be >= 0")
        self.key = key
        self.value = value
        self.waiters = WaitQueue()
        # Hoare-style handoff: V transfers the count directly to a woken
        # waiter, so its retried P succeeds even if others run first.
        self._granted: set = set()

    def try_p(self, process: "Process") -> bool:
        """Non-blocking P; True on success."""
        if process.pid in self._granted:
            self._granted.discard(process.pid)
            return True
        if self.value > 0:
            self.value -= 1
            return True
        return False

    def p(self, process: "Process") -> None:
        """Blocking P: queue and raise :class:`WouldBlock` on contention."""
        if not self.try_p(process):
            self.waiters.push(process)
            raise WouldBlock()

    def v(self) -> Optional["Process"]:
        """V; returns a woken process (which owns the decrement), if any."""
        if self.waiters:
            woken = self.waiters.pop()
            self._granted.add(woken.pid)
            return woken
        self.value += 1
        return None


class SemaphoreTable:
    """semget-style registry of semaphores by integer key."""

    def __init__(self) -> None:
        self._sems: Dict[int, Semaphore] = {}

    def get(self, key: int, value: int = 1, create: bool = True) -> Semaphore:
        sem = self._sems.get(key)
        if sem is None:
            if not create:
                raise SyscallError("ENOENT", f"no semaphore with key {key}")
            sem = Semaphore(key, value)
            self._sems[key] = sem
        return sem

    def remove(self, key: int) -> None:
        self._sems.pop(key, None)
