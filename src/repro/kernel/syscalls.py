"""The system-call layer.

:class:`Syscalls` is the kernel's service interface. Native processes
(and the Hemlock runtime library) call its methods directly, passing the
calling process; machine processes reach the same methods through the
register-based ABI decoded by :meth:`Syscalls.dispatch_machine`.

Every call charges the cost model, so IPC-versus-sharing comparisons
reflect the syscall and copying overheads the paper argues about.

Machine ABI: syscall number in ``v0``, arguments in ``a0..a3``, result in
``v0``, error flag in ``v1`` (0 on success, non-zero errno code).
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.errors import FilesystemError, SyscallError
from repro.fs.vfs import (
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    OpenFile,
)
from repro.hw import isa
from repro.kernel.process import Process
from repro.kernel.sync import WouldBlock
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.vm.address_space import MAP_SHARED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

# Machine syscall numbers.
SYS_EXIT = 1
SYS_WRITE = 2
SYS_READ = 3
SYS_OPEN = 4
SYS_CLOSE = 5
SYS_FORK = 6
SYS_GETPID = 7
SYS_SBRK = 8
SYS_WAIT = 9
SYS_MMAP = 10
SYS_MUNMAP = 11
SYS_MPROTECT = 12
SYS_SIGNAL = 13
SYS_PUTINT = 14
SYS_ADDR_TO_PATH = 20
SYS_OPEN_BY_ADDR = 21
SYS_FLOCK = 22
SYS_MSGGET = 23
SYS_MSGSND = 24
SYS_MSGRCV = 25
SYS_SEMGET = 26
SYS_SEMP = 27
SYS_SEMV = 28
SYS_GETENV = 30
SYS_UNLINK = 31
SYS_SYMLINK = 32
SYS_MKDIR = 33
SYS_STAT = 34
SYS_PLT_RESOLVE = 40  # jump-table baseline; see repro.linker.jumptable

FLOCK_EX = 1
FLOCK_UN = 2
FLOCK_TRY = 3

_ERRNO_CODES = {
    "EPERM": 1, "ENOENT": 2, "EINTR": 4, "EIO": 5, "EBADF": 9,
    "ECHILD": 10, "EAGAIN": 11, "EACCES": 13, "EFAULT": 14,
    "EEXIST": 17, "ENOTDIR": 20, "EISDIR": 21, "EINVAL": 22,
    "EFBIG": 27, "ENOSPC": 28, "EPIPE": 32, "ENAMETOOLONG": 36,
}


class Syscalls:
    """Kernel services, one method per call."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._warm_inodes: set = set()

    def _syscall(self, proc: Process, name: str) -> None:
        """Charge the trap cost and trace the call (entry/exit in one)."""
        self.kernel.clock.syscall()
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.SYSCALL, name=name, pid=proc.pid)
        injector = self.kernel.injector
        if injector is not None:
            # The trap already happened (and was charged); an armed
            # syscall plane may now fail the service itself.
            injector.on_syscall(proc, name)

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------

    def open(self, proc: Process, path: str, flags: int = O_RDONLY,
             mode: int = 0o644) -> int:
        self._syscall(proc, "open")
        handle = self.kernel.vfs.open(path, flags, proc.uid, mode,
                                      cwd=proc.cwd)
        self._charge_cold(proc, handle)
        return proc.install_fd(handle)

    def _charge_cold(self, proc: Process, handle: OpenFile) -> None:
        """First touch of a file pays a disk seek; later opens hit cache."""
        key = (id(handle.fs), handle.inode.number)
        if key not in self._warm_inodes:
            self._warm_inodes.add(key)
            self.kernel.clock.disk_seek()
            tracer = _trace.TRACER
            if tracer.enabled:
                tracer.emit(EventKind.DISK, name=handle.path,
                            pid=proc.pid, value=handle.inode.number)

    def close(self, proc: Process, fd: int) -> None:
        self._syscall(proc, "close")
        proc.close_fd(fd)

    def read(self, proc: Process, fd: int, length: int) -> bytes:
        self._syscall(proc, "read")
        data = proc.fd(fd).read(length)
        self.kernel.clock.file_io(len(data))
        return data

    def write(self, proc: Process, fd: int, data: bytes) -> int:
        self._syscall(proc, "write")
        if fd == 1:  # console
            proc.stdout.extend(data)
            return len(data)
        written = proc.fd(fd).write(data)
        self.kernel.clock.file_io(written)
        return written

    def pread(self, proc: Process, fd: int, offset: int,
              length: int) -> bytes:
        self._syscall(proc, "pread")
        data = proc.fd(fd).pread(offset, length)
        self.kernel.clock.file_io(len(data))
        return data

    def pwrite(self, proc: Process, fd: int, offset: int,
               data: bytes) -> int:
        self._syscall(proc, "pwrite")
        written = proc.fd(fd).pwrite(offset, data)
        self.kernel.clock.file_io(written)
        return written

    def lseek(self, proc: Process, fd: int, offset: int,
              whence: int = 0) -> int:
        self._syscall(proc, "lseek")
        return proc.fd(fd).lseek(offset, whence)

    def ftruncate(self, proc: Process, fd: int, size: int) -> None:
        self._syscall(proc, "ftruncate")
        proc.fd(fd).truncate(size)

    def stat(self, proc: Process, path: str, follow: bool = True):
        self._syscall(proc, "stat")
        return self.kernel.vfs.stat(path, proc.uid, follow=follow,
                                    cwd=proc.cwd)

    def fstat(self, proc: Process, fd: int):
        self._syscall(proc, "fstat")
        return proc.fd(fd).inode.stat()

    def unlink(self, proc: Process, path: str) -> None:
        self._syscall(proc, "unlink")
        self.kernel.vfs.unlink(path, proc.uid, cwd=proc.cwd)

    def mkdir(self, proc: Process, path: str, mode: int = 0o755) -> None:
        self._syscall(proc, "mkdir")
        self.kernel.vfs.mkdir(path, proc.uid, mode, cwd=proc.cwd)

    def rmdir(self, proc: Process, path: str) -> None:
        self._syscall(proc, "rmdir")
        self.kernel.vfs.rmdir(path, proc.uid, cwd=proc.cwd)

    def symlink(self, proc: Process, target: str, linkpath: str) -> None:
        self._syscall(proc, "symlink")
        self.kernel.vfs.symlink(target, linkpath, proc.uid, cwd=proc.cwd)

    def readlink(self, proc: Process, path: str) -> str:
        self._syscall(proc, "readlink")
        return self.kernel.vfs.readlink(path, proc.uid, cwd=proc.cwd)

    def rename(self, proc: Process, old: str, new: str) -> None:
        self._syscall(proc, "rename")
        self.kernel.vfs.rename(old, new, proc.uid, cwd=proc.cwd)

    def listdir(self, proc: Process, path: str):
        self._syscall(proc, "listdir")
        return self.kernel.vfs.listdir(path, proc.uid, cwd=proc.cwd)

    def chdir(self, proc: Process, path: str) -> None:
        self._syscall(proc, "chdir")
        fs, inode = self.kernel.vfs.resolve(path, proc.uid, cwd=proc.cwd)
        if not inode.is_dir:
            raise SyscallError("ENOTDIR", f"{path!r} is not a directory")
        from repro.fs.path import normalize

        proc.cwd = normalize(path, proc.cwd)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def mmap(self, proc: Process, addr: Optional[int], length: int,
             prot: int, flags: int, fd: Optional[int] = None,
             offset: int = 0, name: str = "") -> int:
        self._syscall(proc, "mmap")
        self.kernel.clock.map_segment()
        memobj = None
        if fd is not None:
            handle = proc.fd(fd)
            if not handle.inode.is_file:
                raise SyscallError("EACCES", "mmap of a non-regular file")
            memobj = handle.inode.memobj
            if not name:
                name = handle.path
        mapping = proc.address_space.map(
            addr, length, memobj=memobj, offset=offset, prot=prot,
            flags=flags, name=name or "<anon>",
        )
        return mapping.start

    def munmap(self, proc: Process, addr: int, length: int) -> None:
        self._syscall(proc, "munmap")
        proc.address_space.unmap(addr, length)

    def mprotect(self, proc: Process, addr: int, length: int,
                 prot: int) -> None:
        self._syscall(proc, "mprotect")
        proc.address_space.mprotect(addr, length, prot)

    def sbrk(self, proc: Process, delta: int) -> int:
        self._syscall(proc, "sbrk")
        old = proc.brk
        new = old + delta
        if delta < 0:
            raise SyscallError("EINVAL", "shrinking the break is unsupported")
        heap_mapping = proc.address_space.mapping_at(old) if old else None
        if heap_mapping is not None and new > heap_mapping.end:
            raise SyscallError("ENOMEM", "brk exceeds the heap mapping")
        proc.brk = new
        return old

    # ------------------------------------------------------------------
    # Hemlock kernel extensions (§2, §3)
    # ------------------------------------------------------------------

    def addr_to_path(self, proc: Process,
                     address: int) -> Tuple[str, int]:
        """Translate a public address to (absolute path, offset) — the
        "new kernel call" that the SIGSEGV handler and ldl rely on."""
        self._syscall(proc, "addr_to_path")
        if not self.kernel.is_public_address(address):
            raise SyscallError(
                "EFAULT", f"0x{address:08x} is not a public address"
            )
        hit = self.kernel.sfs.path_of_address(address)
        if hit is None:
            raise SyscallError(
                "ENOENT", f"no segment at 0x{address:08x}"
            )
        vol_path, offset = hit
        return self.kernel.sfs_mount.rstrip("/") + vol_path, offset

    def path_to_addr(self, proc: Process, path: str) -> int:
        """The forward mapping: 'stat already returns an inode number'."""
        info = self.stat(proc, path)
        fs = self.kernel.vfs.resolve(path, proc.uid, cwd=proc.cwd)[0]
        if fs is not self.kernel.sfs:
            raise SyscallError(
                "EINVAL", f"{path!r} is not on the shared file system"
            )
        return self.kernel.sfs.address_of_inode(info.st_ino)

    def open_by_address(self, proc: Process, address: int,
                        flags: int = O_RDONLY) -> int:
        """Overloaded open: open a shared segment by any address in it."""
        injector = self.kernel.injector
        if injector is not None:
            # The linker plane covers transient open-by-address failures;
            # errors surface through the syscall errno path.
            injector.on_link(proc, "open_by_addr", f"0x{address:08x}",
                             as_syscall=True)
        path, _offset = self.addr_to_path(proc, address)
        # One logical syscall: refund the extra trap charged above.
        return self.open(proc, path, flags)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def getpid(self, proc: Process) -> int:
        return proc.pid

    def getppid(self, proc: Process) -> int:
        return proc.ppid

    def exit(self, proc: Process, code: int) -> None:
        self._syscall(proc, "exit")
        self.kernel.terminate(proc, code)

    def fork(self, proc: Process) -> Process:
        self._syscall(proc, "fork")
        return self.kernel.fork(proc)

    def wait(self, proc: Process) -> Tuple[int, int]:
        """Reap one zombie child: (pid, exit status).

        Raises :class:`WouldBlock` when children exist but none has
        exited yet; ECHILD when the process has no children at all.
        """
        self._syscall(proc, "wait")
        children = [p for p in self.kernel.processes.values()
                    if p.ppid == proc.pid and not p.reaped]
        if not children:
            raise SyscallError("ECHILD", "no children to wait for")
        for child in children:
            if not child.alive:
                child.reaped = True
                sanitizer = self.kernel.sanitizer
                if sanitizer is not None:
                    sanitizer.on_wait(self.kernel, proc, child.pid)
                return child.pid, child.exit_code or 0
        self.kernel.register_waiter(proc)
        raise WouldBlock()

    def getenv(self, proc: Process, name: str) -> str:
        return proc.getenv(name)

    def setenv(self, proc: Process, name: str, value: str) -> None:
        proc.setenv(name, value)

    # ------------------------------------------------------------------
    # synchronization and IPC
    # ------------------------------------------------------------------

    def flock(self, proc: Process, fd: int, op: int) -> bool:
        self._syscall(proc, "flock")
        inode = proc.fd(fd).inode
        sanitizer = self.kernel.sanitizer
        if op == FLOCK_EX or op == FLOCK_TRY:
            held = self.kernel.locks.acquire(proc, inode,
                                             blocking=op == FLOCK_EX)
            if held and sanitizer is not None:
                sanitizer.lock_acquired(self.kernel, proc,
                                        ("flock", inode.number))
            return held
        if op == FLOCK_UN:
            if sanitizer is not None:
                sanitizer.lock_released(self.kernel, proc,
                                        ("flock", inode.number))
            woken = self.kernel.locks.release(proc, inode)
            if woken is not None:
                self.kernel.wake(woken)
            return True
        raise SyscallError("EINVAL", f"bad flock op {op}")

    def semget(self, proc: Process, key: int, value: int = 1) -> int:
        self._syscall(proc, "semget")
        self.kernel.semaphores.get(key, value)
        return key

    def sem_p(self, proc: Process, key: int) -> None:
        self._syscall(proc, "sem_p")
        self.kernel.semaphores.get(key).p(proc)
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            sanitizer.lock_acquired(self.kernel, proc, ("sem", key))

    def sem_try_p(self, proc: Process, key: int) -> bool:
        self._syscall(proc, "sem_try_p")
        held = self.kernel.semaphores.get(key).try_p(proc)
        if held:
            sanitizer = self.kernel.sanitizer
            if sanitizer is not None:
                sanitizer.lock_acquired(self.kernel, proc, ("sem", key))
        return held

    def sem_v(self, proc: Process, key: int) -> None:
        self._syscall(proc, "sem_v")
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            sanitizer.lock_released(self.kernel, proc, ("sem", key))
        woken = self.kernel.semaphores.get(key).v()
        if woken is not None:
            self.kernel.wake(woken)

    def msgget(self, proc: Process, key: int) -> int:
        self._syscall(proc, "msgget")
        self.kernel.queues.get(key)
        return key

    def msgsnd(self, proc: Process, key: int, data: bytes,
               blocking: bool = True) -> bool:
        self._syscall(proc, "msgsnd")
        self.kernel.clock.message()
        self.kernel.clock.copy(len(data))  # user -> kernel copy
        queue = self.kernel.queues.get(key)
        ok = queue.send(proc, data, blocking)
        if ok:
            sanitizer = self.kernel.sanitizer
            if sanitizer is not None:
                sanitizer.msg_sent(self.kernel, proc, key)
            if queue.readers:
                self.kernel.wake(queue.readers.pop(0))
        return ok

    def msgrcv(self, proc: Process, key: int,
               blocking: bool = True) -> Optional[bytes]:
        self._syscall(proc, "msgrcv")
        queue = self.kernel.queues.get(key)
        data = queue.receive(proc, blocking)
        if data is not None:
            sanitizer = self.kernel.sanitizer
            if sanitizer is not None:
                sanitizer.msg_received(self.kernel, proc, key)
            self.kernel.clock.copy(len(data))  # kernel -> user copy
            if queue.writers:
                self.kernel.wake(queue.writers.pop(0))
        return data

    # ------------------------------------------------------------------
    # machine ABI dispatch
    # ------------------------------------------------------------------

    def dispatch_machine(self, proc: Process) -> None:
        """Service the syscall a machine process just trapped with.

        On return the PC has been advanced past the ``syscall``
        instruction. A :class:`WouldBlock` escape leaves the PC in place
        so the instruction retries on wake-up.
        """
        cpu = proc.cpu
        assert cpu is not None
        number = cpu.regs[isa.REG_V0]
        a0, a1 = cpu.regs[isa.REG_A0], cpu.regs[isa.REG_A1]
        a2, a3 = cpu.regs[isa.REG_A2], cpu.regs[isa.REG_A3]
        space = proc.address_space
        if number == SYS_PLT_RESOLVE:
            # Jump-table lazy linking: patch the PLT entry containing
            # the trapping PC and restart execution at its base.
            self._syscall(proc, "plt_resolve")
            runtime = proc.runtime
            assert runtime is not None, "PLT trap without a runtime"
            cpu.pc = runtime.plt_resolve(cpu.pc)  # type: ignore[attr-defined]
            return
        try:
            result = self._machine_call(proc, number, a0, a1, a2, a3)
        except WouldBlock:
            raise
        except SyscallError as error:
            self.kernel.note_contained(error, "syscall-errno")
            cpu.set_reg(isa.REG_V0, 0xFFFFFFFF)
            cpu.set_reg(isa.REG_V1, _ERRNO_CODES.get(error.errno, 22))
            cpu.pc += 4
            return
        except FilesystemError as error:
            self.kernel.note_contained(error, "syscall-errno")
            cpu.set_reg(isa.REG_V0, 0xFFFFFFFF)
            cpu.set_reg(isa.REG_V1, _errno_of(error))
            cpu.pc += 4
            return
        if proc.alive:
            cpu.set_reg(isa.REG_V0, result & 0xFFFFFFFF)
            cpu.set_reg(isa.REG_V1, 0)
            cpu.pc += 4
        _ = space  # space used by helpers via proc

    def _machine_call(self, proc: Process, number: int, a0: int, a1: int,
                      a2: int, a3: int) -> int:
        space = proc.address_space
        if number == SYS_EXIT:
            self.exit(proc, a0)
            return 0
        if number == SYS_WRITE:
            data = space.read_bytes(a1, a2, force=True)
            return self.write(proc, a0, data)
        if number == SYS_READ:
            data = self.read(proc, a0, a2)
            space.write_bytes(a1, data, force=True)
            return len(data)
        if number == SYS_OPEN:
            path = space.read_cstring(a0, force=True)
            return self.open(proc, path, a1, a2 or 0o644)
        if number == SYS_CLOSE:
            self.close(proc, a0)
            return 0
        if number == SYS_FORK:
            child = self.fork(proc)
            return child.pid
        if number == SYS_GETPID:
            return self.getpid(proc)
        if number == SYS_SBRK:
            return self.sbrk(proc, _signed(a0))
        if number == SYS_WAIT:
            pid, status = self.wait(proc)
            # Status is reported through memory if a0 is non-zero.
            if a0:
                space.store_word(a0, status & 0xFFFFFFFF, force=True)
            return pid
        if number == SYS_MMAP:
            fd = None if a3 == 0xFFFFFFFF else a3
            return self.mmap(proc, a0 or None, a1, a2 & 0x7,
                             MAP_SHARED if a2 & 0x8 else 0x2, fd)
        if number == SYS_MUNMAP:
            self.munmap(proc, a0, a1)
            return 0
        if number == SYS_MPROTECT:
            self.mprotect(proc, a0, a1, a2)
            return 0
        if number == SYS_SIGNAL:
            proc.machine_sig_handler = a0  # type: ignore[attr-defined]
            return 0
        if number == SYS_PUTINT:
            proc.stdout.extend(str(_signed(a0)).encode())
            proc.stdout.extend(b"\n")
            return 0
        if number == SYS_ADDR_TO_PATH:
            path, _offset = self.addr_to_path(proc, a0)
            encoded = path.encode("latin-1")[: max(a2 - 1, 0)]
            space.write_bytes(a1, encoded + b"\x00", force=True)
            return len(encoded)
        if number == SYS_OPEN_BY_ADDR:
            return self.open_by_address(proc, a0, a1)
        if number == SYS_FLOCK:
            return 1 if self.flock(proc, a0, a1) else 0
        if number == SYS_MSGGET:
            return self.msgget(proc, a0)
        if number == SYS_MSGSND:
            data = space.read_bytes(a1, a2, force=True)
            self.msgsnd(proc, a0, data)
            return len(data)
        if number == SYS_MSGRCV:
            data = self.msgrcv(proc, a0)
            assert data is not None
            data = data[:a2]
            space.write_bytes(a1, data, force=True)
            return len(data)
        if number == SYS_SEMGET:
            return self.semget(proc, a0, a1)
        if number == SYS_SEMP:
            self.sem_p(proc, a0)
            return 0
        if number == SYS_SEMV:
            self.sem_v(proc, a0)
            return 0
        if number == SYS_GETENV:
            name = space.read_cstring(a0, force=True)
            value = proc.getenv(name).encode("latin-1")[: max(a2 - 1, 0)]
            space.write_bytes(a1, value + b"\x00", force=True)
            return len(value)
        if number == SYS_UNLINK:
            self.unlink(proc, space.read_cstring(a0, force=True))
            return 0
        if number == SYS_SYMLINK:
            self.symlink(proc, space.read_cstring(a0, force=True),
                         space.read_cstring(a1, force=True))
            return 0
        if number == SYS_MKDIR:
            self.mkdir(proc, space.read_cstring(a0, force=True))
            return 0
        if number == SYS_STAT:
            info = self.stat(proc, space.read_cstring(a0, force=True))
            space.store_word(a1, info.st_ino, force=True)
            space.store_word(a1 + 4, info.st_size, force=True)
            space.store_word(a1 + 8, info.st_mode, force=True)
            return 0
        raise SyscallError("EINVAL", f"unknown syscall {number}")


def _signed(value: int) -> int:
    return value - 0x100000000 if value >= 0x80000000 else value


def _errno_of(error: FilesystemError) -> int:
    from repro import errors

    table = {
        errors.FileNotFoundSimError: 2,
        errors.FileExistsSimError: 17,
        errors.NotADirectorySimError: 20,
        errors.IsADirectorySimError: 21,
        errors.PermissionSimError: 13,
        errors.FileLimitError: 27,
    }
    return table.get(type(error), 5)
