"""Deterministic cycle accounting.

The paper reports wall-clock measurements on 1992 hardware (a SPARC
network, an SGI 4D/480). Those absolute numbers are unreproducible; what
must survive reproduction is the *shape* of each comparison. The clock
charges documented costs for the events whose ratio drives every
experiment: instructions, syscall traps, page faults, context switches,
byte copies, and "disk" transfers.

The constants are loosely calibrated to early-90s RISC workstations
(~30 MHz, microsecond-scale syscalls, millisecond-scale disk), but only
their relative magnitudes matter; benchmarks report ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Largest exponent :meth:`Clock.backoff` applies. One wait therefore
#: tops out at ``retry_backoff << MAX_BACKOFF_SHIFT`` cycles (~39.3M
#: with the default cost model — about a second of simulated time),
#: so a long retry storm costs linearly in attempts instead of
#: doubling without bound and swamping every cycle comparison.
MAX_BACKOFF_SHIFT = 16

#: ``Clock.checkpoint_at`` value meaning "never": one comparison
#: against this sentinel is the whole cost of the checkpoint hook
#: when recording is off (pay-for-use).
CHECKPOINT_NEVER = 1 << 62


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for kernel-visible events."""

    instruction: int = 1
    syscall: int = 400            # trap entry, dispatch, return
    page_fault: int = 1500        # fault, kernel handling, sigreturn
    signal_delivery: int = 700    # frame setup + handler dispatch
    context_switch: int = 800
    copy_per_word: int = 1        # memory-to-memory copy, 4 bytes/cycle
    file_io_per_word: int = 2     # buffered file read/write, per 4 bytes
    disk_seek: int = 30000        # first touch of a cold file
    message_overhead: int = 1200  # send+receive queueing beyond the copies
    map_segment: int = 2500       # mmap bookkeeping incl. TLB shootdown
    retry_backoff: int = 600      # first backoff wait after a transient
                                  # fault; doubles with each retry
    journal_block: int = 120      # one journaled metadata block (charged
                                  # only when a durable store is mounted)
    net_frame: int = 2000         # NIC + protocol processing, per frame
    net_per_word: int = 1         # wire copy, 4 bytes/cycle
    net_latency: int = 6000       # one-way propagation a synchronous
                                  # protocol message stalls the caller for


@dataclass
class Clock:
    """Monotonic cycle counter with per-category accounting.

    On an SMP boot the clock additionally keeps *per-core* counters and
    an ``elapsed`` makespan: work charged while :attr:`current_core` is
    set accrues to that core, and each scheduler round advances
    ``elapsed`` by the *longest* per-core delta of the round (cores run
    in parallel, so the round takes as long as its slowest core).
    ``cycles`` stays the total work metric — the sum over all cores —
    so every existing pin and category breakdown is unchanged; speedup
    comparisons read ``elapsed``. Serial charges (``current_core is
    None``) advance ``elapsed`` 1:1, so on a uniprocessor boot
    ``elapsed == cycles`` always.
    """

    costs: CostModel = field(default_factory=CostModel)
    cycles: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    #: cycle count at (or past) which :attr:`on_checkpoint` fires;
    #: :data:`CHECKPOINT_NEVER` keeps the hook disarmed
    checkpoint_at: int = CHECKPOINT_NEVER
    #: called with this clock when :attr:`checkpoint_at` is crossed
    #: (armed by :mod:`repro.rr`); must re-arm ``checkpoint_at``
    on_checkpoint: Optional[Callable[["Clock"], None]] = None
    #: number of simulated CPUs this clock accounts for
    ncores: int = 1
    #: core currently executing (set by the SMP scheduler around each
    #: sub-slice); ``None`` means serial kernel-side work
    current_core: Optional[int] = None
    #: total cycles charged while each core was current
    core_cycles: Dict[int, int] = field(default_factory=dict)
    #: parallel makespan: serial work 1:1, each SMP round by its
    #: slowest core's delta
    elapsed: int = 0
    #: per-core snapshot taken at :meth:`round_begin`
    _round_marks: Dict[int, int] = field(default_factory=dict)

    def charge(self, category: str, cycles: int) -> None:
        self.cycles += cycles
        self.by_category[category] = \
            self.by_category.get(category, 0) + cycles
        if self.current_core is None:
            self.elapsed += cycles
        else:
            self.core_cycles[self.current_core] = \
                self.core_cycles.get(self.current_core, 0) + cycles
        if self.cycles >= self.checkpoint_at:
            self._checkpoint_due()

    def round_begin(self) -> None:
        """Mark the start of one SMP round (snapshot per-core totals)."""
        self._round_marks = dict(self.core_cycles)

    def round_end(self) -> None:
        """Advance ``elapsed`` by the slowest core's delta this round."""
        marks = self._round_marks
        longest = 0
        for core, total in self.core_cycles.items():
            delta = total - marks.get(core, 0)
            if delta > longest:
                longest = delta
        self.elapsed += longest
        self._round_marks = {}

    def _checkpoint_due(self) -> None:
        """Fire the checkpoint hook exactly once per arming: disarm
        first so captures that re-enter :meth:`charge` cannot recurse;
        the hook re-arms for the next interval."""
        hook, self.checkpoint_at = self.on_checkpoint, CHECKPOINT_NEVER
        if hook is not None:
            hook(self)

    def instructions(self, count: int) -> None:
        self.charge("instructions", count * self.costs.instruction)

    def syscall(self) -> None:
        self.charge("syscalls", self.costs.syscall)

    def page_fault(self) -> None:
        self.charge("faults", self.costs.page_fault)

    def signal(self) -> None:
        self.charge("signals", self.costs.signal_delivery)

    def context_switch(self) -> None:
        self.charge("switches", self.costs.context_switch)

    def copy(self, nbytes: int) -> None:
        self.charge("copies", ((nbytes + 3) // 4) * self.costs.copy_per_word)

    def file_io(self, nbytes: int) -> None:
        self.charge("file_io",
                    ((nbytes + 3) // 4) * self.costs.file_io_per_word)

    def disk_seek(self) -> None:
        self.charge("disk", self.costs.disk_seek)

    def message(self) -> None:
        self.charge("messages", self.costs.message_overhead)

    def map_segment(self) -> None:
        self.charge("mappings", self.costs.map_segment)

    def net(self, nbytes: int) -> None:
        """One network frame through this machine's NIC (either
        direction): per-frame processing plus the wire copy. Charged
        only by :mod:`repro.net`; single-machine boots never see the
        category."""
        self.charge("net", self.costs.net_frame
                    + ((nbytes + 3) // 4) * self.costs.net_per_word)

    def net_stall(self, hops: int = 1) -> None:
        """Propagation delay a caller waits out for a synchronous
        protocol exchange (*hops* one-way trips)."""
        self.charge("net", self.costs.net_latency * hops)

    def backoff(self, attempt: int) -> None:
        """One deterministic exponential-backoff wait: retry *attempt*
        (1-based) costs ``retry_backoff << (attempt - 1)`` cycles,
        saturating at ``retry_backoff << MAX_BACKOFF_SHIFT``."""
        shift = min(max(attempt - 1, 0), MAX_BACKOFF_SHIFT)
        self.charge("backoff", self.costs.retry_backoff << shift)

    def snapshot(self) -> int:
        """Current cycle count (for interval measurements)."""
        return self.cycles

    def delta(self, snapshot: int) -> int:
        """Cycles elapsed since *snapshot* (a prior :meth:`snapshot`).

        The benchmark idiom::

            start = clock.snapshot()
            ...               # the measured phase
            phase = clock.delta(start)
        """
        return self.cycles - snapshot

    def report(self) -> str:
        lines = [f"total cycles: {self.cycles}"]
        for category in sorted(self.by_category):
            lines.append(f"  {category}: {self.by_category[category]}")
        return "\n".join(lines)
