"""Hemlock's linkers: ``lds``, ``ldl``, and their supporting machinery.

This package is the paper's contribution proper:

* :mod:`classes` — the four sharing classes of Table 1;
* :mod:`searchpath` — the SunOS-inspired extended search strategy;
* :mod:`module` — module images, placement, relocation;
* :mod:`branch_islands` — rewriting of over-long 26-bit jumps (§3);
* :mod:`segments` — public-module segment files in the SFS;
* :mod:`lds` — the static linker (wrapper semantics of §3);
* :mod:`ldl` — the lazy, scoped dynamic linker;
* :mod:`scoped` — DAG-based scope resolution (§3, Figure 2);
* :mod:`baseline_ld` — a traditional static-only ld for comparison;
* :mod:`jumptable` — the SunOS PLT-style lazy function linking baseline;
* :mod:`crt0` — the special program start-up module.
"""

from repro.linker.classes import SharingClass
from repro.linker.searchpath import SearchPath, find_module
from repro.linker.module import ModuleImage
from repro.linker.lds import Lds, LinkRequest
from repro.linker.ldl import Ldl, LoadedModule
from repro.linker.baseline_ld import link_static
from repro.linker.segments import (
    create_public_module,
    read_segment_meta,
    public_module_exists,
)

__all__ = [
    "SharingClass",
    "SearchPath",
    "find_module",
    "ModuleImage",
    "Lds",
    "LinkRequest",
    "Ldl",
    "LoadedModule",
    "link_static",
    "create_public_module",
    "read_segment_meta",
    "public_module_exists",
]
