"""A traditional static-only linker — the ``ld`` that ``lds`` wraps.

Implements exactly the classic contract: merge the given relocatables,
pull in archive members that satisfy outstanding undefined references,
place text and data, resolve everything, and error on any undefined or
duplicate symbol. No sharing classes, no dynamic modules, no retained
relocations — that is what Hemlock adds on top.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import UndefinedSymbolError
from repro.linker.crt0 import crt0_template
from repro.linker.module import ModuleImage, merge_objects
from repro.objfile.archive import Archive
from repro.objfile.format import ObjectFile
from repro.vm.layout import HEAP_REGION, TEXT_BASE


def link_static(objects: Sequence[ObjectFile],
                archives: Sequence[Archive] = (),
                name: str = "a.out",
                text_base: int = TEXT_BASE,
                data_base: int = HEAP_REGION.start,
                entry: Optional[str] = None,
                with_crt0: bool = True,
                allow_undefined: bool = False) -> ObjectFile:
    """Produce an executable from *objects* (+ needed archive members)."""
    units: List[ObjectFile] = []
    if with_crt0:
        units.append(crt0_template())
    units.extend(objects)

    merged = merge_objects(units, name)
    undefined = set(merged.undefined_symbols())
    defined = {s.name for s in merged.defined_globals()}
    undefined -= defined
    for archive in archives:
        members = archive.resolve(undefined)
        if members:
            units.extend(member.clone() for member in members)
            merged = merge_objects(units, name)
            undefined = set(merged.undefined_symbols()) \
                - {s.name for s in merged.defined_globals()}

    image = ModuleImage(merged, name)
    image.layout_split(text_base, data_base)
    remaining = image.apply_relocations()
    if remaining and not allow_undefined:
        raise UndefinedSymbolError([r.symbol for r in remaining])

    if entry is not None:
        image.obj.entry_symbol = entry
    elif not image.obj.entry_symbol:
        image.obj.entry_symbol = "_start" if with_crt0 else "main"
    return image.to_executable()
