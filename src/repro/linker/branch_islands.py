"""Branch islands for over-long jumps (§3).

The R3000's ``j``/``jal`` carry a 26-bit word address and can only reach
within the current 256 MiB region. A call from private text (around
0x00400000) into a public module in the 1 GiB shared region therefore
cannot be encoded directly: "lds and ldl arrange for over-long branches
to be replaced with jumps to new, nearby code fragments that load the
appropriate target address into a register and jump indirectly."

The transform runs on a template *before* layout. For every JUMP26
relocation against a symbol the caller flags as possibly-far, it appends
a three-instruction island at the end of text::

    island:  lui  at, %hi(target)     # HI16 reloc
             ori  at, at, %lo(target) # LO16 reloc
             jr   at

and redirects the call site's JUMP26 to the island. ``jal`` call sites
still set ``ra`` at the call site, so returns work unchanged; the
assembler temporary ``at`` is clobbered, which is its ABI-sanctioned job.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    Relocation,
    RelocType,
    SEC_TEXT,
    Symbol,
    SymBinding,
)
from repro.trace import tracer as _trace
from repro.trace.events import EventKind

ISLAND_SIZE = 12  # three instructions


def insert_branch_islands(obj: ObjectFile,
                          needs_island: Callable[[str], bool]) -> int:
    """Rewrite far JUMP26 relocations in *obj* through islands.

    *needs_island(symbol)* should return True when the symbol may end up
    outside the caller's 256 MiB region — lds uses "not defined in this
    link unit", since every cross-module target may land in the shared
    region. Islands are shared: N call sites to the same (symbol,
    addend) all jump through one island, so text grows by at most one
    island per distinct far target. Returns the number of islands added.
    """
    new_relocs: List[Relocation] = []
    by_target: Dict[Tuple[str, int], str] = {}
    islands = 0
    for reloc in obj.relocations:
        if reloc.type is not RelocType.JUMP26 \
                or not needs_island(reloc.symbol):
            new_relocs.append(reloc)
            continue
        label = by_target.get((reloc.symbol, reloc.addend))
        if label is None:
            label = f"__island_{islands}__{reloc.symbol}"
            by_target[(reloc.symbol, reloc.addend)] = label
            islands += 1
            island_offset = len(obj.text)
            obj.text.extend(_island_code())
            obj.symbols[label] = Symbol(label, SEC_TEXT, island_offset,
                                        SymBinding.LOCAL)
            tracer = _trace.TRACER
            if tracer.enabled:
                tracer.emit(EventKind.ISLAND, name=reloc.symbol,
                            value=ISLAND_SIZE)
            # The island carries the absolute target.
            new_relocs.append(Relocation(SEC_TEXT, island_offset,
                                         RelocType.HI16, reloc.symbol,
                                         reloc.addend))
            new_relocs.append(Relocation(SEC_TEXT, island_offset + 4,
                                         RelocType.LO16, reloc.symbol,
                                         reloc.addend))
        # Call site now jumps (in-region) to the shared island.
        new_relocs.append(Relocation(SEC_TEXT, reloc.offset,
                                     RelocType.JUMP26, label, 0))
    obj.relocations = new_relocs
    return islands


def _island_code() -> bytes:
    words = [
        isa.encode_i(isa.OP_LUI, rt=isa.REG_AT, imm=0),
        isa.encode_i(isa.OP_ORI, rs=isa.REG_AT, rt=isa.REG_AT, imm=0),
        isa.encode_r(isa.FN_JR, rs=isa.REG_AT),
    ]
    return b"".join(word.to_bytes(4, "little") for word in words)


def count_far_jumps(obj: ObjectFile,
                    needs_island: Callable[[str], bool]) -> int:
    """How many JUMP26 relocations would need islands (for benchmarks)."""
    return sum(
        1 for reloc in obj.relocations
        if reloc.type is RelocType.JUMP26 and needs_island(reloc.symbol)
    )
