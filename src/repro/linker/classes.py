"""The four sharing classes of Table 1.

===============  ================  =========================  ==============
Sharing class    When linked       New instance per process   Address space
===============  ================  =========================  ==============
static private   static link time  yes                        private
dynamic private  run time          yes                        private
static public    static link time  no                         public
dynamic public   run time          no                         public
===============  ================  =========================  ==============

Classes are specified module-by-module in the arguments to ``lds``; they
are properties of a *link request*, not of the template object file.
"""

from __future__ import annotations

import enum
from typing import List

from repro.errors import LinkError


class SharingClass(enum.Enum):
    STATIC_PRIVATE = "static_private"
    DYNAMIC_PRIVATE = "dynamic_private"
    STATIC_PUBLIC = "static_public"
    DYNAMIC_PUBLIC = "dynamic_public"

    @property
    def is_static(self) -> bool:
        """Linked at static link time (vs run time)."""
        return self in (SharingClass.STATIC_PRIVATE,
                        SharingClass.STATIC_PUBLIC)

    @property
    def is_dynamic(self) -> bool:
        return not self.is_static

    @property
    def is_public(self) -> bool:
        """Persistent, single instance, public portion of address space."""
        return self in (SharingClass.STATIC_PUBLIC,
                        SharingClass.DYNAMIC_PUBLIC)

    @property
    def is_private(self) -> bool:
        return not self.is_public

    @property
    def when_linked(self) -> str:
        """Table 1 column: when the module is linked."""
        return "static link time" if self.is_static else "run time"

    @property
    def new_instance_per_process(self) -> bool:
        """Table 1 column: is a new instance created/destroyed per process."""
        return self.is_private

    @property
    def address_portion(self) -> str:
        """Table 1 column: default portion of the address space."""
        return "public" if self.is_public else "private"

    @classmethod
    def parse(cls, text: str) -> "SharingClass":
        """Parse a class name as it appears on the lds command line."""
        normalized = text.strip().lower().replace("-", "_").replace(" ", "_")
        for candidate in cls:
            if candidate.value == normalized:
                return candidate
        raise LinkError(f"unknown sharing class {text!r}")

    @classmethod
    def table1(cls) -> List["SharingClass"]:
        """The classes in the paper's Table 1 row order."""
        return [cls.STATIC_PRIVATE, cls.DYNAMIC_PRIVATE,
                cls.STATIC_PUBLIC, cls.DYNAMIC_PUBLIC]
