"""crt0 — the program start-up module.

lds "links C programs with a special start-up file" (§3) whose job is to
give ldl a chance to run before normal execution and to call ``exit``
when ``main`` returns. In the simulation the ldl bootstrap itself is the
exec hook the runtime registers with the kernel (the Python-side
equivalent of crt0 calling into the dynamic linker before ``main``); the
machine-code part below performs the call-main-then-exit sequence.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.asm import assemble
from repro.objfile.format import ObjectFile

CRT0_SOURCE = """
        # Hemlock crt0: ldl has already run (exec hook); call main, then
        # pass its return value to exit(2).
        .text
        .globl  _start
        .entry  _start
_start:
        jal     main
        move    a0, v0
        li      v0, 1           # SYS_EXIT
        syscall
        break                   # not reached
"""

_cached: Optional[ObjectFile] = None


def crt0_template() -> ObjectFile:
    """The assembled crt0 module (fresh clone per call)."""
    global _cached
    if _cached is None:
        _cached = assemble(CRT0_SOURCE, "crt0.o")
    return _cached.clone()
