"""SunOS-style jump-table (PLT) lazy linking — the baseline of §3.

"The PIC produced by the Sun compilers uses jump tables that allow
functions to be linked lazily, but references to data objects are all
resolved at load time." And: "Our fault-driven lazy linking mechanism is
slower than the jump table mechanism of SunOS, but works for both
functions and data objects, and does not require compiler support."

This transform gives the simulated toolchain that jump-table mechanism so
ablation A1 can compare the two. Every external function call is routed
through a 16-byte PLT entry that initially traps to the run-time resolver
(syscall ``SYS_PLT_RESOLVE``); the resolver patches the entry into a
direct ``lui``/``ori``/``jr`` sequence and restarts it. Data relocations
are untouched — they must be resolved eagerly at load time, which is
exactly the limitation Hemlock's fault-driven scheme removes.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    Relocation,
    RelocType,
    SEC_TEXT,
    Symbol,
    SymBinding,
)
from repro.trace import tracer as _trace
from repro.trace.events import EventKind

SYS_PLT_RESOLVE = 40
PLT_ENTRY_SIZE = 16
PLT_PREFIX = "__plt$"


def insert_jump_table(obj: ObjectFile,
                      needs_stub: Callable[[str], bool]) -> int:
    """Route external JUMP26 call sites through PLT entries.

    One entry per distinct symbol. Entries are named ``__plt$<symbol>``
    (local symbols), so the run-time resolver can recover the target
    symbol from the trapping PC alone. Returns the number of entries.
    """
    entries: Dict[str, str] = {}
    new_relocs = []
    for reloc in obj.relocations:
        if reloc.type is not RelocType.JUMP26 or not needs_stub(reloc.symbol):
            new_relocs.append(reloc)
            continue
        label = entries.get(reloc.symbol)
        if label is None:
            label = f"{PLT_PREFIX}{reloc.symbol}"
            entries[reloc.symbol] = label
            offset = len(obj.text)
            obj.text.extend(_plt_entry_code())
            obj.symbols[label] = Symbol(label, SEC_TEXT, offset,
                                        SymBinding.LOCAL)
            tracer = _trace.TRACER
            if tracer.enabled:
                tracer.emit(EventKind.ISLAND,
                            name=f"plt:{reloc.symbol}",
                            value=PLT_ENTRY_SIZE)
        new_relocs.append(Relocation(SEC_TEXT, reloc.offset,
                                     RelocType.JUMP26, label,
                                     0))
    obj.relocations = new_relocs
    return len(entries)


def _plt_entry_code() -> bytes:
    words = [
        # li v0, SYS_PLT_RESOLVE; syscall; then (post-patch) never reached
        isa.encode_i(isa.OP_ORI, rs=isa.REG_ZERO, rt=isa.REG_V0,
                     imm=SYS_PLT_RESOLVE),
        isa.encode_r(isa.FN_SYSCALL),
        0,  # nop
        isa.encode_r(isa.FN_BREAK),  # unreachable guard
    ]
    return b"".join(word.to_bytes(4, "little") for word in words)


def patched_plt_entry(target: int) -> bytes:
    """The resolved form of a PLT entry: lui/ori/jr through ``at``."""
    words = [
        isa.encode_i(isa.OP_LUI, rt=isa.REG_AT, imm=(target >> 16) & 0xFFFF),
        isa.encode_i(isa.OP_ORI, rs=isa.REG_AT, rt=isa.REG_AT,
                     imm=target & 0xFFFF),
        isa.encode_r(isa.FN_JR, rs=isa.REG_AT),
        isa.encode_r(isa.FN_BREAK),
    ]
    return b"".join(word.to_bytes(4, "little") for word in words)


def _plt_target(name: str) -> "str | None":
    """The external symbol a PLT label names, or None.

    Handles the ``module::__plt$sym`` form the local-symbol renaming of
    :func:`repro.linker.module.merge_objects` produces.
    """
    index = name.find(PLT_PREFIX)
    if index < 0:
        return None
    return name[index + len(PLT_PREFIX):]


def plt_symbol_at(image: ObjectFile, address: int) -> str:
    """Which external symbol the PLT entry containing *address* targets.

    *image* must be a linked executable (symbols at absolute addresses).
    Raises KeyError when *address* is not inside a PLT entry.
    """
    for symbol in image.symbols.values():
        target = _plt_target(symbol.name)
        if target is None:
            continue
        if symbol.value <= address < symbol.value + PLT_ENTRY_SIZE:
            return target
    raise KeyError(f"no PLT entry at 0x{address:08x}")


def plt_entry_base(image: ObjectFile, address: int) -> int:
    """Base address of the PLT entry containing *address*."""
    for symbol in image.symbols.values():
        if _plt_target(symbol.name) is not None \
                and symbol.value <= address < symbol.value + PLT_ENTRY_SIZE:
            return symbol.value
    raise KeyError(f"no PLT entry at 0x{address:08x}")
