"""ldl — the lazy, scoped dynamic linker (§2, §3).

At program start-up (invoked from the special crt0), ldl:

1. uses the saved search strategy to locate every dynamic module named
   at static link time — LD_LIBRARY_PATH *now* first, then everywhere
   lds searched;
2. creates a new instance of each dynamic private module, and of each
   dynamic public module that does not yet exist (creation from the
   template is serialized with a file lock);
3. maps static public modules and all dynamic modules into the address
   space — modules that still contain undefined references are mapped
   *without access permissions*, so the first touch faults;
4. resolves undefined references from the main load image to objects in
   the dynamic modules (even though lds never knew which symbols those
   modules would export).

When a lazily mapped module faults, :meth:`Ldl.handle_fault` resolves
its retained relocations using *scoped* resolution — the module's own
module list and search path first, then its parents' up the DAG — and
only then makes the pages accessible. Resolution may map further modules
(possibly inaccessibly), giving the recursive chain of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    FilesystemError,
    InjectedFaultError,
    LinkError,
    ModuleNotFoundLinkError,
    SyscallError,
)
from repro.fs.path import basename
from repro.fs.vfs import O_RDONLY, O_RDWR
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.kernel.syscalls import FLOCK_EX, FLOCK_UN
from repro.linker.branch_islands import insert_branch_islands
from repro.linker.classes import SharingClass
from repro.linker.module import ModuleImage, patch_reloc_in_memory
from repro.linker.scoped import peek_exports, scope_chain
from repro.linker.searchpath import SearchPath
from repro.linker.segments import (
    create_public_module,
    module_path_for_template,
    read_segment_meta,
    update_segment_meta,
)
from repro.objfile.format import ObjectFile
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.util.bits import align_up
from repro.vm.address_space import MAP_PRIVATE, MAP_SHARED, PROT_NONE, \
    PROT_RWX
from repro.vm.layout import PAGE_SIZE, PRIVATE_DYNAMIC_BASE

# Bounded retry budget for *transient* faults (injected or otherwise)
# hit while locating/mapping modules. Each retry charges a doubling
# backoff wait to the clock, so the recovery cost is deterministic.
LDL_MAX_RETRIES = 4


@dataclass
class LdlStats:
    """Counters the lazy-linking benchmarks report."""

    modules_mapped: int = 0
    modules_created: int = 0
    modules_linked: int = 0
    relocs_patched: int = 0
    scope_lookups: int = 0
    directory_scans: int = 0
    faults_serviced: int = 0
    transient_retries: int = 0


class LoadedModule:
    """One node of the linking DAG."""

    def __init__(self, name: str, path: Optional[str], meta: ObjectFile,
                 base: int, image_len: int, sharing: SharingClass,
                 is_root: bool = False) -> None:
        self.name = name
        self.path = path              # None for the root / anon privates
        self.meta = meta
        self.base = base
        self.image_len = image_len
        self.sharing = sharing
        self.is_root = is_root
        self.parents: List["LoadedModule"] = []
        self.accessible = is_root
        self.linked = is_root and not meta.relocations
        self._exports: Optional[Dict[str, int]] = None

    def exports(self) -> Dict[str, int]:
        """name -> absolute address of every defined global."""
        if self._exports is None:
            self._exports = {s.name: s.value
                             for s in self.meta.defined_globals()}
        return self._exports

    def add_parent(self, parent: "LoadedModule") -> None:
        if parent is not self and parent not in self.parents:
            self.parents.append(parent)

    def contains(self, address: int) -> bool:
        for section in self.meta.layout.values():
            if section.size and section.base <= address < section.end:
                return True
        return False

    @property
    def module_list(self) -> List[Tuple[str, str]]:
        return self.meta.link_info.dynamic_modules

    @property
    def search_dirs(self) -> List[str]:
        return self.meta.link_info.search_path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LoadedModule {self.name!r} base=0x{self.base:08x} "
            f"{self.sharing.value} linked={self.linked} "
            f"accessible={self.accessible}>"
        )


class Ldl:
    """The per-process dynamic linker state."""

    def __init__(self, kernel: Kernel, proc: Process,
                 lazy: bool = True, scoped: bool = True,
                 verify: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.proc = proc
        self.lazy = lazy
        # scoped=False ablates scoped linking: every module's undefined
        # references resolve against the single root scope, the way a
        # traditional flat-namespace linker behaves. Name collisions
        # then bind to whatever the *root* sees first, not to the
        # module's own subsystem (see benchmark A6).
        self.scoped = scoped
        # verify arms the reprolint gate: every module is statically
        # verified *before* it is mapped, and an ERROR finding raises
        # LintError instead of mapping a broken image. None defers to
        # the REPRO_LINT environment variable. The gate analyzes only
        # metadata/images already held in memory — no syscalls, so it
        # adds zero simulated cycles.
        if verify is None:
            from repro.analyze.pipeline import lint_enabled_default

            verify = lint_enabled_default()
        self.verify = verify
        self.stats = LdlStats()
        self.root: Optional[LoadedModule] = None
        self._by_path: Dict[str, LoadedModule] = {}
        self._modules: List[LoadedModule] = []
        self._private_cursor = PRIVATE_DYNAMIC_BASE

    # ------------------------------------------------------------------
    # start-up
    # ------------------------------------------------------------------

    def bootstrap(self, executable: ObjectFile) -> LoadedModule:
        """Run the crt0-time phase for *executable* (already loaded)."""
        run_search = SearchPath.for_run_time(
            self.proc.getenv("LD_LIBRARY_PATH"),
            executable.link_info.search_path,
        )
        # Per-process working copy: resolving retained relocations is
        # process-local state and must not bleed into other execs of the
        # same image.
        meta = executable.clone()
        root = LoadedModule(executable.name, None, meta, 0, 0,
                            SharingClass.STATIC_PRIVATE, is_root=True)
        # The root's run-time search path replaces the saved static one.
        root.meta.link_info.search_path = list(run_search.directories)
        self.root = root
        self._modules.append(root)

        for name, class_name in executable.link_info.dynamic_modules:
            sharing = SharingClass.parse(class_name)
            try:
                self.ensure_module(name, sharing, root)
            except ModuleNotFoundLinkError:
                # lds already warned; the reference faults at use.
                continue

        # Resolve undefined references from the main load image to
        # objects in the dynamic modules.
        self._resolve_retained(root)
        root.linked = True

        if not self.lazy:
            self.link_everything()
        return root

    def link_everything(self) -> None:
        """Eager mode: resolve every loaded module transitively."""
        progress = True
        while progress:
            progress = False
            for module in list(self._modules):
                if not module.linked:
                    self.link_module(module)
                    progress = True

    # ------------------------------------------------------------------
    # locating and instantiating modules
    # ------------------------------------------------------------------

    def ensure_module(self, name: str, sharing: SharingClass,
                      parent: LoadedModule) -> LoadedModule:
        """Bring module *name* into the address space as a child of
        *parent* (deduplicated by path: the DAG, not a tree)."""
        search = self._search_for(parent)
        if sharing is SharingClass.STATIC_PUBLIC:
            # lds recorded the module's absolute path.
            module = self._map_public_path(name)
        elif sharing is SharingClass.DYNAMIC_PUBLIC:
            module = self._ensure_dynamic_public(name, search)
        elif sharing is SharingClass.DYNAMIC_PRIVATE:
            module = self._ensure_dynamic_private(name, search)
        else:
            raise LinkError(
                f"{name!r}: static private modules cannot be loaded at "
                f"run time"
            )
        module.add_parent(parent)
        return module

    def ensure_module_from_path(self, path: str,
                                parent: LoadedModule) -> LoadedModule:
        """Instantiate whatever module lives at *path* (scope scans).

        Segment files map as public modules. Templates instantiate
        according to their location: on the shared partition they become
        (or join) the corresponding public module; elsewhere they become
        a private instance.
        """
        if not path.endswith(".o"):
            module = self._map_public_path(path)
        elif self._on_sfs(path):
            module = self._ensure_dynamic_public(path,
                                                 self._search_for(parent))
        else:
            module = self._ensure_dynamic_private(path,
                                                  self._search_for(parent))
        module.add_parent(parent)
        return module

    def _search_for(self, module: LoadedModule) -> SearchPath:
        return SearchPath(list(module.search_dirs))

    def _ensure_dynamic_public(self, name: str,
                               search: SearchPath) -> LoadedModule:
        vfs = self.kernel.vfs
        module_name = name[:-2] if name.endswith(".o") else name
        module_path = search.find(vfs, module_name, self.proc.uid,
                                  self.proc.cwd)
        if module_path is not None and not module_path.endswith(".o"):
            return self._map_public_path(module_path)
        template_name = name if name.endswith(".o") else name + ".o"
        template_path = search.find(vfs, template_name, self.proc.uid,
                                    self.proc.cwd)
        if template_path is None:
            raise ModuleNotFoundLinkError(name, search.directories)
        module_path = self._create_public(template_path)
        return self._map_public_path(module_path)

    def _with_retry(self, operation):
        """Run *operation*, retrying transient faults with deterministic
        exponential backoff (cycles charged via ``Clock.backoff``)."""
        attempt = 0
        while True:
            try:
                return operation()
            except InjectedFaultError as error:
                if not error.transient or attempt >= LDL_MAX_RETRIES:
                    raise
                attempt += 1
                self.stats.transient_retries += 1
                self.kernel.clock.backoff(attempt)
                injector = self.kernel.injector
                if injector is not None:
                    injector.note_retry()

    def _create_public(self, template_path: str) -> str:
        return self._with_retry(
            lambda: self._create_public_once(template_path))

    def _create_public_once(self, template_path: str) -> str:
        """Create a public module from its template, under a file lock
        ("Ldl uses file locking to synchronize the creation of shared
        segments")."""
        injector = self.kernel.injector
        if injector is not None:
            injector.on_link(self.proc, "create_public", template_path)
        sys = self.kernel.syscalls
        module_path = module_path_for_template(template_path)
        lock_fd = sys.open(self.proc, template_path, O_RDONLY)
        try:
            sys.flock(self.proc, lock_fd, FLOCK_EX)
            try:
                if self.kernel.vfs.exists(module_path, self.proc.uid):
                    return module_path  # someone beat us to it
                # Note: when the template name is a symlink (the Presto
                # temp-directory trick of §4), the module is created in
                # the directory holding the *symlink*, giving each
                # application instance its own copy of the shared data.
                template = self._load_template(template_path)
                create_public_module(self.kernel, self.proc, template,
                                     module_path)
                self.stats.modules_created += 1
                return module_path
            finally:
                sys.flock(self.proc, lock_fd, FLOCK_UN)
        finally:
            sys.close(self.proc, lock_fd)

    def _map_public_path(self, module_path: str) -> LoadedModule:
        existing = self._by_path.get(module_path)
        if existing is not None:
            return existing
        return self._with_retry(
            lambda: self._map_public_once(module_path))

    def _map_public_once(self, module_path: str) -> LoadedModule:
        injector = self.kernel.injector
        if injector is not None:
            injector.on_link(self.proc, "map_public", module_path)
        meta, base, image_len = read_segment_meta(self.kernel, self.proc,
                                                  module_path)
        if self.verify:
            self._verify_public(meta, base, module_path)
        sys = self.kernel.syscalls
        fd = sys.open(self.proc, module_path, O_RDWR)
        try:
            prot = PROT_NONE if (self.lazy and meta.relocations) \
                else PROT_RWX
            sys.mmap(self.proc, base, image_len, prot, MAP_SHARED, fd,
                     name=module_path)
        finally:
            sys.close(self.proc, fd)
        module = LoadedModule(basename(module_path), module_path, meta,
                              base, image_len, SharingClass.DYNAMIC_PUBLIC)
        module.accessible = prot != PROT_NONE
        module.linked = not meta.relocations
        self._register(module_path, module)
        if not self.lazy and not module.linked:
            self.link_module(module)
        return module

    def _ensure_dynamic_private(self, name: str,
                                search: SearchPath) -> LoadedModule:
        template_name = name if name.endswith(".o") else name + ".o"
        template_path = search.find(self.kernel.vfs, template_name,
                                    self.proc.uid, self.proc.cwd)
        if template_path is None:
            raise ModuleNotFoundLinkError(name, search.directories)
        key = f"private:{template_path}"
        existing = self._by_path.get(key)
        if existing is not None:
            return existing

        template = self._load_template(template_path)
        insert_branch_islands(
            template,
            lambda symbol: not _defined_in(template, symbol),
        )
        image = ModuleImage(template, basename(template_path))
        base = self._private_cursor
        total = image.layout_contiguous(base)
        size = align_up(max(total, PAGE_SIZE), PAGE_SIZE)
        self._private_cursor += size + PAGE_SIZE  # guard page gap
        image.apply_relocations()
        meta = image.to_segment_meta()
        if self.verify:
            self._verify_private(image.obj, image.name)

        sys = self.kernel.syscalls
        sys.mmap(self.proc, base, size, PROT_RWX, MAP_PRIVATE,
                 name=f"private:{image.name}")
        self.proc.address_space.write_bytes(base, image.image_bytes(),
                                            force=True)
        module = LoadedModule(image.name, None, meta, base, size,
                              SharingClass.DYNAMIC_PRIVATE)
        if meta.relocations and self.lazy:
            sys.mprotect(self.proc, base, size, PROT_NONE)
            module.accessible = False
        else:
            module.accessible = True
            module.linked = not meta.relocations
        self._register(key, module)
        if not self.lazy and not module.linked:
            self.link_module(module)
        return module

    # ------------------------------------------------------------------
    # the reprolint gate (REPRO_LINT=1 / verify=True)
    # ------------------------------------------------------------------

    def _verify_public(self, meta: ObjectFile, base: int,
                       module_path: str) -> None:
        """Gate a public segment before mapping it at its agreed base."""
        from repro.analyze.context import LintContext
        from repro.analyze.pipeline import verify_image

        context = LintContext(
            addrmap_entries=self.kernel.sfs.addrmap.entries(),
            self_base=base,
            expect_public=True,
        )
        verify_image(meta, context, subject=module_path)

    def _verify_private(self, placed: ObjectFile, name: str) -> None:
        """Gate a private instance before it is mapped and written."""
        from repro.analyze.context import LintContext
        from repro.analyze.pipeline import verify_image

        context = LintContext(expect_public=False)
        verify_image(placed, context, subject=name)

    def _register(self, key: str, module: LoadedModule) -> None:
        self._by_path[key] = module
        self._modules.append(module)
        self.stats.modules_mapped += 1
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.MAP, name=f"module:{module.name}",
                        pid=self.proc.pid, addr=module.base,
                        value=module.image_len)

    def _load_template(self, path: str) -> ObjectFile:
        from repro.linker.lds import load_template

        return self._with_retry(
            lambda: load_template(self.kernel, self.proc, path))

    def _on_sfs(self, path: str) -> bool:
        try:
            fs, _ = self.kernel.vfs.resolve(path, self.proc.uid,
                                            cwd=self.proc.cwd)
        except FilesystemError:
            return False
        return fs is self.kernel.sfs

    # ------------------------------------------------------------------
    # linking (relocation resolution)
    # ------------------------------------------------------------------

    def link_module(self, module: LoadedModule) -> None:
        """Resolve *module*'s retained relocations and make it
        accessible. May map further modules (lazily) on the way."""
        if module.linked:
            if not module.accessible:
                self._make_accessible(module)
            return
        tracer = _trace.TRACER
        if tracer.enabled:
            with tracer.span(EventKind.LINK_RESOLVE,
                             name=f"link:{module.name}",
                             pid=self.proc.pid, addr=module.base):
                self._resolve_retained(module)
        else:
            self._resolve_retained(module)
        module.linked = True
        if not module.accessible:
            self._make_accessible(module)
        self.stats.modules_linked += 1
        if module.sharing is SharingClass.DYNAMIC_PUBLIC and module.path:
            # Persist resolution state so other processes need not redo it.
            update_segment_meta(self.kernel, self.proc, module.path,
                                module.meta)

    def _resolve_retained(self, module: LoadedModule) -> None:
        remaining = []
        tracer = _trace.TRACER
        for reloc in module.meta.relocations:
            address = self.scoped_resolve(module, reloc.symbol)
            if address is None:
                remaining.append(reloc)
                continue
            if tracer.enabled:
                tracer.emit(EventKind.LINK_RESOLVE, name=reloc.symbol,
                            pid=self.proc.pid, addr=address)
            section = module.meta.layout[reloc.section]
            patch_reloc_in_memory(self.proc.address_space, section.base,
                                  reloc, address + reloc.addend,
                                  module.name)
            self.stats.relocs_patched += 1
        module.meta.relocations = remaining

    def _make_accessible(self, module: LoadedModule) -> None:
        if module.is_root or module.accessible:
            return
        self.kernel.syscalls.mprotect(self.proc, module.base,
                                      module.image_len, PROT_RWX)
        module.accessible = True

    # ------------------------------------------------------------------
    # scoped resolution (§3 "Scoped Linking")
    # ------------------------------------------------------------------

    def scoped_resolve(self, module: LoadedModule,
                       symbol: str) -> Optional[int]:
        """Resolve *symbol* for *module*: its own scope first, then up
        the DAG toward the root. None if undefined at the root.

        In flat-namespace mode (``scoped=False``) every module resolves
        from the root's scope only.
        """
        if not self.scoped and self.root is not None:
            self.stats.scope_lookups += 1
            return self._resolve_in_scope(self.root, symbol)
        for scope in scope_chain(module):
            self.stats.scope_lookups += 1
            address = self._resolve_in_scope(scope, symbol)
            if address is not None:
                return address
        return None

    def _resolve_in_scope(self, scope: LoadedModule,
                          symbol: str) -> Optional[int]:
        # The scope's own exports (the main program's, when the search
        # reaches the root) ...
        address = scope.exports().get(symbol)
        if address is not None:
            return address
        # ... then modules explicitly on its module list ...
        for name, class_name in scope.module_list:
            try:
                child = self.ensure_module(
                    name, SharingClass.parse(class_name), scope
                )
            except ModuleNotFoundLinkError:
                continue
            address = child.exports().get(symbol)
            if address is not None:
                return address
        # ... then modules found on its search path.
        for directory in scope.search_dirs:
            hit = self._scan_directory(directory, symbol, scope)
            if hit is not None:
                return hit
        return None

    def _scan_directory(self, directory: str, symbol: str,
                        scope: LoadedModule) -> Optional[int]:
        vfs = self.kernel.vfs
        self.stats.directory_scans += 1
        try:
            names = self._with_retry(
                lambda: self.kernel.syscalls.listdir(self.proc, directory))
        except (SyscallError, FilesystemError) as error:
            if isinstance(error, InjectedFaultError):
                raise  # exhausted retries: surface, don't swallow
            return None  # absent/unreadable directory: skip this scope
        # Prefer already-instantiated segments over raw templates so we
        # join existing public modules rather than re-instantiating.
        ordered = sorted(names, key=lambda n: (n.endswith(".o"), n))
        for name in ordered:
            path = directory.rstrip("/") + "/" + name
            try:
                if vfs.stat(path, self.proc.uid, follow=True,
                            cwd=self.proc.cwd).st_type.value != "file":
                    continue
            except FilesystemError:
                continue
            exports = peek_exports(self.kernel, self.proc, path)
            if exports is None or symbol not in exports:
                continue
            try:
                module = self.ensure_module_from_path(path, scope)
            except ModuleNotFoundLinkError:
                continue  # vanished between listdir and instantiation
            address = module.exports().get(symbol)
            if address is not None:
                return address
        return None

    # ------------------------------------------------------------------
    # fault servicing
    # ------------------------------------------------------------------

    def handle_fault(self, address: int) -> bool:
        """Lazy-linking half of the SIGSEGV handler: if *address* lies in
        a module set up for lazy linking, link it and report resolved."""
        module = self.module_at(address)
        if module is None:
            return False
        if module.accessible and module.linked:
            return False  # a genuine protection error, not our fault
        self.stats.faults_serviced += 1
        self.link_module(module)
        return True

    def module_at(self, address: int) -> Optional[LoadedModule]:
        for module in self._modules:
            if not module.is_root and module.contains(address):
                return module
        return None

    def modules(self) -> List[LoadedModule]:
        return list(self._modules)

    def forget(self, path: str) -> None:
        """Drop linker state for a destroyed segment.

        Public modules are destroyed explicitly (§5 Garbage Collection);
        a later segment may reuse the same inode and hence the same
        address, so stale LoadedModule records must not shadow it.
        """
        victims = [m for m in self._modules if m.path == path]
        for module in victims:
            self._modules.remove(module)
        for key in [k for k, m in self._by_path.items() if m in victims]:
            del self._by_path[key]


def _defined_in(obj: ObjectFile, symbol: str) -> bool:
    entry = obj.symbols.get(symbol)
    return entry is not None and entry.defined
