"""lds — Hemlock's static linker (the wrapper around ld, §3).

At static link time lds:

* creates a load image containing a new instance of every static private
  module (plus crt0);
* creates any static public modules that do not yet exist — in the same
  directory as their templates, internally relocated to their globally
  agreed SFS addresses — but leaves them in separate files;
* resolves references to symbols in static modules, including references
  to absolute addresses in static public modules (which the wrapped ld
  refuses to do);
* does *not* resolve references to symbols in dynamic modules — it does
  not even insist the modules exist yet (a warning, not an error);
* saves the dynamic module names, the search strategy, and the retained
  relocations in explicit data structures in the load image, for ldl;
* rewrites over-long 26-bit jumps through branch islands;
* optionally (``verify=True`` or ``REPRO_LINT=1``) runs the reprolint
  static verifier over the finished image and refuses to write it if
  any ERROR-severity finding turns up. The gate analyzes only
  in-memory state, so it charges zero simulated cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ModuleNotFoundLinkError, UndefinedSymbolError
from repro.fs.vfs import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.linker.branch_islands import insert_branch_islands
from repro.linker.classes import SharingClass
from repro.linker.crt0 import crt0_template
from repro.linker.module import ModuleImage, merge_objects
from repro.linker.searchpath import SearchPath
from repro.linker.segments import (
    create_public_module,
    module_path_for_template,
    read_segment_meta,
)
from repro.objfile.archive import Archive
from repro.objfile.format import ObjectFile, ObjectKind
from repro.vm.layout import HEAP_REGION, TEXT_BASE


@dataclass
class LinkRequest:
    """One module named on the lds command line with its sharing class."""

    module: str
    sharing: SharingClass = SharingClass.STATIC_PRIVATE


@dataclass
class LinkResult:
    """What a link produced."""

    executable: ObjectFile
    path: str
    warnings: List[str] = field(default_factory=list)
    static_publics: List[Tuple[str, int]] = field(default_factory=list)
    islands: int = 0
    retained_relocations: int = 0


def load_template(kernel: Kernel, proc: Process, path: str) -> ObjectFile:
    """Read a HOF relocatable from the simulated file system."""
    injector = kernel.injector
    if injector is not None:
        injector.on_link(proc, "load_template", path)
    sys = kernel.syscalls
    fd = sys.open(proc, path, O_RDONLY)
    try:
        data = sys.pread(proc, fd, 0, sys.fstat(proc, fd).st_size)
    finally:
        sys.close(proc, fd)
    obj = ObjectFile.from_bytes(data)
    return obj


def store_object(kernel: Kernel, proc: Process, path: str,
                 obj: ObjectFile) -> None:
    """Write a HOF object to the simulated file system."""
    injector = kernel.injector
    if injector is not None:
        injector.on_link(proc, "store_object", path)
    sys = kernel.syscalls
    fd = sys.open(proc, path, O_WRONLY | O_CREAT | O_TRUNC)
    try:
        sys.pwrite(proc, fd, 0, obj.to_bytes())
    finally:
        sys.close(proc, fd)


class Lds:
    """The static linker, bound to one kernel instance.

    *verify* arms the post-link reprolint gate for every link; None
    defers to the ``REPRO_LINT`` environment variable at link time.
    """

    def __init__(self, kernel: Kernel,
                 verify: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.verify = verify

    # ------------------------------------------------------------------

    def link(self, proc: Process, requests: Sequence[LinkRequest],
             output: str = "a.out",
             search_dirs: Sequence[str] = (),
             archives: Sequence[Archive] = (),
             entry: Optional[str] = None,
             with_crt0: bool = True,
             strict_dynamic: bool = False,
             use_jumptable: bool = False,
             verify: Optional[bool] = None) -> LinkResult:
        """Perform a static link; writes the executable to *output*.

        *strict_dynamic* turns the missing-dynamic-module warning into an
        error (useful in tests). *use_jumptable* routes external function
        calls through SunOS-style PLT entries instead of plain branch
        islands — the lazy *function* binding baseline of §3 (data
        references are unaffected; they cannot be deferred this way).
        *verify* overrides the linker-wide setting for this one link;
        when armed, an image with ERROR-severity reprolint findings is
        rejected with :class:`repro.errors.LintError` before anything is
        written to the file system.
        """
        search = SearchPath.for_static_link(
            proc.cwd, list(search_dirs),
            proc.getenv("LD_LIBRARY_PATH"),
        )
        warnings: List[str] = []

        static_private: List[ObjectFile] = []
        if with_crt0:
            static_private.append(crt0_template())
        public_exports: Dict[str, int] = {}
        static_publics: List[Tuple[str, int]] = []
        dynamic_list: List[Tuple[str, str]] = []

        for request in requests:
            if request.sharing is SharingClass.STATIC_PRIVATE:
                path = self._require(proc, search, request.module)
                static_private.append(load_template(self.kernel, proc, path))
            elif request.sharing is SharingClass.STATIC_PUBLIC:
                module_path, base, meta = self._ensure_public(
                    proc, search, request.module, public_exports,
                )
                static_publics.append((module_path, base))
                dynamic_list.append((module_path,
                                     SharingClass.STATIC_PUBLIC.value))
                for name, address in _exports_of(meta).items():
                    public_exports.setdefault(name, address)
            else:
                # Dynamic classes: record, warn if nothing locatable yet.
                dynamic_list.append((request.module,
                                     request.sharing.value))
                if not self._locatable(proc, search, request.module):
                    message = (
                        f"dynamic module {request.module!r} not found at "
                        f"static link time (searched: "
                        f"{':'.join(search.directories)})"
                    )
                    if strict_dynamic:
                        raise ModuleNotFoundLinkError(
                            request.module, search.directories
                        )
                    warnings.append(message)

        merged = merge_objects(static_private, output)

        # Archive members that satisfy remaining undefineds join the image.
        undefined = set(merged.undefined_symbols()) \
            - {s.name for s in merged.defined_globals()}
        undefined -= set(public_exports)
        for archive in archives:
            members = archive.resolve(undefined)
            if members:
                static_private.extend(m.clone() for m in members)
                merged = merge_objects(static_private, output)
                undefined = set(merged.undefined_symbols()) \
                    - {s.name for s in merged.defined_globals()}
                undefined -= set(public_exports)

        if use_jumptable:
            from repro.linker.jumptable import insert_jump_table

            insert_jump_table(
                merged, lambda symbol: not _defined_in(merged, symbol)
            )
        islands = insert_branch_islands(
            merged,
            lambda symbol: not _defined_in(merged, symbol),
        )

        image = ModuleImage(merged, output)
        image.layout_split(TEXT_BASE, HEAP_REGION.start)
        remaining = image.apply_relocations(
            lambda symbol: public_exports.get(symbol)
        )

        # Anything still unresolved must belong to a dynamic module; if
        # there are no dynamic modules at all, that's a plain link error.
        if remaining and not dynamic_list:
            raise UndefinedSymbolError(sorted({r.symbol for r in remaining}))

        executable = image.to_executable()
        executable.kind = ObjectKind.EXECUTABLE
        executable.link_info.dynamic_modules = dynamic_list
        executable.link_info.search_path = list(search.directories)
        if entry is not None:
            executable.entry_symbol = entry
        elif not executable.entry_symbol:
            executable.entry_symbol = "_start" if with_crt0 else "main"

        if self._should_verify(verify):
            self._verify(executable, output, public_exports, dynamic_list)

        store_object(self.kernel, proc, output, executable)
        return LinkResult(
            executable=executable,
            path=output,
            warnings=warnings,
            static_publics=static_publics,
            islands=islands,
            retained_relocations=len(executable.relocations),
        )

    # ------------------------------------------------------------------

    def add_link_info(self, template: ObjectFile,
                      search_dirs: Sequence[str] = (),
                      modules: Sequence[Tuple[str, str]] = ()) -> ObjectFile:
        """lds -r mode: emit a new template carrying search-strategy and
        module-list information (the hooks scoped linking uses)."""
        out = template.clone()
        out.link_info.search_path.extend(search_dirs)
        out.link_info.dynamic_modules.extend(modules)
        return out

    # ------------------------------------------------------------------

    def _should_verify(self, override: Optional[bool]) -> bool:
        if override is not None:
            return override
        if self.verify is not None:
            return self.verify
        from repro.analyze.pipeline import lint_enabled_default

        return lint_enabled_default()

    def _verify(self, executable: ObjectFile, output: str,
                public_exports: Dict[str, int],
                dynamic_list: List[Tuple[str, str]]) -> None:
        """The reprolint gate: refuse to write a broken image.

        The context is built purely from state this link already holds
        in memory (no syscalls), so the gate cannot perturb simulated
        cycle counts.
        """
        from repro.analyze.context import LintContext, ScopeModule
        from repro.analyze.pipeline import verify_image

        level = []
        if public_exports:
            level.append(ScopeModule(
                "<static-public>", sharing=SharingClass.STATIC_PUBLIC.value,
                exports=dict(public_exports),
            ))
        level.extend(
            ScopeModule(name, sharing=sclass, exports=None)
            for name, sclass in dynamic_list
            if sclass != SharingClass.STATIC_PUBLIC.value
        )
        dynamic = [s for _n, s in dynamic_list
                   if s != SharingClass.STATIC_PUBLIC.value]
        context = LintContext(
            scope_levels=[level] if level else [],
            closed_world=not dynamic,
            expect_public=False,
        )
        verify_image(executable, context, subject=output)

    def _require(self, proc: Process, search: SearchPath,
                 name: str) -> str:
        """Locate a static module or abort the link."""
        path = search.find(self.kernel.vfs, name, proc.uid, proc.cwd)
        if path is None:
            raise ModuleNotFoundLinkError(name, search.directories)
        return path

    def _locatable(self, proc: Process, search: SearchPath,
                   name: str) -> bool:
        if search.find(self.kernel.vfs, name, proc.uid, proc.cwd):
            return True
        if name.endswith(".o"):
            return search.find(self.kernel.vfs, name[:-2], proc.uid,
                               proc.cwd) is not None
        return False

    def _ensure_public(self, proc: Process, search: SearchPath,
                       template_name: str,
                       known_exports: Dict[str, int]
                       ) -> Tuple[str, int, ObjectFile]:
        """Create-or-open a static public module; returns
        (module path, base address, segment metadata)."""
        template_path = self._require(proc, search, template_name)
        module_path = module_path_for_template(template_path)
        if self.kernel.vfs.exists(module_path, proc.uid):
            meta, base, _image_len = read_segment_meta(
                self.kernel, proc, module_path
            )
            return module_path, base, meta
        template = load_template(self.kernel, proc, template_path)
        meta, base = create_public_module(
            self.kernel, proc, template, module_path,
            resolver=lambda symbol: known_exports.get(symbol),
        )
        return module_path, base, meta


def _defined_in(obj: ObjectFile, symbol: str) -> bool:
    entry = obj.symbols.get(symbol)
    return entry is not None and entry.defined


def _exports_of(meta: ObjectFile) -> Dict[str, int]:
    return {s.name: s.value for s in meta.defined_globals()}
