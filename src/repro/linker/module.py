"""Module images: placement, symbol finalization, relocation.

The linkers "cooperate with the kernel to assign a virtual address to
each module. They relocate modules to reside at particular addresses (by
finalizing absolute references to internal symbols ...), and they link
modules together by resolving cross-module references" (§2). This module
implements those two verbs:

* :class:`ModuleImage` wraps a (cloned) template, assigns section bases —
  contiguous for segment modules, split text/data for the main load
  image — and applies relocations against a resolver;
* :func:`merge_objects` combines static-private templates into one link
  unit (what ld does when building the a.out);
* :func:`patch_reloc_in_memory` applies one relocation directly to a
  mapped module through an address space — the run-time patching ldl and
  the fault handler perform.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import DuplicateSymbolError, RelocationError
from repro.hw import isa
from repro.objfile.format import (
    ObjectFile,
    ObjectKind,
    Relocation,
    RelocType,
    SEC_ABS,
    SEC_BSS,
    SEC_DATA,
    SEC_TEXT,
    SectionLayout,
    Symbol,
    SymBinding,
)
from repro.util.bits import align_up, hi16, lo16
from repro.vm.address_space import AddressSpace

SECTION_ALIGN = 16

# Resolves a symbol name to an absolute address, or None if unknown.
Resolver = Callable[[str], Optional[int]]


class ModuleImage:
    """A template in the process of becoming a placed, linked module."""

    def __init__(self, template: ObjectFile,
                 name: Optional[str] = None) -> None:
        self.obj = template.clone()
        self.name = name or template.name
        self.bases: Dict[str, int] = {}
        self.heap_base = 0
        self.total_size = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def layout_contiguous(self, base: int) -> int:
        """Place text, data, bss, and heap back to back at *base*.

        Used for segment modules (public and dynamic private), whose
        entire image lives in one mapping. Returns the total size.

        Machine code carries 32-bit absolute addresses (lui/ori pairs),
        so a module containing text cannot be placed above the 32-bit
        space — the 64-bit configuration shares *data* segments there
        but would need a 64-bit CPU for code, exactly the boundary the
        paper draws for its future work.
        """
        if base > 0xFFFFFFFF and self.obj.text:
            raise RelocationError(
                f"module {self.name!r} contains code but was assigned "
                f"the 64-bit address 0x{base:x}; the 32-bit ISA cannot "
                f"address it"
            )
        text_base = base
        data_base = align_up(text_base + len(self.obj.text), SECTION_ALIGN)
        bss_base = align_up(data_base + len(self.obj.data), SECTION_ALIGN)
        heap_base = align_up(bss_base + self.obj.bss_size, SECTION_ALIGN)
        end = heap_base + self.obj.heap_size
        self.bases = {SEC_TEXT: text_base, SEC_DATA: data_base,
                      SEC_BSS: bss_base}
        self.heap_base = heap_base
        self.total_size = end - base
        self._record_layout()
        return self.total_size

    def layout_split(self, text_base: int, data_base: int) -> None:
        """Place text and data in separate regions (the main load image:
        text in the text region, data+bss in the heap region)."""
        bss_base = align_up(data_base + len(self.obj.data), SECTION_ALIGN)
        self.bases = {SEC_TEXT: text_base, SEC_DATA: data_base,
                      SEC_BSS: bss_base}
        self.heap_base = align_up(bss_base + self.obj.bss_size,
                                  SECTION_ALIGN)
        self.total_size = 0
        self._record_layout()

    def _record_layout(self) -> None:
        self.obj.layout = {
            SEC_TEXT: SectionLayout(SEC_TEXT, self.bases[SEC_TEXT],
                                    len(self.obj.text)),
            SEC_DATA: SectionLayout(SEC_DATA, self.bases[SEC_DATA],
                                    len(self.obj.data)),
            SEC_BSS: SectionLayout(SEC_BSS, self.bases[SEC_BSS],
                                   self.obj.bss_size),
            "heap": SectionLayout("heap", self.heap_base,
                                  self.obj.heap_size),
        }

    @property
    def base(self) -> int:
        return self.bases[SEC_TEXT]

    # ------------------------------------------------------------------
    # symbols
    # ------------------------------------------------------------------

    def symbol_address(self, name: str) -> Optional[int]:
        """Absolute address of a symbol defined in this module (post
        placement), or None."""
        symbol = self.obj.symbols.get(name)
        if symbol is None or not symbol.defined:
            return None
        if symbol.section == SEC_ABS:
            return symbol.value
        base = self.bases.get(symbol.section)
        if base is None:
            raise RelocationError(
                f"module {self.name!r} not laid out before symbol lookup"
            )
        return base + symbol.value

    def finalize_symbols(self) -> None:
        """Convert every defined symbol to its absolute address."""
        for symbol in self.obj.symbols.values():
            if symbol.defined and symbol.section != SEC_ABS:
                symbol.value = self.bases[symbol.section] + symbol.value
                symbol.section = SEC_ABS

    def exported_addresses(self) -> Dict[str, int]:
        """name -> absolute address for every defined global."""
        out = {}
        for symbol in self.obj.defined_globals():
            address = self.symbol_address(symbol.name)
            assert address is not None
            out[symbol.name] = address
        return out

    # ------------------------------------------------------------------
    # relocation
    # ------------------------------------------------------------------

    def apply_relocations(self, resolver: Optional[Resolver] = None
                          ) -> List[Relocation]:
        """Patch section bytes; return the relocations left unresolved.

        Local (internally defined) symbols always resolve; others go
        through *resolver*. Unresolved relocations stay in
        ``obj.relocations`` — the explicit retained-relocation structure
        lds must keep because IRIX ld would not (§3).
        """
        remaining: List[Relocation] = []
        for reloc in self.obj.relocations:
            target = self.symbol_address(reloc.symbol)
            if target is None and resolver is not None:
                target = resolver(reloc.symbol)
            if target is None:
                remaining.append(reloc)
                continue
            self._patch(reloc, target + reloc.addend)
        self.obj.relocations = remaining
        return remaining

    def _patch(self, reloc: Relocation, target: int) -> None:
        buf = self.obj.section_bytes(reloc.section)
        base = self.bases[reloc.section]
        patch_bytes(buf, reloc, base, target, self.name)

    def image_bytes(self) -> bytes:
        """The contiguous segment image (text..data..bss..heap zeros).

        Only valid after :meth:`layout_contiguous`.
        """
        if self.total_size == 0 and (self.obj.bss_size or self.obj.data
                                     or self.obj.text):
            raise RelocationError(
                f"module {self.name!r} was not laid out contiguously"
            )
        image = bytearray(self.total_size)
        text_off = 0
        data_off = self.bases[SEC_DATA] - self.bases[SEC_TEXT]
        image[text_off: text_off + len(self.obj.text)] = self.obj.text
        image[data_off: data_off + len(self.obj.data)] = self.obj.data
        return bytes(image)

    # ------------------------------------------------------------------
    # output objects
    # ------------------------------------------------------------------

    def to_segment_meta(self) -> ObjectFile:
        """Metadata describing this placed module (symbols at absolute
        addresses, retained relocations, scoped-linking info)."""
        meta = ObjectFile(self.name, ObjectKind.SEGMENT)
        meta.bss_size = self.obj.bss_size
        meta.heap_size = self.obj.heap_size
        meta.link_info = self.obj.link_info.copy()
        meta.layout = dict(self.obj.layout)
        meta.relocations = list(self.obj.relocations)
        for symbol in self.obj.symbols.values():
            if symbol.defined:
                address = self.symbol_address(symbol.name)
                assert address is not None
                meta.symbols[symbol.name] = Symbol(
                    symbol.name, SEC_ABS, address, symbol.binding,
                    symbol.size, symbol.kind,
                )
            else:
                meta.symbols[symbol.name] = Symbol(
                    symbol.name, symbol.section, symbol.value,
                    symbol.binding, symbol.size, symbol.kind,
                )
        return meta

    def to_executable(self) -> ObjectFile:
        """The a.out: placed sections + retained relocs + link info."""
        out = self.obj.clone()
        out.kind = ObjectKind.EXECUTABLE
        image = ModuleImage(out, self.name)   # reuse symbol finalization
        image.bases = dict(self.bases)
        image.heap_base = self.heap_base
        image.finalize_symbols()
        image.obj.layout = dict(self.obj.layout)
        image.obj.name = self.name
        return image.obj


# ---------------------------------------------------------------------------
# low-level patching (shared with run-time linking)
# ---------------------------------------------------------------------------

def patch_bytes(buf: bytearray, reloc: Relocation, section_base: int,
                target: int, module_name: str) -> None:
    """Apply *reloc* to *buf* (whose first byte sits at *section_base*)."""
    offset = reloc.offset
    if offset + 4 > len(buf):
        raise RelocationError(
            f"{module_name}: relocation offset 0x{offset:x} out of range"
        )
    word = int.from_bytes(buf[offset: offset + 4], "little")
    word = _patched_word(word, reloc, section_base + offset, target,
                         module_name)
    buf[offset: offset + 4] = word.to_bytes(4, "little")


def patch_reloc_in_memory(space: AddressSpace, section_base: int,
                          reloc: Relocation, target: int,
                          module_name: str = "<module>") -> None:
    """Apply *reloc* to a module already mapped in *space*.

    This is what ldl and the SIGSEGV handler do when they resolve
    references at run time; the store bypasses page protections the way
    the kernel-assisted runtime does.
    """
    site = section_base + reloc.offset
    word = space.load_word(site, force=True)
    word = _patched_word(word, reloc, site, target, module_name)
    space.store_word(site, word, force=True)


def _patched_word(word: int, reloc: Relocation, site: int, target: int,
                  module_name: str) -> int:
    if reloc.type is RelocType.WORD32:
        return target & 0xFFFFFFFF
    if reloc.type is RelocType.HI16:
        return (word & 0xFFFF0000) | hi16(target)
    if reloc.type is RelocType.LO16:
        return (word & 0xFFFF0000) | lo16(target)
    if reloc.type is RelocType.JUMP26:
        if not isa.jump_reachable(site, target):
            raise RelocationError(
                f"{module_name}: jump at 0x{site:08x} cannot reach "
                f"0x{target:08x} (26-bit limit); a branch island was "
                f"required but missing"
            )
        return (word & 0xFC000000) | ((target >> 2) & 0x3FFFFFF)
    raise RelocationError(f"unknown relocation type {reloc.type}")


# ---------------------------------------------------------------------------
# merging static-private templates into one link unit
# ---------------------------------------------------------------------------

def merge_objects(objects: List[ObjectFile], name: str) -> ObjectFile:
    """Concatenate templates section-wise into a single relocatable.

    Global symbols are deduplicated (defined-over-undefined, duplicate
    definitions are an error); local symbols are renamed
    ``module::symbol`` so same-named locals in different templates stay
    distinct. Link info (dynamic module lists, search dirs) accumulates.
    """
    merged = ObjectFile(name, ObjectKind.RELOCATABLE)
    text_off = data_off = bss_off = heap_off = 0
    for obj in objects:
        text_off = align_up(len(merged.text), SECTION_ALIGN)
        merged.text.extend(b"\x00" * (text_off - len(merged.text)))
        data_off = align_up(len(merged.data), SECTION_ALIGN)
        merged.data.extend(b"\x00" * (data_off - len(merged.data)))
        bss_off = align_up(merged.bss_size, SECTION_ALIGN)
        merged.bss_size = bss_off
        heap_off = merged.heap_size

        offsets = {SEC_TEXT: text_off, SEC_DATA: data_off, SEC_BSS: bss_off}
        renames: Dict[str, str] = {}
        for symbol in obj.symbols.values():
            new_name = symbol.name
            if symbol.binding is SymBinding.LOCAL and symbol.defined:
                new_name = f"{obj.name}::{symbol.name}"
                renames[symbol.name] = new_name
            if not symbol.defined:
                merged.reference(new_name)
                continue
            existing = merged.symbols.get(new_name)
            if existing is not None and existing.defined:
                raise DuplicateSymbolError(new_name, "<merged>", obj.name)
            section_off = offsets.get(symbol.section, 0)
            merged.symbols[new_name] = Symbol(
                new_name, symbol.section, symbol.value + section_off,
                symbol.binding, symbol.size, symbol.kind,
            )
        for reloc in obj.relocations:
            merged.relocations.append(Relocation(
                reloc.section,
                reloc.offset + offsets[reloc.section],
                reloc.type,
                renames.get(reloc.symbol, reloc.symbol),
                reloc.addend,
            ))
        merged.text.extend(obj.text)
        merged.data.extend(obj.data)
        merged.bss_size += obj.bss_size
        merged.heap_size = heap_off + obj.heap_size
        merged.link_info.dynamic_modules.extend(
            obj.link_info.dynamic_modules
        )
        merged.link_info.search_path.extend(obj.link_info.search_path)
        if obj.entry_symbol and not merged.entry_symbol:
            merged.entry_symbol = obj.entry_symbol
    return merged
