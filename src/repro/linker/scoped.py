"""Scope-chain helpers for scoped linking (§3, Figure 2).

"When a module M is brought in, its undefined references are first
resolved against the external symbols of modules found on M's own module
list and search path. If this step is not completely successful,
consideration moves up to the module(s) that caused M to be loaded in —
M's 'parent' ... and so on. The linking structure of a program can be
viewed as a DAG in which children can search up from their current
position to the root, but never down."

This module provides the pure pieces: breadth-first ancestor iteration
over the DAG, and export peeking — reading just the symbol table of an
on-disk template or segment to decide whether it can satisfy a symbol,
without instantiating it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.errors import ObjectFormatError, SimulationError
from repro.fs.vfs import O_RDONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.linker.segments import TRAILER, TRAILER_MAGIC
from repro.objfile.format import ObjectFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linker.ldl import LoadedModule


def scope_chain(module: "LoadedModule") -> Iterator["LoadedModule"]:
    """Yield *module*, then its parents, grandparents, ... (BFS, dedup).

    Children search up toward the root, never down.
    """
    seen = {id(module)}
    frontier: List["LoadedModule"] = [module]
    while frontier:
        next_frontier: List["LoadedModule"] = []
        for node in frontier:
            yield node
            for parent in node.parents:
                if id(parent) not in seen:
                    seen.add(id(parent))
                    next_frontier.append(parent)
        frontier = next_frontier


def peek_exports(kernel: Kernel, proc: Process,
                 path: str) -> Optional[Dict[str, int]]:
    """Defined global symbols of the module file at *path*, or None if
    the file is not a module.

    For templates the values are section offsets (only the *names*
    matter to the caller); for segment files they are absolute
    addresses. This reads symbol tables through the ordinary file
    interface without creating or mapping anything.
    """
    sys = kernel.syscalls
    try:
        fd = sys.open(proc, path, O_RDONLY)
    except SimulationError:
        return None
    try:
        size = sys.fstat(proc, fd).st_size
        if size < 4:
            return None
        if path.endswith(".o"):
            data = sys.pread(proc, fd, 0, size)
            try:
                obj = ObjectFile.from_bytes(data)
            except ObjectFormatError:
                return None
            return {s.name: s.value for s in obj.defined_globals()}
        if size < TRAILER.size:
            return None
        trailer = sys.pread(proc, fd, size - TRAILER.size, TRAILER.size)
        magic, image_len, meta_len, _reserved = TRAILER.unpack(trailer)
        if magic != TRAILER_MAGIC:
            return None
        meta_bytes = sys.pread(proc, fd, image_len, meta_len)
        try:
            meta = ObjectFile.from_bytes(meta_bytes)
        except ObjectFormatError:
            return None
        return {s.name: s.value for s in meta.defined_globals()}
    finally:
        sys.close(proc, fd)
