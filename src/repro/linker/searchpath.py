"""Module search strategy — §3 "The Linkers".

At static link time ``lds`` searches, in order:

1. the current directory;
2. the path specified in a special command-line argument (``-L``);
3. the path specified by the ``LD_LIBRARY_PATH`` environment variable;
4. the default library directories.

At execution time ``ldl`` searches:

1. the path specified by ``LD_LIBRARY_PATH`` *now* (changing it before
   execution is how users substitute module versions — and how the
   Presto-style parallel apps of §4 point children at a per-instance
   temporary directory);
2. the directories in which lds searched for static modules: the
   directory in which static linking occurred, the lds ``-L``
   directories, the ``LD_LIBRARY_PATH`` directories at static link time,
   and the defaults.

If there is more than one module with the same name, the first found
wins. Each template may in addition carry its *own* search path
(``.searchdir``), the basis of scoped linking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.fs.path import join, normalize
from repro.fs.vfs import Vfs

DEFAULT_LIBRARY_DIRS = ["/lib", "/usr/lib", "/shared/lib"]


def parse_library_path(value: str) -> List[str]:
    """Split a colon-separated LD_LIBRARY_PATH value."""
    return [part for part in value.split(":") if part]


@dataclass
class SearchPath:
    """An ordered list of directories plus the lookup primitive."""

    directories: List[str] = field(default_factory=list)

    @classmethod
    def for_static_link(cls, cwd: str, cmdline_dirs: List[str],
                        ld_library_path: str,
                        defaults: Optional[List[str]] = None) -> "SearchPath":
        """The lds search order."""
        dirs = [cwd]
        dirs += cmdline_dirs
        dirs += parse_library_path(ld_library_path)
        dirs += defaults if defaults is not None else DEFAULT_LIBRARY_DIRS
        return cls(_dedup(dirs))

    @classmethod
    def for_run_time(cls, ld_library_path_now: str,
                     static_search_path: List[str]) -> "SearchPath":
        """The ldl search order: current LD_LIBRARY_PATH first, then
        everywhere lds looked."""
        dirs = parse_library_path(ld_library_path_now)
        dirs += static_search_path
        return cls(_dedup(dirs))

    def find(self, vfs: Vfs, name: str, uid: int = 0,
             cwd: str = "/") -> Optional[str]:
        """Locate module *name*; returns an absolute path or None.

        Absolute (or explicitly relative) names bypass the search, as
        they do for ld. Only regular files count — a directory that
        happens to share the module's name is not a module.
        """
        if name.startswith("/"):
            path = normalize(name)
            return path if _is_regular_file(vfs, path, uid) else None
        if name.startswith("./") or name.startswith("../"):
            path = normalize(name, cwd)
            return path if _is_regular_file(vfs, path, uid) else None
        for directory in self.directories:
            path = normalize(join(directory, name), cwd)
            if _is_regular_file(vfs, path, uid):
                return path
        return None

    def prepend(self, directories: List[str]) -> "SearchPath":
        """A new SearchPath with *directories* searched first."""
        return SearchPath(_dedup(list(directories) + self.directories))

    def __iter__(self):
        return iter(self.directories)


def find_module(vfs: Vfs, name: str, search: SearchPath, uid: int = 0,
                cwd: str = "/") -> Optional[str]:
    """Convenience wrapper around :meth:`SearchPath.find`."""
    return search.find(vfs, name, uid, cwd)


def _is_regular_file(vfs: Vfs, path: str, uid: int) -> bool:
    from repro.errors import FilesystemError
    from repro.fs.inode import InodeType

    try:
        return vfs.stat(path, uid).st_type is InodeType.FILE
    except FilesystemError:
        return False


def _dedup(items: List[str]) -> List[str]:
    seen = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
