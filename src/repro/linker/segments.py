"""Public-module segment files in the shared file system.

A public module "resides in the same directory as its template (.o)
file, and has a name obtained by dropping the final '.o'. It also has a
unique, globally agreed-upon virtual address, and is internally
relocated on the assumption that it resides at that address. Public
modules are persistent; like traditional files they continue to exist
until explicitly destroyed." (§2)

On-file layout::

    [segment image, padded to a page boundary]   <- mapped at the address
    [serialized SEGMENT metadata (HOF)]          <- symbols, relocs, scope
    [16-byte trailer: magic, image_len, meta_len, reserved]

The image region is what gets mapped; the metadata rides along in the
same file (read through the ordinary file interface), so a segment is
self-describing — ldl can map a module it has never seen before.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.errors import FileLimitError, LinkError, ObjectFormatError
from repro.fs.path import dirname, basename, join
from repro.fs.vfs import O_CREAT, O_EXCL, O_RDONLY, O_RDWR, O_WRONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.linker.branch_islands import insert_branch_islands
from repro.linker.module import ModuleImage, Resolver
from repro.objfile.format import ObjectFile, ObjectKind
from repro.sfs.sharedfs import MAX_FILE_SIZE
from repro.util.bits import align_up
from repro.vm.layout import PAGE_SIZE

TRAILER = struct.Struct("<4sIII")
TRAILER_MAGIC = b"HSEG"


def module_path_for_template(template_path: str) -> str:
    """Public module path: template directory + name minus '.o'."""
    name = basename(template_path)
    if not name.endswith(".o"):
        raise LinkError(
            f"template {template_path!r} does not end in '.o'"
        )
    return join(dirname(template_path), name[:-2])


def public_module_exists(kernel: Kernel, proc: Process,
                         module_path: str) -> bool:
    return kernel.vfs.exists(module_path, proc.uid, cwd=proc.cwd)


def create_public_module(kernel: Kernel, proc: Process,
                         template: ObjectFile, module_path: str,
                         resolver: Optional[Resolver] = None
                         ) -> Tuple[ObjectFile, int]:
    """Create and initialize a public module from its template.

    The module file must land on the shared partition — that is what
    gives it its address. Returns (segment metadata, base address).
    Raises if the file already exists (creation is serialized by the
    caller with a file lock).
    """
    sys = kernel.syscalls
    fs, _parent = kernel.vfs._resolve_dir(dirname(module_path), proc.uid)
    if fs is not kernel.sfs:
        raise LinkError(
            f"public module {module_path!r} must reside on the shared "
            f"file system ({kernel.sfs_mount})"
        )
    fd = sys.open(proc, module_path, O_WRONLY | O_CREAT | O_EXCL)
    try:
        info = sys.fstat(proc, fd)
        base = kernel.sfs.address_of_inode(info.st_ino)

        working = template.clone()
        insert_branch_islands(
            working,
            lambda symbol: not _defined_locally(working, symbol),
        )
        image = ModuleImage(working, name=basename(module_path))
        image.layout_contiguous(base)
        image.apply_relocations(resolver)
        meta = image.to_segment_meta()

        raw_image = image.image_bytes()
        image_len = align_up(max(len(raw_image), 1), PAGE_SIZE)
        meta_bytes = meta.to_bytes()
        total = image_len + len(meta_bytes) + TRAILER.size
        if total > MAX_FILE_SIZE:
            raise FileLimitError(
                f"module {module_path!r} needs {total} bytes; shared "
                f"files are limited to {MAX_FILE_SIZE}"
            )
        sys.pwrite(proc, fd, 0, raw_image)
        sys.ftruncate(proc, fd, image_len)  # zero-fill pad + bss + heap
        sys.pwrite(proc, fd, image_len, meta_bytes)
        sys.pwrite(proc, fd, image_len + len(meta_bytes),
                   TRAILER.pack(TRAILER_MAGIC, image_len, len(meta_bytes),
                                0))
        return meta, base
    finally:
        sys.close(proc, fd)


def read_segment_meta(kernel: Kernel, proc: Process,
                      module_path: str) -> Tuple[ObjectFile, int, int]:
    """Read a segment file's metadata.

    Returns (metadata, base address, image length in bytes).
    """
    sys = kernel.syscalls
    fd = sys.open(proc, module_path, O_RDONLY)
    try:
        size = sys.fstat(proc, fd).st_size
        if size < TRAILER.size:
            raise ObjectFormatError(
                f"{module_path!r} is too small to be a segment"
            )
        trailer = sys.pread(proc, fd, size - TRAILER.size, TRAILER.size)
        magic, image_len, meta_len, _reserved = TRAILER.unpack(trailer)
        if magic != TRAILER_MAGIC:
            raise ObjectFormatError(
                f"{module_path!r} lacks the segment trailer"
            )
        meta_bytes = sys.pread(proc, fd, image_len, meta_len)
        meta = ObjectFile.from_bytes(meta_bytes)
        if meta.kind is not ObjectKind.SEGMENT:
            raise ObjectFormatError(
                f"{module_path!r} metadata is not segment metadata"
            )
        base = meta.layout["text"].base
        return meta, base, image_len
    finally:
        sys.close(proc, fd)


def update_segment_meta(kernel: Kernel, proc: Process, module_path: str,
                        meta: ObjectFile) -> None:
    """Rewrite a segment file's metadata in place (after run-time
    resolution fixed some of its retained relocations)."""
    sys = kernel.syscalls
    fd = sys.open(proc, module_path, O_RDWR)
    try:
        size = sys.fstat(proc, fd).st_size
        trailer = sys.pread(proc, fd, size - TRAILER.size, TRAILER.size)
        magic, image_len, _meta_len, _reserved = TRAILER.unpack(trailer)
        if magic != TRAILER_MAGIC:
            raise ObjectFormatError(
                f"{module_path!r} lacks the segment trailer"
            )
        meta_bytes = meta.to_bytes()
        sys.ftruncate(proc, fd, image_len)
        sys.pwrite(proc, fd, image_len, meta_bytes)
        sys.pwrite(proc, fd, image_len + len(meta_bytes),
                   TRAILER.pack(TRAILER_MAGIC, image_len, len(meta_bytes),
                                0))
    finally:
        sys.close(proc, fd)


def destroy_public_module(kernel: Kernel, proc: Process,
                          module_path: str) -> None:
    """Explicit destruction — the only way a public module goes away."""
    kernel.syscalls.unlink(proc, module_path)


def _defined_locally(obj: ObjectFile, symbol: str) -> bool:
    entry = obj.symbols.get(symbol)
    return entry is not None and entry.defined
