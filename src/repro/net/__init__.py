"""repro.net — a deterministic multi-node Hemlock cluster.

Extends the single-machine prototype to N machines sharing the paper's
global segment address space over a simulated network: a seeded fabric
(:mod:`repro.net.link`), a round-based cluster scheduler
(:mod:`repro.net.cluster`), and a single-writer-invalidation coherence
protocol that piggybacks on the existing SIGSEGV plumbing
(:mod:`repro.net.coherence`). Everything is bit-identical per
``(seed, fault plan)``; an unbooted cluster costs a single attribute
check per public fault.
"""

from repro.net.cluster import Cluster, Machine, NodePort
from repro.net.coherence import (
    COHERENCE_PORT,
    CoherenceAgent,
    CoherenceStats,
    SegmentDirectory,
    SegmentState,
)
from repro.net.link import (
    Fabric,
    FabricStats,
    Frame,
    FrameKind,
    MAX_RETRANSMITS,
    Nic,
    mix_seed,
)

__all__ = [
    "Cluster",
    "Machine",
    "NodePort",
    "COHERENCE_PORT",
    "CoherenceAgent",
    "CoherenceStats",
    "SegmentDirectory",
    "SegmentState",
    "Fabric",
    "FabricStats",
    "Frame",
    "FrameKind",
    "MAX_RETRANSMITS",
    "Nic",
    "mix_seed",
]
