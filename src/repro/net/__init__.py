"""repro.net — a deterministic multi-node Hemlock cluster.

Extends the single-machine prototype to N machines sharing the paper's
global segment address space over a simulated network: a seeded fabric
(:mod:`repro.net.link`), a round-based cluster scheduler
(:mod:`repro.net.cluster`), and a single-writer-invalidation coherence
protocol that piggybacks on the existing SIGSEGV plumbing
(:mod:`repro.net.coherence`). Arm ``Cluster(..., ha=True)`` to add the
failure model of :mod:`repro.net.ha`: seeded node crashes, netd
wedges, partitions and reboots, with lease-based reclamation and
round-based membership. Everything is bit-identical per ``(seed,
fault plan)``; an unbooted cluster costs a single attribute check per
public fault, and an un-armed HA plane a single ``is None`` check per
frame.
"""

from repro.net.cluster import Cluster, Machine, NodePort
from repro.net.ha import HA_PORT, HaConfig, HaManager, HaStats
from repro.net.coherence import (
    COHERENCE_PORT,
    CoherenceAgent,
    CoherenceStats,
    SegmentDirectory,
    SegmentState,
)
from repro.net.link import (
    Fabric,
    FabricStats,
    Frame,
    FrameKind,
    MAX_RETRANSMITS,
    Nic,
    mix_seed,
)

__all__ = [
    "Cluster",
    "Machine",
    "NodePort",
    "HA_PORT",
    "HaConfig",
    "HaManager",
    "HaStats",
    "COHERENCE_PORT",
    "CoherenceAgent",
    "CoherenceStats",
    "SegmentDirectory",
    "SegmentState",
    "Fabric",
    "FabricStats",
    "Frame",
    "FrameKind",
    "MAX_RETRANSMITS",
    "Nic",
    "mix_seed",
]
