"""A deterministic multi-node Hemlock cluster.

A :class:`Cluster` boots N fully independent machines — each with its
own kernel, VM, clock, and (optionally) its own durable volume — and
steps them under a round-based scheduler that is the cluster's single
source of happens-before order: every round first delivers the due
frames into NIC inboxes (in the fabric's total ``(round, seq, copy)``
order), then gives every runnable process on every machine one slice,
machines in node order. Two boots from the same ``(seed, fault plan)``
therefore produce bit-identical traffic, traces, and per-node cycle
counts.

Each machine reorders its SFS free-inode list so it allocates from its
own contiguous stripe of the 1024 global slots (``MAX_INODES //
nnodes`` inos per node). Segment addresses are a pure function of the
inode number, so striping is what makes addresses *cluster-wide*
agreed: a segment created on node 2 occupies an address no other node
will ever hand out. Foreign inos stay on the free list (replica
installation pins them by number); a node that exhausts its stripe
starts allocating foreign inos and loses the global-uniqueness
guarantee — the prototype's documented limit, matching the paper's
fixed 1024-slot partition.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NetError, SimulationError
from repro.kernel.process import ProcessState
from repro.net.coherence import CoherenceAgent, SegmentDirectory
from repro.net.ha import HaConfig, HaManager, _had_body
from repro.net.link import Fabric, FrameKind, Nic
from repro.sfs.sharedfs import MAX_INODES

#: ceiling for :meth:`Cluster.run` when the caller gives none
DEFAULT_MAX_ROUNDS = 100_000

#: consecutive no-progress rounds before :meth:`Cluster.run` declares
#: a wedge (daemons alive and runnable, so never quiescent, but no
#: frame, queue, or process-state change — e.g. a dead consumer whose
#: queue nobody will ever drain)
WEDGE_ROUNDS = 1_000


def _netd_body(kernel, proc):
    """The per-machine network daemon: drains the NIC inbox each round
    and forwards application datagrams into the local message queue
    keyed by the frame's port, so ordinary queue-reading daemons work
    unchanged on a clustered machine. Runs forever (a daemon); the
    cluster terminates it at shutdown.

    A daemon death would wedge the whole cluster (frames pile up in an
    inbox nobody drains), so injected syscall faults are absorbed: the
    frame stays on a backlog and the forward retries next round."""
    nic = kernel.nic
    sys = kernel.syscalls
    backlog = []
    while True:
        for frame in nic.poll(proc):
            if frame.kind is FrameKind.DATA:
                backlog.append(frame)
            elif frame.kind is FrameKind.HEARTBEAT \
                    and kernel.ha is not None:
                kernel.ha.on_heartbeat_frame(frame)
        while backlog:
            frame = backlog[0]
            try:
                sys.msgget(proc, frame.port)
                if not sys.msgsnd(proc, frame.port, frame.payload,
                                  blocking=False):
                    yield  # queue full: let a reader drain it, retry
                    continue
            except SimulationError:
                injector = kernel.injector
                if injector is not None:
                    injector.note_retry()
                yield
                continue
            backlog.pop(0)
        yield


class NodePort:
    """The ``boot(net=...)`` attachment for one cluster slot: carries
    just enough identity for the booting kernel to wire itself in."""

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id

    def attach(self, kernel) -> None:
        self.cluster._attach(self.node_id, kernel)


class Machine:
    """One cluster member: a booted kernel plus its NIC, coherence
    agent, and network daemon."""

    def __init__(self, cluster: "Cluster", node_id: int, kernel,
                 nic: Nic, agent: CoherenceAgent) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.kernel = kernel
        self.nic = nic
        self.agent = agent
        self.system = None  # the repro.System, filled in after boot()
        self.crashed = False  # set by HaManager.crash, never cleared —
        # a reboot replaces the whole Machine object
        self._stripe_inos(cluster.nnodes)
        self.daemon_pids: set = set()
        self.netd = kernel.create_native_process("netd", _netd_body)
        self.daemon_pids.add(self.netd.pid)

    def _stripe_inos(self, nnodes: int) -> None:
        """Put this node's inode stripe at the allocation end of the
        free list (lowest ino first), keeping foreign inos allocatable
        so replica installation can pin them by number."""
        stripe = MAX_INODES // nnodes
        lo = self.node_id * stripe
        own = set(range(lo, lo + stripe))
        free = self.kernel.sfs._free_inos
        foreign = [ino for ino in free if ino not in own]
        mine = sorted((ino for ino in free if ino in own), reverse=True)
        self.kernel.sfs._free_inos = foreign + mine

    def add_daemon(self, name: str, body):
        """Create a native process excluded from idle detection (the
        cluster terminates it at shutdown)."""
        proc = self.kernel.create_native_process(name, body)
        self.daemon_pids.add(proc.pid)
        return proc

    def step_round(self) -> int:
        """One slice for every currently runnable process."""
        kernel = self.kernel
        sanitizer = kernel.sanitizer
        if sanitizer is not None:
            sanitizer.schedule_begin(kernel)
        ran = 0
        try:
            for proc in kernel.runnable():
                kernel.run_slice(proc)
                kernel.clock.context_switch()
                ran += 1
        finally:
            if sanitizer is not None:
                sanitizer.schedule_end(kernel)
        return ran

    def workload_done(self) -> bool:
        """Every non-daemon process has exited."""
        for pid, proc in self.kernel.processes.items():
            if pid in self.daemon_pids:
                continue
            if proc.state is not ProcessState.ZOMBIE:
                return False
        return True


class Cluster:
    """N machines, one fabric, one directory, one global order.

    *boot_args* are forwarded to every :func:`repro.boot` call (so the
    whole cluster shares lazy/scoped/costs settings); *disks* optionally
    gives each node its own durable volume. ``wide_addresses`` is
    rejected: the coherence protocol relies on the 32-bit prototype's
    pure ino→address function.
    """

    def __init__(self, nnodes: int, seed: int = 1993, home: int = 0,
                 disks: Optional[list] = None, base_delay: int = 1,
                 jitter: int = 2, ha=None, **boot_args) -> None:
        if boot_args.get("wide_addresses"):
            raise NetError("clusters require the 32-bit address scheme")
        if not 1 <= nnodes <= MAX_INODES:
            raise NetError(f"cluster size {nnodes} out of range")
        if disks is not None and len(disks) != nnodes:
            raise NetError("disks must give one device per node")
        if not 0 <= home < nnodes:
            raise NetError(f"directory home {home} is not a node")
        from repro import boot

        self.nnodes = nnodes
        self.seed = seed
        self.round = 0
        self.fabric = Fabric(nnodes, seed, base_delay=base_delay,
                             jitter=jitter)
        self.directory = SegmentDirectory(home=home)
        #: boot() kwargs replayed verbatim when a node reboots
        self.boot_args = dict(boot_args)
        self.disks = disks
        # ha=True arms the failure model with default HaConfig;
        # pass an HaConfig to tune it. None keeps HA entirely out of
        # the cluster: no manager, no heartbeats, and the fabric hooks
        # cost one is-None check — fault-free runs are bit-identical
        # to an HA-less build.
        if ha is None or ha is False:
            self.ha = None
        elif isinstance(ha, HaConfig):
            self.ha = HaManager(self, ha)
        else:
            self.ha = HaManager(self, HaConfig())
        self.fabric.ha = self.ha
        self.machines: List[Machine] = []
        for node in range(nnodes):
            args = dict(boot_args)
            if disks is not None:
                args["disk"] = disks[node]
            system = boot(net=NodePort(self, node), **args)
            self.machines[node].system = system
        if self.ha is not None:
            for node in range(nnodes):
                self.machines[node].add_daemon(
                    "had", _had_body(self.ha, node))

    def _attach(self, node_id: int, kernel) -> None:
        rebooting = node_id < len(self.machines) \
            and self.machines[node_id].crashed
        if not rebooting and len(self.machines) != node_id:
            raise NetError(f"node {node_id} attached out of order")
        nic = Nic(self.fabric, node_id, kernel)
        if rebooting:
            self.fabric.reattach(node_id, nic)
        else:
            self.fabric.attach(node_id, nic)
        kernel.nic = nic
        kernel.node_id = node_id
        kernel.ha = self.ha
        agent = CoherenceAgent(self, node_id, kernel, nic,
                               self.directory)
        kernel.coherence = agent
        kernel.sfs.coherence = agent
        machine = Machine(self, node_id, kernel, nic, agent)
        if rebooting:
            self.machines[node_id] = machine
        else:
            self.machines.append(machine)
        # An armed recording (reprorr) must checkpoint cluster members
        # at round boundaries — a globally consistent cut — not at
        # per-kernel clock crossings that land mid-round.
        from repro.rr import recorder as _rr_recorder

        _rr_recorder.attach_cluster(self, kernel)

    # ------------------------------------------------------------------
    # the round scheduler
    # ------------------------------------------------------------------

    def step(self) -> None:
        """One global round: deliver due traffic, then one slice per
        runnable process, machines in node order."""
        self.round += 1
        if self.ha is not None:
            self.ha.on_round(self.round)
        self.fabric.deliver_due(self.round)
        for machine in self.machines:
            if machine.crashed:
                continue
            machine.step_round()
        # Round boundary: every due frame delivered, every runnable
        # process sliced — the consistent cut reprorr checkpoints at.
        from repro.rr import recorder as _rr_recorder

        if _rr_recorder.CAMPAIGN:
            _rr_recorder.on_cluster_round(self)

    def idle(self) -> bool:
        """Nothing left to do: no wire traffic, no queued datagrams, no
        undelivered messages, and every non-daemon process has exited."""
        if self.fabric.pending_workload():
            return False
        for machine in self.machines:
            if machine.crashed:
                continue  # a dead node has no work left by definition
            if machine.nic.inbox:
                # live netd drains within the round; only a wedged
                # node holds frames here, and wedges always heal
                return False
            if not machine.kernel.queues.drained():
                return False
            if not machine.workload_done():
                return False
        return True

    def _quiescent(self) -> bool:
        """No machine can make progress and no traffic is in flight."""
        if self.fabric.pending():
            return False
        for machine in self.machines:
            if machine.crashed:
                continue
            if machine.nic.inbox or machine.kernel.runnable():
                return False
        return True

    def _progress_signature(self) -> tuple:
        """Everything that changes when the cluster is getting closer
        to idle: traffic counters, inbox and queue depths, and process
        states. A forever-runnable daemon (netd polling an empty inbox)
        keeps the cluster non-quiescent without advancing any of
        these."""
        stats = self.fabric.stats
        # Heartbeats tick forever; counting them would make a wedged
        # HA cluster look alive. Subtract them so the signature tracks
        # workload traffic only, and fold in the HA facts (fault
        # windows, membership, reclaims) whose change *is* progress.
        hb_sent = stats.by_kind.get("HEARTBEAT", 0)
        parts = [stats.frames_sent - hb_sent,
                 stats.frames_delivered - stats.heartbeats_delivered]
        if self.ha is not None:
            parts.append(stats.ha_dropped)
            parts.append(self.ha.state_signature())
        for machine in self.machines:
            kernel = machine.kernel
            parts.append(len(machine.nic.inbox))
            parts.append(kernel.queues.backlog())
            parts.append(sum(1 for p in kernel.processes.values()
                             if p.state is ProcessState.ZOMBIE))
            parts.append(sum(1 for p in kernel.processes.values()
                             if p.state is ProcessState.BLOCKED))
        return tuple(parts)

    def run(self, max_rounds: int = DEFAULT_MAX_ROUNDS) -> int:
        """Step until idle; returns the number of rounds consumed.

        Raises :class:`~repro.errors.NetError` on a deadlock (nothing
        runnable, nothing in flight), on a wedge (runnable daemons but
        no observable progress for :data:`WEDGE_ROUNDS` rounds — say, a
        queue whose only consumer died), or when *max_rounds* run out.
        """
        start = self.round
        signature = None
        stable = 0
        while not self.idle():
            if self._quiescent():
                blocked = [
                    f"{m.node_id}:{p.name}"
                    for m in self.machines
                    if not m.crashed
                    for p in m.kernel.processes.values()
                    if p.state is ProcessState.BLOCKED
                ]
                raise NetError(
                    "cluster deadlock: no runnable process, nothing "
                    "in flight" + self._dead_node_report() +
                    (f" (blocked: {', '.join(blocked)})" if blocked
                     else ""))
            current = self._progress_signature()
            if current == signature:
                stable += 1
                if stable >= WEDGE_ROUNDS:
                    # The signature skips nothing a crashed node does
                    # (it does nothing), so stability here means the
                    # *live* members stopped progressing: report dead
                    # daemons and dead nodes as separate facts.
                    dead = [
                        f"{m.node_id}:{p.name} ({p.death_reason})"
                        for m in self.machines
                        if not m.crashed
                        for p in m.kernel.processes.values()
                        if p.pid in m.daemon_pids
                        and p.death_reason not in (None, "cluster "
                                                   "shutdown")
                    ]
                    backlog = sum(m.kernel.queues.backlog()
                                  for m in self.machines
                                  if not m.crashed)
                    raise NetError(
                        f"cluster wedged: no progress among live "
                        f"members for {WEDGE_ROUNDS} rounds, "
                        f"{backlog} queued message(s) nobody will "
                        f"drain" + self._dead_node_report() +
                        (f" (dead daemons: {', '.join(dead)})" if dead
                         else ""))
            else:
                signature = current
                stable = 0
            if self.round - start >= max_rounds:
                raise NetError(
                    f"cluster did not quiesce within {max_rounds} "
                    f"rounds")
            self.step()
        return self.round - start

    def _dead_node_report(self) -> str:
        """`` (crashed nodes: ...)`` for run()'s errors, or ``""``."""
        if self.ha is None or not self.ha.crashed:
            return ""
        nodes = ", ".join(str(n) for n in sorted(self.ha.crashed))
        return f" (crashed nodes: {nodes})"

    def shutdown(self) -> None:
        """Terminate every registered daemon (netd included)."""
        for machine in self.machines:
            if machine.crashed:
                continue
            for pid in sorted(machine.daemon_pids):
                proc = machine.kernel.processes.get(pid)
                if proc is not None and proc.alive:
                    machine.kernel.terminate(proc, 0,
                                             reason="cluster shutdown")

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def spawn(self, node: int, name: str, body):
        """A native workload process on *node* (counted by idle())."""
        if self.machines[node].crashed:
            raise NetError(f"node {node} is crashed; reboot it first")
        return self.machines[node].kernel.create_native_process(
            name, body)

    def cycle_counts(self) -> List[int]:
        """Per-node total simulated cycles (node order)."""
        return [m.kernel.clock.cycles for m in self.machines]

    def net_cycles(self) -> List[int]:
        """Per-node cycles charged to the ``net`` category."""
        return [m.kernel.clock.by_category.get("net", 0)
                for m in self.machines]

    def coherence_stats(self) -> List[Dict[str, int]]:
        """Per-node protocol counters as plain dicts."""
        return [vars(m.agent.stats).copy() for m in self.machines]
