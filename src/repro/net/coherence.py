"""Cluster-wide shared segments: single-writer invalidation.

The directory (homed on one node) maps each published segment base to
its owner, version, and copyset. The protocol piggybacks on the
existing SFS fault plumbing: a touch of an unmapped public address on
any node reaches :meth:`CoherenceAgent.on_fault` through the Hemlock
SIGSEGV handler, which fetches a replica from the owner — pinned to the
*same inode number*, so the segment keeps its globally agreed address
on every node. A write to a shared copy faults (the replica is mapped
read-only), upgrades through the directory, and invalidates every
other copy; the previous holders' next touch re-faults and re-fetches.

State machine, per segment::

    ABSENT ──publish──▶ EXCLUSIVE(owner)
    EXCLUSIVE ──fetch(read) by B──▶ SHARED {owner, B}   (owner demoted RO)
    SHARED ──upgrade by B──▶ EXCLUSIVE(B), version+1    (others invalidated)
    SHARED/EXCLUSIVE ──fetch(write) by B──▶ EXCLUSIVE(B), version+1
    any ──unpublish by owner──▶ ABSENT                  (copies invalidated)

Every handler is idempotent: a retransmitted request (a GRANT lost on
the wire, replayed by the fabric's bounded retransmission) re-derives
the same end state and re-ships the same grant, so NET-plane faults
never wedge the protocol — they only cost deterministic retries.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InjectedFaultError, NetError
from repro.net.link import Frame, FrameKind, Nic
from repro.sfs.sharedfs import SEGMENT_SPAN, SFS_BASE
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.util.bits import align_up
from repro.vm.address_space import MAP_SHARED, PROT_RWX, PROT_RX
from repro.vm.faults import AccessKind
from repro.vm.layout import PAGE_SIZE

#: the well-known port every node's coherence agent listens on
COHERENCE_PORT = 1


class SegmentState(enum.Enum):
    EXCLUSIVE = "exclusive"   # exactly one copy, writable on its owner
    SHARED = "shared"         # one or more read-only copies


@dataclass
class _Entry:
    """One directory row.

    ``owner == -1`` marks a reclaimed row: the holder died with the
    only authoritative copy, and :attr:`snapshot` — the bytes last
    seen transiting the home — serves the next grant. ``leases`` maps
    each non-home holder to the round its grant expires (renewed by
    heartbeats, reaped by :meth:`repro.net.ha.HaManager.reap_entry`);
    both fields stay empty unless the cluster arms HA."""

    path: str                 # volume path on the owning node's SFS
    owner: int
    version: int
    state: SegmentState
    copyset: List[int]        # nodes holding a copy, insertion order
    leases: Dict[int, int] = field(default_factory=dict)
    snapshot: bytes = b""     # last bytes that transited the home


@dataclass
class SegmentDirectory:
    """The home node's segment metadata (plain state; the home node's
    agent is the only code that reads or writes it)."""

    home: int = 0
    entries: Dict[int, _Entry] = field(default_factory=dict)

    def lookup_path(self, path: str) -> Optional[int]:
        """Base address of the segment published as *path*, lowest base
        first when several nodes published the same volume path."""
        for base in sorted(self.entries):
            if self.entries[base].path == path:
                return base
        return None


@dataclass
class CoherenceStats:
    """Per-node protocol counters."""

    publishes: int = 0
    unpublishes: int = 0
    fetches: int = 0          # replicas this node pulled in
    upgrades: int = 0         # shared->exclusive promotions won
    downgrades: int = 0       # exclusive->shared demotions suffered
    invalidations: int = 0    # copies this node discarded on request
    bytes_fetched: int = 0    # segment bytes shipped to this node
    naks: int = 0             # refused requests (unknown segment)


# LOOKUP / PUBLISH payloads carry the path; numeric fields go first.
_U32 = struct.Struct("<I")
_FETCH = struct.Struct("<IB")          # base, want_write
_GRANT_HEAD = struct.Struct("<IIH")    # version, size, path length


def _pack_grant(version: int, size: int, path: str,
                data: bytes) -> bytes:
    encoded = path.encode()
    return _GRANT_HEAD.pack(version, size, len(encoded)) + encoded + data


def _unpack_grant(payload: bytes):
    version, size, path_len = _GRANT_HEAD.unpack_from(payload)
    offset = _GRANT_HEAD.size
    path = payload[offset:offset + path_len].decode()
    data = payload[offset + path_len:]
    return version, size, path, data


class CoherenceAgent:
    """One node's half of the protocol.

    Installed as ``kernel.coherence`` (consulted by the Hemlock SIGSEGV
    handler) and ``kernel.sfs.coherence`` (notified of segment create /
    destroy). ``suspended`` gates the SFS callbacks while the agent
    itself manipulates replica files, so replica bookkeeping never
    re-enters the protocol.
    """

    def __init__(self, cluster, node_id: int, kernel,
                 nic: Nic, directory: SegmentDirectory) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.kernel = kernel
        self.nic = nic
        self.directory = directory
        self.stats = CoherenceStats()
        self.suspended = False
        #: local holding mode per base: "shared" | "exclusive"
        self.modes: Dict[int, str] = {}
        nic.bind(COHERENCE_PORT, self._handle)

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    @property
    def _home(self) -> int:
        return self.directory.home

    def _home_agent(self) -> "CoherenceAgent":
        return self.cluster.machines[self._home].agent

    def _agent(self, node: int) -> "CoherenceAgent":
        return self.cluster.machines[node].agent

    def _emit(self, name: str, base: int, value: int = 0,
              pid: int = 0) -> None:
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.NET, name=name, pid=pid, addr=base,
                        value=value)

    @staticmethod
    def base_of(address: int) -> int:
        return SFS_BASE + ((address - SFS_BASE) // SEGMENT_SPAN) \
            * SEGMENT_SPAN

    @staticmethod
    def ino_of(base: int) -> int:
        return (base - SFS_BASE) // SEGMENT_SPAN

    def _call_home(self, kind: FrameKind, payload: bytes) -> Frame:
        """One exchange with the directory: a wire RPC from remote
        nodes, a plain call on the home node itself."""
        if self.node_id == self._home:
            reply_kind, reply_payload = self._home_agent()._handle(
                Frame(kind, self.node_id, self._home, COHERENCE_PORT,
                      0, payload))
            return Frame(reply_kind, self._home, self.node_id,
                         COHERENCE_PORT, 0, reply_payload)
        return self.nic.call(self._home, kind, COHERENCE_PORT, payload)

    # ------------------------------------------------------------------
    # SFS lifecycle hooks (via sfs.coherence)
    # ------------------------------------------------------------------

    def segment_created(self, inode) -> None:
        if self.suspended:
            return
        base = self.kernel.sfs.address_of_inode(inode.number)
        path = self.kernel.sfs.path_of_inode(inode.number)
        self.modes[base] = "exclusive"
        self.stats.publishes += 1
        self._emit("publish", base, value=inode.number)
        payload = _U32.pack(base) + path.encode()
        self._call_home(FrameKind.PUBLISH, payload)

    def segment_destroyed(self, inode) -> None:
        if self.suspended:
            return
        base = self.kernel.sfs.address_of_inode(inode.number)
        self.modes.pop(base, None)
        self.stats.unpublishes += 1
        self._emit("unpublish", base, value=inode.number)
        self._call_home(FrameKind.UNPUBLISH, _U32.pack(base))

    # ------------------------------------------------------------------
    # path -> base (the cluster-aware half of segment_base)
    # ------------------------------------------------------------------

    def lookup_path(self, path: str) -> Optional[int]:
        """Directory lookup of a full (mounted) path; None if unknown
        or not under the shared mount."""
        mount = self.kernel.sfs_mount
        if not path.startswith(mount + "/"):
            return None
        volume_path = path[len(mount):]
        self._emit("lookup", 0)
        reply = self._call_home(FrameKind.LOOKUP, volume_path.encode())
        if reply.kind is not FrameKind.GRANT:
            return None
        return _U32.unpack_from(reply.payload)[0]

    # ------------------------------------------------------------------
    # the fault hook (via kernel.coherence)
    # ------------------------------------------------------------------

    def on_fault(self, proc, info) -> Optional[bool]:
        """Resolve a public-region fault through the cluster.

        Returns True (mapped/upgraded: retry the access), False (the
        fault stands), or None (not cluster-managed here: let the
        default segment mapper take it).
        """
        address = info.address
        base = self.base_of(address)
        want_write = info.access is AccessKind.WRITE
        mode = self.modes.get(base)
        local = self.kernel.sfs.addrmap.lookup_address(address) \
            is not None
        try:
            if local:
                if mode == "shared":
                    if want_write:
                        return self._upgrade(proc, base)
                    if info.present:
                        return False
                    return self._map_local(proc, base, PROT_RX)
                # exclusive here (or not protocol-managed): the default
                # mapper handles it at full rights.
                return None
            return self._fetch(proc, base, want_write)
        except InjectedFaultError as error:
            self.kernel.note_contained(error, "coherence")
            proc.pending_fault_error = error
            return False
        except NetError:
            return False

    # ------------------------------------------------------------------
    # requester side
    # ------------------------------------------------------------------

    def _fetch(self, proc, base: int, want_write: bool) -> bool:
        reply = self._call_home(
            FrameKind.FETCH, _FETCH.pack(base, 1 if want_write else 0))
        if reply.kind is not FrameKind.GRANT:
            self.stats.naks += 1
            return False
        version, size, path, data = _unpack_grant(reply.payload)
        self._install_replica(base, path, size, data)
        self.modes[base] = "exclusive" if want_write else "shared"
        self.stats.fetches += 1
        self.stats.bytes_fetched += len(data)
        self._emit("fetch", base, value=version, pid=proc.pid)
        self._map_into(proc, base, size,
                       PROT_RWX if want_write else PROT_RX)
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            sanitizer.coherence_acquire(self.kernel, proc, base)
        return True

    def _upgrade(self, proc, base: int) -> bool:
        reply = self._call_home(FrameKind.UPGRADE, _U32.pack(base))
        if reply.kind is not FrameKind.GRANT:
            self.stats.naks += 1
            return False
        version = _GRANT_HEAD.unpack_from(reply.payload)[0]
        self.modes[base] = "exclusive"
        self.stats.upgrades += 1
        self._emit("upgrade", base, value=version, pid=proc.pid)
        self._reprotect_local(base, PROT_RWX)
        if proc.address_space.mapping_at(base) is None:
            inode = self.kernel.sfs.inode_by_number(self.ino_of(base))
            assert inode is not None
            self._map_into(proc, base, inode.size, PROT_RWX)
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            sanitizer.coherence_acquire(self.kernel, proc, base)
        return True

    def _map_local(self, proc, base: int, prot: int) -> bool:
        inode = self.kernel.sfs.inode_by_number(self.ino_of(base))
        if inode is None:
            return False
        self._map_into(proc, base, inode.size, prot)
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            sanitizer.coherence_acquire(self.kernel, proc, base)
        return True

    def _install_replica(self, base: int, path: str, size: int,
                         data: bytes) -> None:
        sfs = self.kernel.sfs
        ino = self.ino_of(base)
        inode = sfs.inode_by_number(ino)
        if inode is None or not inode.is_file:
            mount = self.kernel.sfs_mount
            full = mount + path
            directory = full.rsplit("/", 1)[0] or mount
            self.suspended = True
            try:
                self.kernel.vfs.makedirs(directory)
                fs, parent = self.kernel.vfs.resolve(directory)
                if fs is not sfs:
                    raise NetError(
                        f"replica path {full!r} is off the shared "
                        f"mount")
                name = full.rsplit("/", 1)[1]
                inode = sfs.create_file(parent, name, uid=0, _ino=ino)
            finally:
                self.suspended = False
        self.suspended = True
        try:
            if data:
                sfs.write_file(inode, 0, data)
            sfs.truncate_file(inode, size)
        finally:
            self.suspended = False
        self.kernel.clock.copy(len(data))

    def _map_into(self, proc, base: int, size: int, prot: int) -> None:
        inode = self.kernel.sfs.inode_by_number(self.ino_of(base))
        assert inode is not None and inode.memobj is not None
        length = align_up(max(size, 1), PAGE_SIZE)
        existing = proc.address_space.mapping_at(base)
        if existing is not None:
            proc.address_space.unmap_mapping(existing)
        volume_path = self.kernel.sfs.path_of_inode(inode.number)
        proc.address_space.map(
            base, length, memobj=inode.memobj, offset=0, prot=prot,
            flags=MAP_SHARED, name=self.kernel.sfs_mount + volume_path)
        self.kernel.clock.map_segment()

    # ------------------------------------------------------------------
    # remote-initiated local transitions
    # ------------------------------------------------------------------

    def _reprotect_local(self, base: int, prot: int) -> None:
        """mprotect every local mapping of *base* (TLB shootdown cost
        charged per mapping)."""
        for pid in sorted(self.kernel.processes):
            proc = self.kernel.processes[pid]
            if not proc.alive:
                continue
            mapping = proc.address_space.mapping_at(base)
            if mapping is None:
                continue
            proc.address_space.mprotect(
                mapping.start, mapping.end - mapping.start, prot)
            self.kernel.clock.map_segment()

    def _downgrade_local(self, base: int) -> bytes:
        """Demote this node's exclusive copy to shared; returns the
        authoritative bytes for the directory to forward."""
        inode = self.kernel.sfs.inode_by_number(self.ino_of(base))
        if inode is None:
            return b""
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            # This node stops writing: publish its clocks so the next
            # GRANT's recipient is ordered after everything it did.
            sanitizer.coherence_release(self.kernel, base)
        self.modes[base] = "shared"
        self.stats.downgrades += 1
        self._emit("downgrade", base, value=inode.size)
        self._reprotect_local(base, PROT_RX)
        data = self.kernel.sfs.read_file(inode, 0, inode.size)
        self.kernel.clock.copy(len(data))
        return data

    def _read_local(self, base: int) -> bytes:
        inode = self.kernel.sfs.inode_by_number(self.ino_of(base))
        if inode is None:
            return b""
        data = self.kernel.sfs.read_file(inode, 0, inode.size)
        self.kernel.clock.copy(len(data))
        return data

    def _invalidate_local(self, base: int) -> None:
        """Discard this node's copy: unmap everywhere, unlink the
        replica file (suspended, so no unpublish fires)."""
        sfs = self.kernel.sfs
        inode = sfs.inode_by_number(self.ino_of(base))
        if inode is None:
            self.modes.pop(base, None)
            return
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None:
            sanitizer.coherence_release(self.kernel, base)
        for pid in sorted(self.kernel.processes):
            proc = self.kernel.processes[pid]
            if not proc.alive:
                continue
            mapping = proc.address_space.mapping_at(base)
            if mapping is not None:
                proc.address_space.unmap_mapping(mapping)
                self.kernel.clock.map_segment()
        volume_path = sfs.path_of_inode(inode.number)
        self.suspended = True
        try:
            self.kernel.vfs.unlink(self.kernel.sfs_mount + volume_path)
        finally:
            self.suspended = False
        self.modes.pop(base, None)
        self.stats.invalidations += 1
        self._emit("invalidate", base)

    # ------------------------------------------------------------------
    # directory side (runs on the home node's agent only)
    # ------------------------------------------------------------------

    def _remote_op(self, node: int, kind: FrameKind,
                   payload: bytes) -> Frame:
        """Home-initiated sub-exchange with *node* (downgrade,
        invalidate, pull); local call when *node* is the home itself."""
        if node == self.node_id:
            reply_kind, reply_payload = self._handle(
                Frame(kind, self.node_id, node, COHERENCE_PORT, 0,
                      payload))
            return Frame(reply_kind, node, self.node_id,
                         COHERENCE_PORT, 0, reply_payload)
        return self.nic.call(node, kind, COHERENCE_PORT, payload)

    def _ha(self):
        """The cluster's HA manager, or None when not armed."""
        return self.cluster.ha

    def _lease(self, entry: _Entry, node: int) -> None:
        """Stamp *node*'s round-bounded lease on a grant (HA only)."""
        ha = self._ha()
        if ha is not None:
            ha.grant_lease(entry, node)

    def _persist_directory(self) -> None:
        """Journal the segment table through the home's disk after a
        directory-shape change (HA only; lease renewals don't count —
        recovery re-grants leases with a fresh grace window anyway)."""
        ha = self._ha()
        if ha is not None:
            ha.persist_directory()

    def _invalidate_copies(self, entry: _Entry, base: int,
                           keep: int) -> None:
        """INVALIDATE every copy but *keep*'s. Unreachable holders are
        skipped — lease reaping already dropped (or will drop) them
        from the row, and the re-join handshake discards whatever copy
        they still hold before they can trust it again."""
        ha = self._ha()
        for node in list(entry.copyset):
            if node == keep:
                continue
            if ha is not None and not ha.can_talk_to(node):
                continue
            self._remote_op(node, FrameKind.INVALIDATE,
                            _U32.pack(base))

    def _pull(self, entry: _Entry, base: int,
              downgrade: bool) -> bytes:
        """The authoritative bytes, from the owner (demoting it when
        *downgrade*); the home's snapshot when the owner died with the
        only copy (a reclaimed row)."""
        if entry.owner < 0:
            return entry.snapshot
        kind = FrameKind.DOWNGRADE if downgrade else FrameKind.FETCH
        if entry.owner == self.node_id:
            if downgrade:
                return self._downgrade_local(base)
            return self._read_local(base)
        if downgrade:
            reply = self._remote_op(entry.owner, FrameKind.DOWNGRADE,
                                    _U32.pack(base))
        else:
            # a plain read of the owner's copy (owner already shared)
            reply = self._remote_op(entry.owner, FrameKind.FETCH,
                                    _FETCH.pack(base, 2))
        if reply.kind is not FrameKind.GRANT:
            raise NetError(
                f"owner {entry.owner} refused {kind.name} of "
                f"0x{base:08x}")
        _version, _size, _path, data = _unpack_grant(reply.payload)
        return data

    def _handle(self, frame: Frame):
        """The COHERENCE_PORT handler: directory requests when this is
        the home node, peer requests (downgrade/invalidate/serve)
        otherwise. Returns ``(FrameKind, payload)``."""
        kind = frame.kind
        payload = frame.payload
        if kind is FrameKind.PUBLISH:
            base = _U32.unpack_from(payload)[0]
            path = payload[_U32.size:].decode()
            entry = self.directory.entries.get(base)
            if entry is None or entry.owner != frame.src:
                fresh = _Entry(
                    path=path, owner=frame.src, version=1,
                    state=SegmentState.EXCLUSIVE, copyset=[frame.src])
                self._lease(fresh, frame.src)
                self.directory.entries[base] = fresh
                self._persist_directory()
            return FrameKind.ACK, b""
        if kind is FrameKind.UNPUBLISH:
            base = _U32.unpack_from(payload)[0]
            entry = self.directory.entries.get(base)
            if entry is not None:
                if frame.src == entry.owner:
                    self._invalidate_copies(entry, base,
                                            keep=entry.owner)
                    del self.directory.entries[base]
                    self._persist_directory()
                elif frame.src in entry.copyset:
                    entry.copyset.remove(frame.src)
                    entry.leases.pop(frame.src, None)
                    self._persist_directory()
            return FrameKind.ACK, b""
        if kind is FrameKind.LOOKUP:
            base = self.directory.lookup_path(payload.decode())
            if base is None:
                return FrameKind.NAK, b""
            return FrameKind.GRANT, _U32.pack(base)
        if kind is FrameKind.FETCH:
            base, want = _FETCH.unpack_from(payload)
            if want == 2:
                # a peer read of this node's own copy, for the home
                data = self._read_local(base)
                return FrameKind.GRANT, _pack_grant(0, len(data), "",
                                                    data)
            return self._serve_fetch(frame.src, base, want == 1)
        if kind is FrameKind.UPGRADE:
            base = _U32.unpack_from(payload)[0]
            return self._serve_upgrade(frame.src, base)
        if kind is FrameKind.DOWNGRADE:
            base = _U32.unpack_from(payload)[0]
            data = self._downgrade_local(base)
            return FrameKind.GRANT, _pack_grant(0, len(data), "", data)
        if kind is FrameKind.INVALIDATE:
            base = _U32.unpack_from(payload)[0]
            self._invalidate_local(base)
            return FrameKind.ACK, b""
        return FrameKind.NAK, b""

    def _serve_fetch(self, src: int, base: int, want_write: bool):
        entry = self.directory.entries.get(base)
        if entry is None:
            return FrameKind.NAK, b""
        ha = self._ha()
        if ha is not None:
            # the requester just proved it is alive: never reap it
            ha.reap_entry(base, entry, keep=src)
        if want_write:
            data = b"" if entry.owner == src \
                else self._pull(entry, base, downgrade=False)
            if data:
                entry.snapshot = data
            self._invalidate_copies(entry, base, keep=src)
            if entry.owner != src or entry.state is not \
                    SegmentState.EXCLUSIVE or entry.copyset != [src]:
                entry.owner = src
                entry.version += 1
                entry.state = SegmentState.EXCLUSIVE
                entry.copyset = [src]
                entry.leases = {}
                self._lease(entry, src)
                self._persist_directory()
            return FrameKind.GRANT, _pack_grant(
                entry.version, len(data), entry.path, data)
        # read intent
        if entry.state is SegmentState.EXCLUSIVE \
                and entry.owner != src:
            data = self._pull(entry, base, downgrade=True)
            entry.state = SegmentState.SHARED
        else:
            data = b"" if entry.owner == src \
                else self._pull(entry, base, downgrade=False)
        if data:
            entry.snapshot = data
        self._lease(entry, src)
        if src not in entry.copyset:
            entry.copyset.append(src)
            self._persist_directory()
        return FrameKind.GRANT, _pack_grant(
            entry.version, len(data), entry.path, data)

    def _serve_upgrade(self, src: int, base: int):
        entry = self.directory.entries.get(base)
        if entry is None:
            return FrameKind.NAK, b""
        ha = self._ha()
        if ha is not None:
            ha.reap_entry(base, entry, keep=src)
        if src not in entry.copyset:
            return FrameKind.NAK, b""
        if entry.owner != src or entry.state is not \
                SegmentState.EXCLUSIVE or entry.copyset != [src]:
            self._invalidate_copies(entry, base, keep=src)
            entry.owner = src
            entry.version += 1
            entry.state = SegmentState.EXCLUSIVE
            entry.copyset = [src]
            entry.leases = {}
            self._lease(entry, src)
            self._persist_directory()
        return FrameKind.GRANT, _pack_grant(entry.version, 0,
                                            entry.path, b"")
