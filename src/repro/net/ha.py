"""repro.ha — node failures as first-class, seeded, replayable events.

The paper's flagship deployment was rwho on 65 Suns that crashed and
rebooted constantly; a cluster model that wedges forever the moment one
node dies reproduces the mechanism but not the environment. This
module makes whole-machine failure part of the deterministic schedule:

* **NODE fault plane.** Each scheduling round the manager asks each
  node's injector for a CRASH/WEDGE decision (and each crashed node's
  injector for a REBOOT), plus one cluster-wide PARTITION draw — all
  through the standard per-plan splitmix64 RNG, so a failure schedule
  is a pure function of ``(seed, plans)`` and replays bit-identically.
* **Leases.** Directory grants are stamped with a round-bounded lease,
  renewed by heartbeats. When a holder's lease expires (or the holder
  is suspected dead), the directory *reclaims* it: the holder's copy is
  declared dead, and the home's last snapshot of the bytes becomes the
  authoritative copy — so a crashed writer unblocks readers within a
  bounded number of rounds instead of wedging the protocol.
* **Membership.** Round-based heartbeats flow through the ordinary
  fabric (charged like any other frame); the home suspects a node after
  :attr:`HaConfig.suspicion_rounds` silent rounds, or immediately when
  one of its own exchanges with the node times out. A suspected node's
  first heartbeat after the fault heals re-joins it: stale replicas it
  still holds (bases the directory no longer lists it for) are
  invalidated before it touches them.
* **Recovery.** The home journals its segment table through the node's
  ``repro.disk`` store on every directory-shape change; a REBOOTed home
  recovers the table fsck-clean from its volume and re-grants leases
  with a fresh grace window. Rebooted nodes sweep foreign-inode replica
  files from a recovered SFS (replicas are exactly the files pinned
  outside the node's own inode stripe), so stale copies can never be
  re-mapped silently.

Pay-for-use: a cluster without ``ha=`` armed never constructs a
manager, sends no heartbeats, and every fabric hook costs one ``is not
None`` check — fault-free runs stay bit-identical to the pre-HA model.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import NetError, SimulationError
from repro.inject.plan import FaultKind
from repro.net.link import FrameKind
from repro.sfs.sharedfs import MAX_INODES
from repro.trace import tracer as _trace
from repro.trace.events import EventKind

#: well-known port heartbeats arrive on (netd hands them to the manager)
HA_PORT = 2

#: where the home persists its segment table (journaled by repro.disk)
DIRSTORE_DIR = "/var/hemlock"
DIRSTORE_PATH = "/var/hemlock/segdir"

_U32 = struct.Struct("<I")
_HB_HEAD = struct.Struct("<H")  # number of held bases

_CRASH = frozenset({FaultKind.CRASH})
_WEDGE = frozenset({FaultKind.WEDGE})
_PARTITION = frozenset({FaultKind.PARTITION})
_REBOOT = frozenset({FaultKind.REBOOT})


def _emit(name: str, addr: int = 0, value: int = 0) -> None:
    tracer = _trace.TRACER
    if tracer.enabled:
        tracer.emit(EventKind.HA, name=name, addr=addr, value=value)


@dataclass(frozen=True)
class HaConfig:
    """Protocol constants, all in scheduling rounds."""

    lease_rounds: int = 40       # grant validity without renewal
    heartbeat_every: int = 4     # per-node heartbeat cadence
    suspicion_rounds: int = 12   # silent rounds before suspicion
    min_wedge_rounds: int = 8    # WEDGE window bounds (drawn per fault)
    max_wedge_rounds: int = 60
    min_partition_rounds: int = 8
    max_partition_rounds: int = 40

    def __post_init__(self) -> None:
        if self.heartbeat_every < 1:
            raise NetError("heartbeat_every must be >= 1")
        if self.suspicion_rounds <= self.heartbeat_every:
            raise NetError(
                "suspicion_rounds must exceed heartbeat_every")
        if self.lease_rounds <= self.suspicion_rounds:
            raise NetError("lease_rounds must exceed suspicion_rounds")


@dataclass
class HaStats:
    """Counters over the failure model and the recovery machinery."""

    crashes: int = 0
    wedges: int = 0
    partitions: int = 0
    heals: int = 0           # partition windows that expired
    reboots: int = 0
    heartbeats: int = 0      # processed by the home (frames + self)
    suspects: int = 0
    rejoins: int = 0
    lease_reclaims: int = 0  # dead holders reaped from directory rows
    stale_invalidated: int = 0  # re-join copies discarded
    dir_persists: int = 0
    dir_recovered: int = 0   # entries restored from the disk journal


def _had_body(ha: "HaManager", node: int):
    """The heartbeat daemon: one datagram to the home every
    ``heartbeat_every`` rounds (a direct call on the home itself — no
    frame, no cycles for the self-heartbeat). Staggered by node id so
    the fleet does not burst on the same round."""

    def body(kernel, proc):
        config = ha.config
        while True:
            rnd = ha.cluster.round
            if rnd % config.heartbeat_every \
                    == node % config.heartbeat_every:
                agent = kernel.coherence
                bases = sorted(agent.modes)
                if node == ha.home:
                    ha.on_heartbeat(node, bases)
                else:
                    payload = _HB_HEAD.pack(len(bases)) \
                        + b"".join(_U32.pack(base) for base in bases)
                    kernel.nic.send(proc, ha.home, HA_PORT, payload,
                                    kind=FrameKind.HEARTBEAT)
            yield

    return body


class HaManager:
    """The cluster's failure model and membership/lease authority.

    One instance per armed cluster. Physical truth (who is crashed,
    which links a partition cuts) lives here and gates the fabric via
    :meth:`filter_send`; the *membership view* (who the home currently
    believes is alive) is derived from heartbeats and exchange timeouts
    and is what lease reclamation consults — the protocol never reads
    ground truth it could not have observed.
    """

    def __init__(self, cluster, config: Optional[HaConfig] = None
                 ) -> None:
        self.cluster = cluster
        self.config = config or HaConfig()
        self.stats = HaStats()
        self.crashed: Dict[int, int] = {}    # node -> round it died
        self.wedged: Dict[int, int] = {}     # node -> heal round
        #: active cuts: (side_a, side_b, heal_round)
        self.partitions: List[Tuple[FrozenSet[int], FrozenSet[int],
                                    int]] = []
        self.suspected: set = set()
        self.last_seen: Dict[int, int] = {}  # node -> last hb round
        self._view_epoch = 0                 # round the view (re)reset
        self._dir_dirty = False              # flushed at round start
        #: callbacks ``hook(cluster, node, machine)`` run after a node
        #: reboots — scenarios respawn their daemons here
        self.on_reboot: List[Callable] = []

    @property
    def home(self) -> int:
        return self.cluster.directory.home

    # ------------------------------------------------------------------
    # physical truth (consulted by the fabric)
    # ------------------------------------------------------------------

    def filter_send(self, src: int, dst: int) -> Optional[str]:
        """``"down"`` / ``"cut"`` if a frame from *src* to *dst* cannot
        arrive right now, else None."""
        if dst in self.crashed or src in self.crashed:
            return "down"
        for side_a, side_b, _heal in self.partitions:
            if (src in side_a and dst in side_b) \
                    or (src in side_b and dst in side_a):
                return "cut"
        return None

    def can_talk_to(self, node: int) -> bool:
        """May the home address *node* right now (reachable and not
        suspected)? Used to skip invalidations that could only time
        out — the re-join handshake cleans those copies up instead."""
        return node not in self.crashed \
            and node not in self.suspected \
            and self.filter_send(self.home, node) is None

    def note_timeout(self, src: int, dst: int) -> None:
        """A synchronous exchange from *src* exhausted its budget with
        every attempt blocked by the failure model. Only the home's own
        observations feed the membership view (fail-fast suspicion)."""
        if src == self.home and dst != self.home \
                and dst not in self.suspected:
            self.suspected.add(dst)
            self.stats.suspects += 1
            _emit("suspect", value=dst)

    # ------------------------------------------------------------------
    # the per-round driver (called from Cluster.step)
    # ------------------------------------------------------------------

    def on_round(self, rnd: int) -> None:
        self._flush_directory()
        self._heal(rnd)
        self._decide_faults(rnd)
        self._update_view(rnd)

    def _heal(self, rnd: int) -> None:
        for node, heal in list(self.wedged.items()):
            if heal <= rnd:
                del self.wedged[node]
                machine = self.cluster.machines[node]
                if not machine.crashed:
                    machine.nic.wedged = False
                _emit("unwedge", value=node)
        if self.partitions:
            kept = []
            for cut in self.partitions:
                if cut[2] <= rnd:
                    self.stats.heals += 1
                    _emit("partition-heal", value=rnd)
                else:
                    kept.append(cut)
            self.partitions = kept

    def _decide_faults(self, rnd: int) -> None:
        cluster = self.cluster
        config = self.config
        live = cluster.nnodes - len(self.crashed)
        for node in range(cluster.nnodes):
            machine = cluster.machines[node]
            injector = machine.kernel.injector
            if injector is None:
                continue
            subject = f"node{node}"
            if node in self.crashed:
                if injector.on_node("reboot", subject, _REBOOT) \
                        is not None:
                    self.reboot(node)
                    live += 1
                continue
            # Never kill the last live node: with nobody left to drive
            # rounds toward recovery the cluster could only time out.
            if live > 1 \
                    and injector.on_node("crash", subject, _CRASH) \
                    is not None:
                self.crash(node)
                live -= 1
                continue
            if node not in self.wedged:
                state = injector.on_node("wedge", subject, _WEDGE)
                if state is not None:
                    span = state.rng.randint(config.min_wedge_rounds,
                                             config.max_wedge_rounds)
                    self.wedge(node, rnd + span)
        if not self.partitions and not self.crashed \
                and cluster.nnodes >= 2:
            coordinator = cluster.machines[0].kernel.injector
            if coordinator is not None:
                state = coordinator.on_node("partition", "cluster",
                                            _PARTITION)
                if state is not None:
                    span = state.rng.randint(
                        config.min_partition_rounds,
                        config.max_partition_rounds)
                    sides = [state.rng.randint(0, 1)
                             for _ in range(cluster.nnodes)]
                    if len(set(sides)) == 1:  # force both sides real
                        sides[state.rng.randint(
                            0, cluster.nnodes - 1)] ^= 1
                    side_a = frozenset(n for n, s in enumerate(sides)
                                       if s == 0)
                    side_b = frozenset(n for n, s in enumerate(sides)
                                       if s == 1)
                    self.partition(side_a, side_b, rnd + span)

    def _update_view(self, rnd: int) -> None:
        """Heartbeat-miss suspicion, from the home's point of view."""
        if self.home in self.crashed:
            return  # nobody is keeping the view while the home is down
        threshold = self.config.suspicion_rounds
        for node in range(self.cluster.nnodes):
            if node == self.home or node in self.suspected:
                continue
            last = self.last_seen.get(node, self._view_epoch)
            if rnd - last > threshold:
                self.suspected.add(node)
                self.stats.suspects += 1
                _emit("suspect", value=node)

    # ------------------------------------------------------------------
    # the faults themselves
    # ------------------------------------------------------------------

    def crash(self, node: int) -> None:
        """Halt *node* mid-round: volatile state (memory, queues, NIC
        inbox, directory if it was the home) is gone; its disk loses
        power through the device's reorder window."""
        cluster = self.cluster
        machine = cluster.machines[node]
        machine.crashed = True
        self.crashed[node] = cluster.round
        self.wedged.pop(node, None)
        machine.nic.inbox.clear()
        cluster.fabric.purge_node(node)
        machine.kernel.crash()  # power loss through the disk's window
        if node == self.home:
            # the directory was volatile home-node memory
            cluster.directory.entries.clear()
        self.stats.crashes += 1
        _emit("crash", value=node)

    def wedge(self, node: int, heal_round: int) -> None:
        """The node's netd stops draining until *heal_round*; frames
        pile up in its inbox and deliver late — delayed, never lost."""
        machine = self.cluster.machines[node]
        machine.nic.wedged = True
        self.wedged[node] = heal_round
        self.stats.wedges += 1
        _emit("wedge", addr=heal_round, value=node)

    def partition(self, side_a: FrozenSet[int], side_b: FrozenSet[int],
                  heal_round: int) -> None:
        """Cut every link between *side_a* and *side_b* until
        *heal_round* (frames between the sides are lost, not delayed)."""
        if not side_a or not side_b:
            raise NetError("a partition needs two non-empty sides")
        self.partitions.append((side_a, side_b, heal_round))
        self.stats.partitions += 1
        _emit("partition", addr=heal_round, value=len(side_b))

    def reboot(self, node: int) -> None:
        """Re-boot a crashed node from its durable volume (volatile if
        it had none), bump its boot generation, recover the directory
        when it is the home, and run the scenario's re-spawn hooks."""
        from repro import boot
        from repro.net.cluster import NodePort

        cluster = self.cluster
        old_kernel = cluster.machines[node].kernel
        del self.crashed[node]
        args = dict(cluster.boot_args)
        if old_kernel.disk is not None:
            args["disk"] = old_kernel.disk.device.reopen()
        system = boot(net=NodePort(cluster, node), **args)
        machine = cluster.machines[node]
        machine.system = system
        if old_kernel.injector is not None \
                and machine.kernel.injector is not None:
            # the fault campaign is cluster-scoped: `after` offsets and
            # `max_faults` caps keep counting across the reboot
            machine.kernel.injector.resume_from(old_kernel.injector)
        self._sweep_replicas(machine)
        if node == self.home:
            self._recover_directory(machine.kernel)
            # fresh view: give every node a grace period to re-report
            self.last_seen = {}
            self._view_epoch = cluster.round
        self.stats.reboots += 1
        _emit("reboot", value=node)
        machine.add_daemon("had", _had_body(self, node))
        for hook in list(self.on_reboot):
            hook(cluster, node, machine)

    def _sweep_replicas(self, machine) -> None:
        """Unlink foreign-inode files from a recovered SFS. Replicas
        are pinned to inos outside the node's own stripe, so this is
        exactly the set of copies whose directory standing (and
        content) can no longer be trusted after a crash."""
        kernel = machine.kernel
        stripe = MAX_INODES // self.cluster.nnodes
        lo = machine.node_id * stripe
        agent = machine.agent
        swept = 0
        for volume_path, inode in kernel.sfs.segments():
            if lo <= inode.number < lo + stripe:
                continue
            agent.suspended = True
            try:
                kernel.vfs.unlink(kernel.sfs_mount + volume_path)
            except SimulationError:
                pass
            finally:
                agent.suspended = False
            swept += 1
        if swept:
            _emit("replica-sweep", value=swept)

    # ------------------------------------------------------------------
    # heartbeats, leases, re-join
    # ------------------------------------------------------------------

    def on_heartbeat_frame(self, frame) -> None:
        """A HEARTBEAT datagram drained by the home's netd."""
        count = _HB_HEAD.unpack_from(frame.payload)[0]
        offset = _HB_HEAD.size
        bases = [
            _U32.unpack_from(frame.payload, offset + i * _U32.size)[0]
            for i in range(count)
        ]
        self.on_heartbeat(frame.src, bases)

    def on_heartbeat(self, node: int, bases: List[int]) -> None:
        """Process one i-am-alive: refresh the view, renew the sender's
        leases, and invalidate any copy it holds that the directory no
        longer lists it for (the re-join handshake)."""
        cluster = self.cluster
        rnd = cluster.round
        self.last_seen[node] = rnd
        self.stats.heartbeats += 1
        if node in self.suspected and node not in self.crashed:
            self.suspected.discard(node)
            self.stats.rejoins += 1
            _emit("rejoin", value=node)
        entries = cluster.directory.entries
        expiry = rnd + self.config.lease_rounds
        home_agent = cluster.machines[self.home].agent
        for base in bases:
            entry = entries.get(base)
            if entry is not None and node in entry.copyset:
                if node != self.home:
                    entry.leases[node] = expiry
            elif node != self.home and self.can_talk_to(node):
                # a stale copy from before a fault: discard it before
                # the holder can touch (and trust) it again
                home_agent._remote_op(node, FrameKind.INVALIDATE,
                                      _U32.pack(base))
                self.stats.stale_invalidated += 1
                _emit("stale-invalidate", addr=base, value=node)

    def grant_lease(self, entry, node: int) -> None:
        """Stamp/renew *node*'s lease on a directory row (the home's
        own copy needs none — it *is* the directory)."""
        if node != self.home:
            entry.leases[node] = \
                self.cluster.round + self.config.lease_rounds

    def reap_entry(self, base: int, entry,
                   keep: Optional[int] = None) -> None:
        """Drop dead holders from a directory row before serving it.

        A holder is dead when its lease expired (it stopped renewing)
        or the membership view suspects it. A reaped owner leaves the
        row with ``owner == -1``: the home's snapshot of the bytes is
        then the authoritative copy for the next grant. *keep* names a
        node that just proved itself alive (the requester) and is
        never reaped."""
        rnd = self.cluster.round
        for node in list(entry.copyset):
            if node == self.home or node == keep:
                continue
            lease = entry.leases.get(node)
            expired = lease is not None and lease < rnd
            if not expired and node not in self.suspected:
                continue
            entry.copyset.remove(node)
            entry.leases.pop(node, None)
            if entry.owner == node:
                entry.owner = -1
            self.stats.lease_reclaims += 1
            _emit("lease-reclaim", addr=base, value=node)

    # ------------------------------------------------------------------
    # directory persistence (through the home's repro.disk journal)
    # ------------------------------------------------------------------

    def persist_directory(self) -> None:
        """Mark the segment table dirty; the write happens at the next
        round boundary. Coherence calls this from inside SFS mutation
        hooks, where the home's journal already has an open transaction
        — logging the table's own VFS writes there would nest them into
        a foreign op record and the journal would absorb them (the
        rename-implicit-unlink rule), losing them from recovery.
        Deferring to :meth:`on_round` guarantees transaction depth zero,
        at the cost of losing at most the current round's shape change
        to a crash — exactly a real write-behind cache's window."""
        self._dir_dirty = True

    def _flush_directory(self) -> None:
        """Serialize the segment table to the home's root volume. Every
        mutating VFS write is journaled when the volume is disk-backed,
        so the table survives a power loss fsck-clean. Leases are not
        persisted — recovery re-grants them with a grace window."""
        if not self._dir_dirty or self.home in self.crashed:
            return
        kernel = self.cluster.machines[self.home].kernel
        if kernel.disk is None:
            self._dir_dirty = False
            return
        from repro.disk.codec import encode_fields

        entries = self.cluster.directory.entries
        rows = [
            [base, entry.path, entry.owner, entry.version,
             entry.state.value, list(entry.copyset), entry.snapshot]
            for base, entry in sorted(entries.items())
        ]
        if not kernel.vfs.exists(DIRSTORE_DIR):
            kernel.vfs.makedirs(DIRSTORE_DIR)
        kernel.vfs.write_whole(DIRSTORE_PATH, encode_fields(rows))
        self._dir_dirty = False
        self.stats.dir_persists += 1
        _emit("dir-persist", value=len(rows))

    def _recover_directory(self, kernel) -> None:
        """Rebuild the segment table from the rebooted home's volume."""
        from repro.disk.codec import decode_fields
        from repro.net.coherence import SegmentState, _Entry

        try:
            blob = kernel.vfs.read_whole(DIRSTORE_PATH)
        except SimulationError:
            return  # no (or volatile) store: the directory starts empty
        rnd = self.cluster.round
        grace = rnd + self.config.lease_rounds
        entries = {}
        for base, path, owner, version, state, copyset, snapshot \
                in decode_fields(blob):
            entries[base] = _Entry(
                path=path, owner=owner, version=version,
                state=SegmentState(state), copyset=list(copyset),
                leases={node: grace for node in copyset
                        if node != self.home},
                snapshot=snapshot)
        directory = self.cluster.directory
        directory.entries.clear()
        directory.entries.update(entries)
        self.stats.dir_recovered += len(entries)
        _emit("dir-recover", value=len(entries))

    # ------------------------------------------------------------------
    # progress + checkpoint capture
    # ------------------------------------------------------------------

    def state_signature(self) -> tuple:
        """The HA facts whose change counts as cluster progress (fault
        windows opening/closing, membership shifts) — deliberately
        excluding heartbeat counters, which tick forever."""
        return (
            tuple(sorted(self.crashed.items())),
            tuple(sorted(self.wedged.items())),
            tuple((tuple(sorted(a)), tuple(sorted(b)), heal)
                  for a, b, heal in self.partitions),
            tuple(sorted(self.suspected)),
            self.stats.reboots,
            self.stats.lease_reclaims,
        )

    def capture(self) -> list:
        """Deterministic snapshot for reprorr cluster checkpoints."""
        entries = self.cluster.directory.entries
        return [
            sorted(self.crashed.items()),
            sorted(self.wedged.items()),
            [[sorted(a), sorted(b), heal]
             for a, b, heal in self.partitions],
            sorted(self.suspected),
            sorted(self.last_seen.items()),
            self._dir_dirty,
            list(self.cluster.fabric.generations),
            [self.stats.crashes, self.stats.wedges,
             self.stats.partitions, self.stats.heals,
             self.stats.reboots, self.stats.suspects,
             self.stats.rejoins, self.stats.lease_reclaims,
             self.stats.stale_invalidated],
            [[base, entry.path, entry.owner, entry.version,
              entry.state.value, list(entry.copyset),
              sorted(entry.leases.items()), entry.snapshot]
             for base, entry in sorted(entries.items())],
        ]
