"""The simulated wire: frames, links, and the cluster fabric.

Every byte that crosses between machines travels as a checksummed
:class:`Frame`. Datagrams are asynchronous — enqueued with a per-link
seeded latency (in scheduler rounds) and delivered when the cluster
reaches that round, which is where loss-free reordering comes from.
Protocol exchanges (coherence, application RPC) are synchronous calls
with bounded retransmission: a dropped or corrupted frame costs the
caller a deterministic backoff and a resend, and a request that
exhausts its budget surfaces as :class:`repro.errors.InjectedNetError`
(the fabric itself is lossless; only the NET fault plane loses frames).

Determinism: per-link jitter comes from a splitmix64-derived
:class:`~repro.util.rng.DeterministicRng` per ordered node pair, frame
sequence numbers are globally monotonic, and due frames deliver sorted
by ``(deliver_round, seq, copy)`` — so two runs of the same seeded
cluster see byte-identical traffic in the same order.

Node failures (``repro.ha``): every frame carries its sender's *boot
generation*, packed into the high bits of the 16-bit src field so the
wire format (and therefore every cycle charge) is byte-identical to a
generation-0 cluster. Receivers dedupe per ``(sender, generation)``
with a bounded high-water window, and the reply cache tags entries with
the serving node's boot generation — so a rebooted node neither has its
fresh frames swallowed as duplicates nor serves replies recorded before
its crash.
"""

from __future__ import annotations

import enum
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InjectedNetError, NetError
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.util.rng import DeterministicRng

_MASK64 = 0xFFFFFFFFFFFFFFFF

FRAME_MAGIC = b"HNET"
FRAME_VERSION = 1

#: attempts a synchronous exchange makes before giving up
MAX_RETRANSMITS = 8

#: replies remembered per NIC for retransmitted (duplicate) requests
REPLY_CACHE_LIMIT = 512

#: per-sender duplicate-suppression window: a datagram whose seq falls
#: at least this far below the sender's high-water mark is a duplicate
DEDUPE_WINDOW = 1024

#: the 16-bit src field carries node id (low bits) + boot generation
_NODE_MASK = 0x3FF
_GEN_SHIFT = 10
_GEN_MASK = 0x3F


def mix_seed(seed: int, index: int) -> int:
    """splitmix64-style finalizer, the same derivation the injector
    uses, so per-link streams never alias each other or the plan RNGs."""
    x = (seed + (index + 1) * 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class FrameKind(enum.IntEnum):
    """What a frame carries."""

    DATA = 0         # an application datagram (forwarded to a queue)
    CALL = 1         # a generic application RPC request
    REPLY = 2        # a generic application RPC reply
    ACK = 3          # protocol acknowledgement (no payload)
    NAK = 4          # protocol refusal (unknown segment / port)
    PUBLISH = 5      # coherence: a new segment enters the directory
    UNPUBLISH = 6    # coherence: a segment leaves the directory
    FETCH = 7        # coherence: give me a copy (read or write intent)
    GRANT = 8        # coherence: here is your copy / permission
    UPGRADE = 9      # coherence: promote my shared copy to exclusive
    INVALIDATE = 10  # coherence: discard your copy
    DOWNGRADE = 11   # coherence: demote your exclusive copy to shared
    LOOKUP = 12      # coherence: path -> base address
    HEARTBEAT = 13   # membership: i-am-alive + lease renewal piggyback


# magic, version, kind, port, src, dst, seq, length, crc
_HEADER = struct.Struct("<4sBBHHHIII")
HEADER_SIZE = _HEADER.size


@dataclass
class Frame:
    """One unit of cluster traffic."""

    kind: FrameKind
    src: int
    dst: int
    port: int
    seq: int
    payload: bytes = b""
    gen: int = 0  # sender's boot generation (rides the src high bits)

    def pack(self) -> bytes:
        src_field = (self.src & _NODE_MASK) \
            | ((self.gen & _GEN_MASK) << _GEN_SHIFT)
        head = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, int(self.kind),
                            self.port, src_field, self.dst, self.seq,
                            len(self.payload), 0)
        crc = zlib.crc32(head + self.payload) & 0xFFFFFFFF
        return _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, int(self.kind),
                            self.port, src_field, self.dst, self.seq,
                            len(self.payload), crc) + self.payload

    @classmethod
    def unpack(cls, wire: bytes) -> "Frame":
        """Parse and verify; raises :class:`NetError` on any damage."""
        if len(wire) < HEADER_SIZE:
            raise NetError(f"runt frame ({len(wire)} bytes)")
        magic, version, kind, port, src_field, dst, seq, length, crc = \
            _HEADER.unpack_from(wire)
        payload = wire[HEADER_SIZE:]
        if magic != FRAME_MAGIC or version != FRAME_VERSION:
            raise NetError("bad frame magic/version")
        if length != len(payload):
            raise NetError(
                f"frame length mismatch ({length} != {len(payload)})")
        head = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, kind, port,
                            src_field, dst, seq, length, 0)
        if zlib.crc32(head + payload) & 0xFFFFFFFF != crc:
            raise NetError(f"frame checksum mismatch (seq {seq})")
        try:
            parsed_kind = FrameKind(kind)
        except ValueError:
            raise NetError(f"unknown frame kind {kind}")
        return cls(parsed_kind, src_field & _NODE_MASK, dst, port, seq,
                   payload, gen=src_field >> _GEN_SHIFT)


@dataclass
class FabricStats:
    """Exact counters over everything the fabric carried."""

    frames_sent: int = 0
    frames_delivered: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    dropped: int = 0         # lost to an injected DROP
    duplicated: int = 0      # extra copies from injected DUP
    delayed: int = 0         # frames held back by injected DELAY
    corrupt_dropped: int = 0 # discarded at the NIC on checksum failure
    dup_dropped: int = 0     # duplicate datagrams suppressed by seq
    retransmits: int = 0     # synchronous-exchange resends
    ha_dropped: int = 0      # frames lost to a dead node / partition cut
    heartbeats_delivered: int = 0  # HEARTBEAT datagrams drained
    by_kind: Dict[str, int] = field(default_factory=dict)

    def count_kind(self, kind: FrameKind) -> None:
        name = kind.name
        self.by_kind[name] = self.by_kind.get(name, 0) + 1


class _Link:
    """One ordered node pair: a base delay plus seeded jitter."""

    __slots__ = ("base_delay", "jitter", "rng")

    def __init__(self, base_delay: int, jitter: int,
                 rng: DeterministicRng) -> None:
        self.base_delay = base_delay
        self.jitter = jitter
        self.rng = rng

    def draw_delay(self) -> int:
        """Rounds until delivery for one datagram on this link."""
        if self.jitter <= 0:
            return self.base_delay
        return self.base_delay + self.rng.randint(0, self.jitter)


class _SenderWindow:
    """Bounded dedupe state for one (sender, generation).

    Seqs are fabric-global and monotonic, so per sender they arrive
    almost sorted: remember the ones near the high-water mark and treat
    anything at least :data:`DEDUPE_WINDOW` below it as a duplicate.
    A generation bump (the sender rebooted) resets the window, so a
    restarted seq counter is never swallowed.
    """

    __slots__ = ("gen", "high", "recent")

    def __init__(self) -> None:
        self.gen = 0
        self.high = 0
        self.recent: set = set()

    def reset(self, gen: int) -> None:
        self.gen = gen
        self.high = 0
        self.recent.clear()

    def is_duplicate(self, seq: int) -> bool:
        if seq in self.recent:
            return True
        return self.high >= DEDUPE_WINDOW \
            and seq <= self.high - DEDUPE_WINDOW

    def note(self, seq: int) -> None:
        self.recent.add(seq)
        if seq > self.high:
            self.high = seq
        if len(self.recent) > 2 * DEDUPE_WINDOW:
            floor = self.high - DEDUPE_WINDOW
            self.recent = {s for s in self.recent if s > floor}


class Nic:
    """One machine's network interface.

    Holds the datagram inbox the cluster fills at round boundaries, the
    per-port RPC handlers, and the reply cache that makes retransmitted
    requests idempotent. All receive-side cycle charging happens here,
    on the owning machine's clock.
    """

    def __init__(self, fabric: "Fabric", node_id: int, kernel) -> None:
        self.fabric = fabric
        self.node_id = node_id
        self.kernel = kernel
        self.gen = 0         # this node's boot generation
        self.wedged = False  # True: netd stops draining the inbox
        self.inbox: List[bytes] = []
        self._seen: Dict[int, _SenderWindow] = {}
        self._handlers: Dict[int, object] = {}
        # (src, src_gen, seq) -> (serving boot generation, reply wire)
        self._reply_cache: \
            "OrderedDict[Tuple[int, int, int], Tuple[int, bytes]]" = \
            OrderedDict()

    def bind(self, port: int, handler) -> None:
        """Register *handler* for synchronous frames to *port*.

        The handler takes the request :class:`Frame` and returns
        ``(FrameKind, payload_bytes)``.
        """
        if port in self._handlers:
            raise NetError(f"port {port} already bound on node "
                           f"{self.node_id}")
        self._handlers[port] = handler

    # ------------------------------------------------------------------
    # datagrams
    # ------------------------------------------------------------------

    def send(self, proc, dst: int, port: int, payload: bytes,
             kind: FrameKind = FrameKind.DATA) -> None:
        """Queue one datagram onto the fabric (fire and forget)."""
        self.fabric.send_datagram(self, proc, dst, port, payload, kind)

    def poll(self, proc) -> List[Frame]:
        """Drain the inbox: verify, dedupe, charge, return good frames.

        Called from the ``netd`` daemon each scheduling round, so
        receive-side cycles land on this machine's clock while its
        network daemon runs.
        """
        if self.wedged or not self.inbox:
            return []
        raw, self.inbox = self.inbox, []
        clock = self.kernel.clock
        stats = self.fabric.stats
        tracer = _trace.TRACER
        good: List[Frame] = []
        for wire in raw:
            clock.net(len(wire))
            try:
                frame = Frame.unpack(wire)
            except NetError:
                stats.corrupt_dropped += 1
                if tracer.enabled:
                    tracer.emit(EventKind.NET, name="rx-bad",
                                pid=proc.pid, value=len(wire))
                continue
            window = self._seen.get(frame.src)
            if window is None:
                window = _SenderWindow()
                self._seen[frame.src] = window
            if frame.gen != window.gen:
                if frame.gen < window.gen:
                    # a straggler from before the sender's reboot
                    stats.dup_dropped += 1
                    if tracer.enabled:
                        tracer.emit(EventKind.NET, name="rx-stale-gen",
                                    pid=proc.pid, addr=frame.seq)
                    continue
                window.reset(frame.gen)
            if window.is_duplicate(frame.seq):
                stats.dup_dropped += 1
                if tracer.enabled:
                    tracer.emit(EventKind.NET, name="rx-dup",
                                pid=proc.pid, addr=frame.seq)
                continue
            window.note(frame.seq)
            stats.frames_delivered += 1
            stats.bytes_delivered += len(wire)
            if frame.kind is FrameKind.HEARTBEAT:
                stats.heartbeats_delivered += 1
            if tracer.enabled:
                tracer.emit(EventKind.NET,
                            name=f"rx:{frame.kind.name.lower()}",
                            pid=proc.pid, addr=frame.seq,
                            value=len(wire))
            good.append(frame)
        return good

    # ------------------------------------------------------------------
    # synchronous exchanges
    # ------------------------------------------------------------------

    def call(self, dst: int, kind: FrameKind, port: int,
             payload: bytes) -> Frame:
        """One synchronous request/reply exchange with node *dst*."""
        return self.fabric.rpc(self, dst, kind, port, payload)

    def _serve(self, frame: Frame) -> bytes:
        """Execute (or replay) the handler for a request frame; returns
        the packed reply wire. Retransmitted requests are answered from
        the reply cache so every handler observes each seq once. Cache
        entries are tagged with the boot generation that produced them:
        a reply recorded before a crash must never be replayed by the
        rebooted incarnation (its volatile state is gone)."""
        key = (frame.src, frame.gen, frame.seq)
        cached = self._reply_cache.get(key)
        if cached is not None:
            gen_at, wire = cached
            if gen_at == self.gen:
                return wire
            del self._reply_cache[key]  # stale: pre-reboot reply
        handler = self._handlers.get(frame.port)
        if handler is None:
            reply_kind, reply_payload = FrameKind.NAK, b""
        else:
            reply_kind, reply_payload = handler(frame)
        reply = Frame(reply_kind, self.node_id, frame.src, frame.port,
                      frame.seq, reply_payload, gen=self.gen)
        wire = reply.pack()
        self._reply_cache[key] = (self.gen, wire)
        while len(self._reply_cache) > REPLY_CACHE_LIMIT:
            self._reply_cache.popitem(last=False)
        return wire


class Fabric:
    """The seeded network joining a cluster's machines."""

    def __init__(self, nnodes: int, seed: int = 1993,
                 base_delay: int = 1, jitter: int = 2) -> None:
        if nnodes < 1:
            raise NetError("a fabric needs at least one node")
        self.nnodes = nnodes
        self.seed = seed
        self.stats = FabricStats()
        self.round = 0
        #: the cluster's HA manager when armed (None = no failure model;
        #: the send/rpc paths then cost exactly one attribute check)
        self.ha = None
        #: per-node boot generation, bumped by :meth:`reattach`
        self.generations: List[int] = [0] * nnodes
        self._next_seq = 1
        self._nics: List[Optional[Nic]] = [None] * nnodes
        self._links: Dict[Tuple[int, int], _Link] = {}
        for src in range(nnodes):
            for dst in range(nnodes):
                if src == dst:
                    continue
                index = src * nnodes + dst
                self._links[(src, dst)] = _Link(
                    base_delay, jitter,
                    DeterministicRng(mix_seed(seed, index)))
        # (deliver_round, seq, copy, dst, wire, kind)
        self._in_flight: List[
            Tuple[int, int, int, int, bytes, FrameKind]] = []

    def attach(self, node_id: int, nic: Nic) -> None:
        if self._nics[node_id] is not None:
            raise NetError(f"node {node_id} already attached")
        self._nics[node_id] = nic

    def reattach(self, node_id: int, nic: Nic) -> None:
        """Replace a crashed node's NIC with its rebooted incarnation.

        Bumps the node's boot generation so receivers reset their
        dedupe windows and the node's own reply cache goes stale."""
        if self._nics[node_id] is None:
            raise NetError(f"node {node_id} was never attached")
        self.generations[node_id] += 1
        nic.gen = self.generations[node_id] & _GEN_MASK
        self._nics[node_id] = nic

    def purge_node(self, node_id: int) -> int:
        """Drop every in-flight frame addressed to *node_id* (it lost
        power: whatever was on its wire never arrives)."""
        keep = [entry for entry in self._in_flight
                if entry[3] != node_id]
        purged = len(self._in_flight) - len(keep)
        self._in_flight = keep
        self.stats.ha_dropped += purged
        return purged

    def link(self, src: int, dst: int) -> _Link:
        return self._links[(src, dst)]

    def pending(self) -> int:
        """Frames queued on the wire, not yet delivered."""
        return len(self._in_flight)

    def pending_workload(self) -> int:
        """Like :meth:`pending`, minus HEARTBEAT frames — the
        membership plane beats forever, so it must not keep an
        otherwise-finished cluster from looking idle."""
        return sum(1 for entry in self._in_flight
                   if entry[5] is not FrameKind.HEARTBEAT)

    def _nic(self, node_id: int) -> Nic:
        if not 0 <= node_id < self.nnodes:
            raise NetError(f"no such node {node_id}")
        nic = self._nics[node_id]
        if nic is None:
            raise NetError(f"node {node_id} is not attached")
        return nic

    def _allocate_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # ------------------------------------------------------------------
    # datagram path
    # ------------------------------------------------------------------

    def send_datagram(self, src_nic: Nic, proc, dst: int, port: int,
                      payload: bytes, kind: FrameKind) -> None:
        self._nic(dst)  # validate early, on the sender's side
        frame = Frame(kind, src_nic.node_id, dst, port,
                      self._allocate_seq(), payload, gen=src_nic.gen)
        wire = frame.pack()
        clock = src_nic.kernel.clock
        clock.net(len(wire))
        stats = self.stats
        stats.frames_sent += 1
        stats.bytes_sent += len(wire)
        stats.count_kind(kind)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.NET, name=f"tx:{kind.name.lower()}",
                        pid=proc.pid if proc is not None else 0,
                        addr=frame.seq, value=len(wire))
        if self.ha is not None:
            verdict = self.ha.filter_send(frame.src, dst)
            if verdict is not None:
                stats.ha_dropped += 1
                if tracer.enabled:
                    tracer.emit(EventKind.NET,
                                name=f"ha-drop:{verdict}",
                                addr=frame.seq)
                return
        extra = 0
        copies = 1
        injector = src_nic.kernel.injector
        if injector is not None:
            subject = f"{frame.src}->{dst}:{port}"
            wire, action = injector.filter_frame(subject, wire,
                                                 site="send")
            if action == "drop":
                stats.dropped += 1
                if tracer.enabled:
                    tracer.emit(EventKind.NET, name="drop",
                                addr=frame.seq)
                return
            if action == "dup":
                stats.duplicated += 1
                copies = 2
            elif isinstance(action, tuple) and action[0] == "delay":
                stats.delayed += 1
                extra = action[1]
        link = self._links[(frame.src, dst)]
        for copy in range(copies):
            deliver = self.round + link.draw_delay() + extra
            self._in_flight.append(
                (deliver, frame.seq, copy, dst, wire, kind))

    def deliver_due(self, current_round: int) -> int:
        """Move every frame whose round has come into its NIC inbox.

        Delivery order is ``(deliver_round, seq, copy)`` — a total
        order independent of insertion order, so reordering comes only
        from the seeded latencies.
        """
        self.round = current_round
        if not self._in_flight:
            return 0
        due = [entry for entry in self._in_flight
               if entry[0] <= current_round]
        if not due:
            return 0
        self._in_flight = [entry for entry in self._in_flight
                           if entry[0] > current_round]
        due.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        for _deliver, _seq, _copy, dst, wire, _kind in due:
            self._nic(dst).inbox.append(wire)
        return len(due)

    # ------------------------------------------------------------------
    # synchronous exchange path
    # ------------------------------------------------------------------

    def rpc(self, src_nic: Nic, dst: int, kind: FrameKind, port: int,
            payload: bytes,
            max_attempts: int = MAX_RETRANSMITS) -> Frame:
        """One request/reply exchange, with bounded retransmission.

        The caller's clock is charged for every (re)send, the
        round-trip stall, and the received reply; the responder's clock
        for every request it sees and every reply it produces. A lost
        or damaged frame costs the caller a deterministic backoff and a
        resend; the responder's reply cache absorbs duplicates. The
        fabric itself never loses frames, so exhausting the budget can
        only happen under the NET fault plane — hence the typed
        :class:`InjectedNetError`.
        """
        dst_nic = self._nic(dst)
        if dst is src_nic.node_id:
            raise NetError("synchronous exchange with self")
        request = Frame(kind, src_nic.node_id, dst, port,
                        self._allocate_seq(), payload, gen=src_nic.gen)
        request_wire = request.pack()
        src_clock = src_nic.kernel.clock
        dst_clock = dst_nic.kernel.clock
        stats = self.stats
        tracer = _trace.TRACER
        injector = src_nic.kernel.injector
        subject = f"{request.src}->{dst}:{port}"
        ha = self.ha
        ha_blocked: Optional[str] = None
        for attempt in range(1, max_attempts + 1):
            if attempt > 1:
                stats.retransmits += 1
                src_clock.backoff(attempt - 1)
            src_clock.net(len(request_wire))
            stats.frames_sent += 1
            stats.bytes_sent += len(request_wire)
            stats.count_kind(kind)
            if tracer.enabled:
                tracer.emit(EventKind.NET,
                            name=f"tx:{kind.name.lower()}",
                            addr=request.seq, value=len(request_wire))
            if ha is not None:
                verdict = ha.filter_send(request.src, dst)
                if verdict is not None:
                    # dead node or partition cut: the caller waits out
                    # the same timeout window an injected drop costs
                    ha_blocked = verdict
                    stats.ha_dropped += 1
                    if tracer.enabled:
                        tracer.emit(EventKind.NET,
                                    name=f"ha-drop:{verdict}",
                                    addr=request.seq)
                    src_clock.net_stall(2)
                    continue
            wire = request_wire
            copies = 1
            if injector is not None:
                wire, action = injector.filter_frame(subject, wire,
                                                     site="rpc")
                if action == "drop":
                    stats.dropped += 1
                    if tracer.enabled:
                        tracer.emit(EventKind.NET, name="drop",
                                    addr=request.seq)
                    src_clock.net_stall(2)  # the timeout window
                    continue
                if action == "dup":
                    stats.duplicated += 1
                    copies = 2
                elif isinstance(action, tuple) and action[0] == "delay":
                    stats.delayed += 1
                    src_clock.net_stall(action[1])
            src_clock.net_stall(1)  # request propagation
            reply_wire: Optional[bytes] = None
            for _copy in range(copies):
                dst_clock.net(len(wire))
                try:
                    seen = Frame.unpack(wire)
                except NetError:
                    stats.corrupt_dropped += 1
                    if tracer.enabled:
                        tracer.emit(EventKind.NET, name="rx-bad",
                                    addr=request.seq)
                    continue
                stats.frames_delivered += 1
                stats.bytes_delivered += len(wire)
                if tracer.enabled:
                    tracer.emit(EventKind.NET,
                                name=f"rx:{seen.kind.name.lower()}",
                                addr=seen.seq, value=len(wire))
                served = dst_nic._serve(seen)
                if reply_wire is None:
                    reply_wire = served
            if reply_wire is None:
                # the request never parsed: wait out the timeout, resend
                src_clock.net_stall(1)
                continue
            dst_clock.net(len(reply_wire))
            stats.frames_sent += 1
            stats.bytes_sent += len(reply_wire)
            reply_candidate = reply_wire
            if ha is not None:
                verdict = ha.filter_send(dst, request.src)
                if verdict is not None:
                    # the cut fell between request and reply
                    ha_blocked = verdict
                    stats.ha_dropped += 1
                    if tracer.enabled:
                        tracer.emit(EventKind.NET,
                                    name=f"ha-drop-reply:{verdict}",
                                    addr=request.seq)
                    src_clock.net_stall(1)
                    continue
            if injector is not None:
                reply_subject = f"{dst}->{request.src}:{port}"
                reply_candidate, action = injector.filter_frame(
                    reply_subject, reply_candidate, site="rpc-reply")
                if action == "drop":
                    stats.dropped += 1
                    if tracer.enabled:
                        tracer.emit(EventKind.NET, name="drop-reply",
                                    addr=request.seq)
                    src_clock.net_stall(1)
                    continue
                if isinstance(action, tuple) and action[0] == "delay":
                    stats.delayed += 1
                    src_clock.net_stall(action[1])
            src_clock.net_stall(1)  # reply propagation
            src_clock.net(len(reply_candidate))
            try:
                reply = Frame.unpack(reply_candidate)
            except NetError:
                stats.corrupt_dropped += 1
                if tracer.enabled:
                    tracer.emit(EventKind.NET, name="rx-bad",
                                addr=request.seq)
                continue
            stats.frames_delivered += 1
            stats.bytes_delivered += len(reply_candidate)
            stats.count_kind(reply.kind)
            if tracer.enabled:
                tracer.emit(EventKind.NET,
                            name=f"rx:{reply.kind.name.lower()}",
                            addr=reply.seq, value=len(reply_candidate))
            return reply
        if ha_blocked is not None:
            # every failure was the failure model, not the fault plane:
            # tell the membership view the peer timed out (fail fast)
            ha.note_timeout(request.src, dst)
            error = InjectedNetError(
                f"exchange {kind.name}->{dst}:{port} timed out "
                f"({'node down' if ha_blocked == 'down' else 'partition'})")
            error.plane = "node"
            error.site = "rpc"
            error.fault_kind = \
                "node-down" if ha_blocked == "down" else "partition"
            return self._raise(error)
        error = InjectedNetError(
            f"exchange {kind.name}->{dst}:{port} exhausted "
            f"{max_attempts} attempts")
        error.plane = "net"
        error.site = "rpc"
        error.fault_kind = "timeout"
        return self._raise(error)

    @staticmethod
    def _raise(error: InjectedNetError) -> Frame:
        raise error
