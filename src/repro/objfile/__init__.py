"""HOF — the Hemlock Object Format.

Linker support for sharing capitalizes on the lowest common denominator
for language implementations: the object file (§3). This package defines
that format for the simulated toolchain: relocatable objects produced by
the assembler and toy compiler, executables produced by ``lds``, and the
metadata attached to public-module segment images.
"""

from repro.objfile.format import (
    SymBinding,
    SectionLayout,
    SEC_TEXT,
    SEC_DATA,
    SEC_BSS,
    SEC_UNDEF,
    SEC_ABS,
    Symbol,
    RelocType,
    Relocation,
    LinkInfo,
    ObjectFile,
    ObjectKind,
)
from repro.objfile.archive import Archive
from repro.objfile.inspect import nm, objdump

__all__ = [
    "SymBinding",
    "SectionLayout",
    "SEC_TEXT",
    "SEC_DATA",
    "SEC_BSS",
    "SEC_UNDEF",
    "SEC_ABS",
    "Symbol",
    "RelocType",
    "Relocation",
    "LinkInfo",
    "ObjectFile",
    "ObjectKind",
    "Archive",
    "nm",
    "objdump",
]
