"""``ar``-style archives of HOF objects.

Archives let the baseline linker pull in only the members that satisfy
outstanding undefined references, the way ``ld`` treats ``libc.a``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ObjectFormatError
from repro.objfile.format import ObjectFile
from repro.objfile.serialize import BinaryReader, BinaryWriter

ARCHIVE_MAGIC = b"HAR1"


class Archive:
    """An ordered collection of named object members with a symbol index."""

    def __init__(self, name: str = "<archive>") -> None:
        self.name = name
        self.members: List[ObjectFile] = []

    def add(self, obj: ObjectFile) -> None:
        if any(m.name == obj.name for m in self.members):
            raise ObjectFormatError(
                f"archive {self.name!r} already has a member {obj.name!r}"
            )
        self.members.append(obj)

    def symbol_index(self) -> Dict[str, ObjectFile]:
        """Map from each defined global symbol to the member defining it.

        The first member wins on duplicates, matching ld's first-found
        archive semantics.
        """
        index: Dict[str, ObjectFile] = {}
        for member in self.members:
            for symbol in member.defined_globals():
                index.setdefault(symbol.name, member)
        return index

    def member(self, name: str) -> Optional[ObjectFile]:
        for candidate in self.members:
            if candidate.name == name:
                return candidate
        return None

    def resolve(self, undefined: "set[str]") -> List[ObjectFile]:
        """Members needed to satisfy *undefined*, in link order.

        Iterates to a fixed point because pulling in one member can add
        new undefined references satisfied by a later member.
        """
        index = self.symbol_index()
        chosen: List[ObjectFile] = []
        pending = set(undefined)
        changed = True
        while changed:
            changed = False
            for name in sorted(pending):
                member = index.get(name)
                if member is not None and member not in chosen:
                    chosen.append(member)
                    pending |= set(member.undefined_symbols())
                    pending -= {s.name for s in member.defined_globals()}
                    changed = True
        return chosen

    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        writer.raw(ARCHIVE_MAGIC)
        writer.string(self.name)
        writer.u32(len(self.members))
        for member in self.members:
            writer.blob(member.to_bytes())
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Archive":
        reader = BinaryReader(data)
        if reader.raw(4) != ARCHIVE_MAGIC:
            raise ObjectFormatError("not a HOF archive")
        archive = cls(reader.string())
        for _ in range(reader.u32()):
            archive.members.append(ObjectFile.from_bytes(reader.blob()))
        return archive
