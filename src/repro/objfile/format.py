"""The HOF object-file format: sections, symbols, relocations, link info.

A *template* (relocatable ``.o``) contains position-independent section
data plus the symbol and relocation tables needed to relocate it to any
address. ``lds`` consumes templates and produces either an *executable*
(with assigned section addresses, an entry point, retained relocations,
and the dynamic-module list + search paths that ``ldl`` needs at run
time) or a *public module image* (fully relocated to its globally agreed
SFS address).

The format is deliberately ELF-flavoured but much smaller. Everything
serializes to a versioned binary encoding (magic ``HOF1``) via
:mod:`repro.objfile.serialize`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObjectFormatError
from repro.objfile.serialize import BinaryReader, BinaryWriter

MAGIC = b"HOF1"

# Section identifiers. UNDEF/ABS are pseudo-sections used only by symbols.
SEC_TEXT = "text"
SEC_DATA = "data"
SEC_BSS = "bss"
SEC_UNDEF = "*undef*"
SEC_ABS = "*abs*"

_REAL_SECTIONS = (SEC_TEXT, SEC_DATA, SEC_BSS)


class ObjectKind(enum.Enum):
    """What stage of the toolchain produced this object."""

    RELOCATABLE = 0   # compiler/assembler output; a module template
    EXECUTABLE = 1    # lds output: the a.out load image
    SEGMENT = 2       # metadata describing a relocated public/dynamic module


class SymBinding(enum.Enum):
    LOCAL = 0
    GLOBAL = 1


@dataclass
class Symbol:
    """A named object (variable or function) or a reference to one.

    ``section == SEC_UNDEF`` marks an undefined reference; ``SEC_ABS``
    marks an absolute value (used after relocation, when values are final
    virtual addresses). ``kind`` is an optional element-type hint the
    compiler records (``int``, ``char``, ``func`` ...) for tools such as
    hgen; linkers ignore it.
    """

    name: str
    section: str
    value: int
    binding: SymBinding = SymBinding.GLOBAL
    size: int = 0
    kind: str = ""

    @property
    def defined(self) -> bool:
        return self.section != SEC_UNDEF

    def __str__(self) -> str:
        kind = "g" if self.binding is SymBinding.GLOBAL else "l"
        return f"{self.name} [{kind}] {self.section}+0x{self.value:x}"


class RelocType(enum.Enum):
    """Relocation kinds understood by the linkers.

    * ``WORD32`` — a 32-bit absolute address in text or data (e.g. an
      initialized pointer). This is what makes pointer-rich shared data
      position-dependent (§5 "Position-Dependent Files").
    * ``HI16``/``LO16`` — the two halves of a ``lui``/``ori`` (or load /
      store offset) pair carrying an absolute address.
    * ``JUMP26`` — the 26-bit word-address field of ``j``/``jal``; only
      reaches within the current 256 MiB region, which is exactly the
      R3000 limitation that forces ``lds``/``ldl`` to insert branch
      islands for calls into the shared region (§3).
    """

    WORD32 = 0
    HI16 = 1
    LO16 = 2
    JUMP26 = 3


@dataclass
class Relocation:
    """One patch site: *section*+*offset* refers to *symbol*+*addend*."""

    section: str
    offset: int
    type: RelocType
    symbol: str
    addend: int = 0

    def __str__(self) -> str:
        return (
            f"{self.section}+0x{self.offset:x} {self.type.name} "
            f"{self.symbol}+{self.addend}"
        )


@dataclass
class LinkInfo:
    """Link-time strategy data saved into load images and templates.

    ``lds`` stores here the names and sharing classes of the dynamic
    modules it did *not* resolve, plus the search path it used for static
    modules, so that ``ldl`` can locate dynamic modules at run time (§3).
    Templates may also carry their own module list and search path — the
    basis of scoped linking.
    """

    # (module name, sharing class name) pairs; class names are the
    # lowercase identifiers from repro.linker.classes.
    dynamic_modules: List[Tuple[str, str]] = field(default_factory=list)
    search_path: List[str] = field(default_factory=list)

    def copy(self) -> "LinkInfo":
        return LinkInfo(list(self.dynamic_modules), list(self.search_path))


@dataclass
class SectionLayout:
    """Assigned base address of one section in a linked image."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class ObjectFile:
    """A HOF object: template, executable, or segment metadata."""

    def __init__(self, name: str,
                 kind: ObjectKind = ObjectKind.RELOCATABLE) -> None:
        self.name = name
        self.kind = kind
        self.text = bytearray()
        self.data = bytearray()
        self.bss_size = 0
        # Extra zero-initialized per-segment heap space requested by the
        # template (used by shmalloc; see §5 "Dynamic Storage Management").
        self.heap_size = 0
        self.symbols: Dict[str, Symbol] = {}
        self.relocations: List[Relocation] = []
        self.link_info = LinkInfo()
        self.entry_symbol: Optional[str] = None
        # Populated on linked images (EXECUTABLE / SEGMENT):
        self.layout: Dict[str, SectionLayout] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def section_bytes(self, section: str) -> bytearray:
        if section == SEC_TEXT:
            return self.text
        if section == SEC_DATA:
            return self.data
        raise ObjectFormatError(f"section {section!r} has no bytes")

    def section_size(self, section: str) -> int:
        if section == SEC_TEXT:
            return len(self.text)
        if section == SEC_DATA:
            return len(self.data)
        if section == SEC_BSS:
            return self.bss_size
        raise ObjectFormatError(f"unknown section {section!r}")

    def add_symbol(self, symbol: Symbol) -> Symbol:
        """Insert *symbol*, merging with a compatible existing entry.

        An undefined entry is upgraded by a defined one; two definitions
        of the same name in one object are an error.
        """
        existing = self.symbols.get(symbol.name)
        if existing is None:
            self.symbols[symbol.name] = symbol
            return symbol
        if existing.defined and symbol.defined:
            raise ObjectFormatError(
                f"symbol {symbol.name!r} multiply defined in {self.name!r}"
            )
        if symbol.defined:
            self.symbols[symbol.name] = symbol
            return symbol
        return existing

    def reference(self, name: str) -> Symbol:
        """Record (or return) an undefined reference to *name*."""
        symbol = self.symbols.get(name)
        if symbol is None:
            symbol = Symbol(name, SEC_UNDEF, 0)
            self.symbols[name] = symbol
        return symbol

    def defined_globals(self) -> List[Symbol]:
        return [s for s in self.symbols.values()
                if s.defined and s.binding is SymBinding.GLOBAL]

    def undefined_symbols(self) -> List[str]:
        return sorted(
            s.name for s in self.symbols.values() if not s.defined
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        writer.raw(MAGIC)
        writer.u8(self.kind.value)
        writer.string(self.name)
        writer.string(self.entry_symbol or "")
        writer.blob(bytes(self.text))
        writer.blob(bytes(self.data))
        writer.u32(self.bss_size)
        writer.u32(self.heap_size)

        symbols = sorted(self.symbols.values(), key=lambda s: s.name)
        writer.u32(len(symbols))
        for sym in symbols:
            writer.string(sym.name)
            writer.string(sym.section)
            writer.u32(sym.value)
            writer.u8(sym.binding.value)
            writer.u32(sym.size)
            writer.string(sym.kind)

        writer.u32(len(self.relocations))
        for reloc in self.relocations:
            writer.string(reloc.section)
            writer.u32(reloc.offset)
            writer.u8(reloc.type.value)
            writer.string(reloc.symbol)
            writer.i32(reloc.addend)

        writer.u32(len(self.link_info.dynamic_modules))
        for module, sclass in self.link_info.dynamic_modules:
            writer.string(module)
            writer.string(sclass)
        writer.u32(len(self.link_info.search_path))
        for directory in self.link_info.search_path:
            writer.string(directory)

        writer.u32(len(self.layout))
        for sec in self.layout.values():
            writer.string(sec.name)
            writer.u32(sec.base)
            writer.u32(sec.size)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> "ObjectFile":
        reader = BinaryReader(data, offset)
        magic = reader.raw(4)
        if magic != MAGIC:
            raise ObjectFormatError(
                f"bad magic {magic!r}; not a HOF object"
            )
        kind = ObjectKind(reader.u8())
        obj = cls(reader.string(), kind)
        entry = reader.string()
        obj.entry_symbol = entry or None
        obj.text = bytearray(reader.blob())
        obj.data = bytearray(reader.blob())
        obj.bss_size = reader.u32()
        obj.heap_size = reader.u32()

        for _ in range(reader.u32()):
            name = reader.string()
            section = reader.string()
            value = reader.u32()
            binding = SymBinding(reader.u8())
            size = reader.u32()
            kind = reader.string()
            obj.symbols[name] = Symbol(name, section, value, binding,
                                       size, kind)

        for _ in range(reader.u32()):
            section = reader.string()
            roffset = reader.u32()
            rtype = RelocType(reader.u8())
            symbol = reader.string()
            addend = reader.i32()
            obj.relocations.append(
                Relocation(section, roffset, rtype, symbol, addend)
            )

        for _ in range(reader.u32()):
            obj.link_info.dynamic_modules.append(
                (reader.string(), reader.string())
            )
        for _ in range(reader.u32()):
            obj.link_info.search_path.append(reader.string())

        for _ in range(reader.u32()):
            name = reader.string()
            base = reader.u32()
            size = reader.u32()
            obj.layout[name] = SectionLayout(name, base, size)
        return obj

    def clone(self) -> "ObjectFile":
        """Deep copy (templates are cloned before relocation)."""
        return ObjectFile.from_bytes(self.to_bytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ObjectFile {self.name!r} {self.kind.name} "
            f"text={len(self.text)} data={len(self.data)} "
            f"bss={self.bss_size} syms={len(self.symbols)} "
            f"relocs={len(self.relocations)}>"
        )
