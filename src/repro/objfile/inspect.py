"""``nm``/``objdump``-style inspectors for HOF objects.

These are developer conveniences used by tests, examples, and debugging —
the analogue of the binutils a systems programmer would reach for.

Site and relocation rendering is shared with ``reprolint``
(:func:`repro.analyze.report.format_site` /
:func:`~repro.analyze.report.format_reloc`), so a relocation looks the
same in an objdump listing, an nm annotation, and a lint finding. The
disassembly annotates every relocation site inline — kind, symbol,
addend — and tags sites that reprolint flagged with their diagnostic
codes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.objfile.format import ObjectFile, SymBinding, SEC_UNDEF


_SECTION_CODES = {
    "text": "T",
    "data": "D",
    "bss": "B",
    "*abs*": "A",
    SEC_UNDEF: "U",
}


def nm(obj: ObjectFile) -> str:
    """Render the symbol table in ``nm`` style.

    Columns: value (blank for undefined), type code (lowercase for local
    binding), name. Sorted by name. Absolute symbols (placed images)
    render through the shared site formatter, so an address reads the
    same here as in objdump or a reprolint finding.
    """
    from repro.analyze.report import format_site

    lines: List[str] = []
    for symbol in sorted(obj.symbols.values(), key=lambda s: s.name):
        code = _SECTION_CODES.get(symbol.section, "?")
        if symbol.binding is SymBinding.LOCAL:
            code = code.lower()
        if not symbol.defined:
            value = " " * 10
        elif symbol.section == "*abs*":
            value = format_site("", None, symbol.value)
        else:
            value = f"{symbol.value:08x}  "
        lines.append(f"{value} {code} {symbol.name}")
    return "\n".join(lines)


def objdump(obj: ObjectFile, disassemble: bool = False,
            lint: bool = True) -> str:
    """Render headers, layout, relocations, and optionally a disassembly.

    With *lint* (default), the object is run through the reprolint
    pipeline and any finding's diagnostic code is shown next to the
    relocation or instruction it anchors to — ``objdump -d`` doubles as
    a lint report.
    """
    # Imported here to keep objfile independent of the analyzer (and of
    # hw) at module load, mirroring the lazy isa import below.
    from repro.analyze.report import format_reloc, format_site

    codes_at = _lint_codes(obj) if lint else {}
    lines = [
        f"{obj.name}: HOF {obj.kind.name.lower()}",
        f"  text 0x{len(obj.text):x} bytes, data 0x{len(obj.data):x} bytes, "
        f"bss 0x{obj.bss_size:x} bytes, heap 0x{obj.heap_size:x} bytes",
    ]
    if obj.entry_symbol:
        lines.append(f"  entry: {obj.entry_symbol}")
    if obj.layout:
        lines.append("  layout:")
        for sec in obj.layout.values():
            lines.append(
                f"    {sec.name:5s} 0x{sec.base:08x}-0x{sec.end:08x}"
            )
    if obj.link_info.dynamic_modules:
        lines.append("  dynamic modules:")
        for module, sclass in obj.link_info.dynamic_modules:
            lines.append(f"    {module} ({sclass})")
    if obj.link_info.search_path:
        lines.append("  search path: " + ":".join(obj.link_info.search_path))
    if obj.relocations:
        lines.append("  relocations:")
        for reloc in obj.relocations:
            site = format_site(reloc.section, reloc.offset)
            codes = codes_at.get((reloc.section, reloc.offset), ())
            lines.append(f"    {site}: {format_reloc(reloc, codes)}")
    if disassemble and obj.text:
        from repro.hw.isa import disassemble_word

        by_site = {
            (r.section, r.offset): r for r in obj.relocations
        }
        lines.append("  disassembly of text:")
        base = obj.layout["text"].base if "text" in obj.layout else 0
        for offset in range(0, len(obj.text), 4):
            word = int.from_bytes(obj.text[offset: offset + 4], "little")
            line = (
                f"    {base + offset:08x}: {word:08x}  "
                f"{disassemble_word(word, base + offset)}"
            )
            reloc = by_site.get(("text", offset))
            codes = codes_at.get(("text", offset), ())
            if reloc is not None:
                line += f"   # {format_reloc(reloc, codes)}"
            elif codes:
                line += f"   # [{' '.join(sorted(codes))}]"
            lines.append(line)
    return "\n".join(lines)


def _lint_codes(obj: ObjectFile) -> Dict[Tuple[str, int], List[str]]:
    """(section, offset) -> sorted diagnostic codes reprolint reports."""
    from repro.analyze.pipeline import analyze_object

    codes: Dict[Tuple[str, int], List[str]] = {}
    try:
        report = analyze_object(obj)
    except SimulationError:
        return codes  # a broken object should still dump
    for item in report:
        if item.section and item.offset is not None:
            bucket = codes.setdefault((item.section, item.offset), [])
            if item.code not in bucket:
                bucket.append(item.code)
    return codes
