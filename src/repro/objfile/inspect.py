"""``nm``/``objdump``-style inspectors for HOF objects.

These are developer conveniences used by tests, examples, and debugging —
the analogue of the binutils a systems programmer would reach for.
"""

from __future__ import annotations

from typing import List

from repro.objfile.format import ObjectFile, SymBinding, SEC_UNDEF


_SECTION_CODES = {
    "text": "T",
    "data": "D",
    "bss": "B",
    "*abs*": "A",
    SEC_UNDEF: "U",
}


def nm(obj: ObjectFile) -> str:
    """Render the symbol table in ``nm`` style.

    Columns: value (blank for undefined), type code (lowercase for local
    binding), name. Sorted by name.
    """
    lines: List[str] = []
    for symbol in sorted(obj.symbols.values(), key=lambda s: s.name):
        code = _SECTION_CODES.get(symbol.section, "?")
        if symbol.binding is SymBinding.LOCAL:
            code = code.lower()
        if symbol.defined:
            value = f"{symbol.value:08x}"
        else:
            value = " " * 8
        lines.append(f"{value} {code} {symbol.name}")
    return "\n".join(lines)


def objdump(obj: ObjectFile, disassemble: bool = False) -> str:
    """Render headers, layout, relocations, and optionally a disassembly."""
    lines = [
        f"{obj.name}: HOF {obj.kind.name.lower()}",
        f"  text 0x{len(obj.text):x} bytes, data 0x{len(obj.data):x} bytes, "
        f"bss 0x{obj.bss_size:x} bytes, heap 0x{obj.heap_size:x} bytes",
    ]
    if obj.entry_symbol:
        lines.append(f"  entry: {obj.entry_symbol}")
    if obj.layout:
        lines.append("  layout:")
        for sec in obj.layout.values():
            lines.append(
                f"    {sec.name:5s} 0x{sec.base:08x}-0x{sec.end:08x}"
            )
    if obj.link_info.dynamic_modules:
        lines.append("  dynamic modules:")
        for module, sclass in obj.link_info.dynamic_modules:
            lines.append(f"    {module} ({sclass})")
    if obj.link_info.search_path:
        lines.append("  search path: " + ":".join(obj.link_info.search_path))
    if obj.relocations:
        lines.append("  relocations:")
        for reloc in obj.relocations:
            lines.append(f"    {reloc}")
    if disassemble and obj.text:
        # Imported here to keep objfile independent of hw at module load.
        from repro.hw.isa import disassemble_word

        lines.append("  disassembly of text:")
        base = obj.layout["text"].base if "text" in obj.layout else 0
        for offset in range(0, len(obj.text), 4):
            word = int.from_bytes(obj.text[offset: offset + 4], "little")
            lines.append(
                f"    {base + offset:08x}: {word:08x}  "
                f"{disassemble_word(word, base + offset)}"
            )
    return "\n".join(lines)
