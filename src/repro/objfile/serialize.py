"""Minimal binary serialization helpers for object files and metadata.

A deliberately simple length-prefixed binary encoding: fixed-width
little-endian integers and UTF-8 strings. All HOF on-disk structures are
built from these primitives so the format stays byte-exact and versioned.
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import ObjectFormatError

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")


class BinaryWriter:
    """Accumulates a byte buffer from typed writes."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u8(self, value: int) -> "BinaryWriter":
        self._parts.append(_U8.pack(value & 0xFF))
        return self

    def u16(self, value: int) -> "BinaryWriter":
        self._parts.append(_U16.pack(value & 0xFFFF))
        return self

    def u32(self, value: int) -> "BinaryWriter":
        self._parts.append(_U32.pack(value & 0xFFFFFFFF))
        return self

    def i32(self, value: int) -> "BinaryWriter":
        self._parts.append(_I32.pack(value))
        return self

    def string(self, text: str) -> "BinaryWriter":
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ObjectFormatError("string too long to serialize")
        self.u16(len(encoded))
        self._parts.append(encoded)
        return self

    def blob(self, data: bytes) -> "BinaryWriter":
        self.u32(len(data))
        self._parts.append(bytes(data))
        return self

    def raw(self, data: bytes) -> "BinaryWriter":
        self._parts.append(bytes(data))
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class BinaryReader:
    """Sequential reader matching :class:`BinaryWriter`'s encoding."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise ObjectFormatError("truncated object data")
        chunk = self._data[self._pos: self._pos + n]
        self._pos += n
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def i32(self) -> int:
        return _I32.unpack(self._take(4))[0]

    def string(self) -> str:
        length = self.u16()
        return self._take(length).decode("utf-8")

    def blob(self) -> bytes:
        length = self.u32()
        return bytes(self._take(length))

    def raw(self, n: int) -> bytes:
        return bytes(self._take(n))

    @property
    def offset(self) -> int:
        return self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)
