"""Whole-machine record/replay (the ``reprorr`` subsystem).

The substrate is deterministic by construction: every source of
variation — instruction interleaving, cycle charges, fault injection,
cluster frame timing — is a pure function of ``(seed, fault plan,
inputs)``. Following rr's observation (PAPERS.md), a recording is
therefore *tiny*: the manifest of inputs plus periodic full-machine
checkpoints, not an instruction log. Replay re-executes from the same
inputs; checkpoints exist to verify the re-execution (the divergence
oracle) and to let ``seek`` restore mid-run state without replaying
the whole prefix.

Layers:

* :mod:`repro.rr.checkpoint` — capture one machine (or a whole
  cluster) as a codec-encodable state tree; digest, diff, and — for
  machine-pure states — materialize it back into a runnable kernel.
* :mod:`repro.rr.recording` — the ``.rrr`` container: manifest, final
  per-boot cycle accounting, the full trace-event stream, and the
  checkpoint list, saved byte-stably via :mod:`repro.disk.codec`.
* :mod:`repro.rr.recorder` — the ambient arming surface
  (:func:`request_recording` / :func:`cancel_recording`) that
  ``Kernel.__init__`` and ``Cluster`` consult, mirroring
  :mod:`repro.trace` and :mod:`repro.inject`.
* :mod:`repro.rr.oracle` — record a run, replay it, and report the
  first divergent event with its cycle.
"""

from repro.errors import DivergenceError, RRError
from repro.rr.checkpoint import (
    capture_cluster,
    capture_machine,
    diff_states,
    materialize,
    state_digest,
)
from repro.rr.oracle import (
    ReplayReport,
    SeekResult,
    record_call,
    record_script,
    replay_call,
    replay_script,
    seek_call,
    seek_script,
)
from repro.rr.recorder import (
    CAMPAIGN,
    Recorder,
    cancel_recording,
    recording_active,
    request_recording,
)
from repro.rr.recording import Checkpoint, Recording

__all__ = [
    "CAMPAIGN",
    "Checkpoint",
    "DivergenceError",
    "Recorder",
    "Recording",
    "ReplayReport",
    "RRError",
    "SeekResult",
    "cancel_recording",
    "capture_cluster",
    "capture_machine",
    "diff_states",
    "materialize",
    "record_call",
    "record_script",
    "recording_active",
    "replay_call",
    "replay_script",
    "request_recording",
    "seek_call",
    "seek_script",
    "state_digest",
]
