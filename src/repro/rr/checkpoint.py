"""Full-machine checkpoint capture, digest, diff, and materialize.

A checkpoint is a pure-data state tree (ints, strings, bytes, None,
nested lists — exactly what :mod:`repro.disk.codec` encodes), built
from the same volume serialization ``reprofsck`` trusts
(:func:`repro.disk.image.serialize_volume`) plus everything the disk
image does not cover: clock cycles and per-category charges, scheduler
state (runqueue order, pid counter, wait set), and per-process CPU
registers, VM mappings, materialized page contents, descriptor tables,
and captured stdout.

Three consumers, three levels of fidelity:

* :func:`state_digest` — the divergence oracle compares digests, so
  two captures are equal iff their encodings are byte-identical;
* :func:`diff_states` — walks two state trees and names the first
  mismatching path, turning a digest mismatch into a usable report;
* :func:`materialize` — rebuilds a *runnable* kernel from a state
  tree. Only **machine-pure** states qualify: native processes are
  live Python generators and cannot be serialized, so a state with a
  live native process (or a process blocked on an unserialized kernel
  object) raises :class:`~repro.errors.RRError`, and callers fall
  back to replay-from-boot (which the deterministic substrate makes
  equivalent, just slower).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.disk.codec import encode_fields
from repro.disk.image import restore_volume, serialize_volume
from repro.errors import RRError
from repro.kernel.process import ProcessState
from repro.vm.layout import PAGE_SHIFT, PAGE_SIZE

STATE_MACHINE = "machine"
STATE_CLUSTER = "cluster"

_STATES = {state.value: state for state in ProcessState}


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------

def _volume_table(kernel) -> List[Tuple[str, object]]:
    """The mounted volumes in a stable order."""
    return [("rootfs", kernel.rootfs), ("sfs", kernel.sfs)]


def _backing_maps(kernel):
    """id(memobj) -> ("vol", key, ino) for every file-backed object."""
    backing: Dict[int, list] = {}
    for key, fs in _volume_table(kernel):
        for inode in fs.inodes():
            if inode.memobj is not None:
                backing[id(inode.memobj)] = ["vol", key, inode.number]
    return backing


def _capture_object(memobj) -> list:
    """An inline (non-volume) memory object: name, size, pages."""
    pages = [[index, bytes(memobj._pages[index].data).rstrip(b"\0")]
             for index in sorted(memobj._pages)]
    return [memobj.name, memobj.size, pages]


def _capture_process(proc, backing, objects, object_index,
                     handle_index) -> list:
    cpu = None
    if proc.cpu is not None:
        cpu = [proc.cpu.pc, proc.cpu.instructions_executed,
               list(proc.cpu.regs)]
    space = proc.address_space
    mappings: List[list] = []
    mapping_slot: Dict[int, int] = {}
    for mapping in space.mappings():
        mapping_slot[id(mapping)] = len(mappings)
        if mapping.memobj is None:
            ref = ["anon"]
        else:
            ref = backing.get(id(mapping.memobj))
            if ref is None:
                slot = object_index.get(id(mapping.memobj))
                if slot is None:
                    slot = len(objects)
                    object_index[id(mapping.memobj)] = slot
                    objects.append(_capture_object(mapping.memobj))
                ref = ["obj", slot]
        mappings.append([mapping.start, mapping.npages, mapping.prot,
                         mapping.flags, mapping.name, mapping.obj_page,
                         ref])
    pages: List[list] = []
    for vpn in sorted(space._pages):
        pte = space._pages[vpn]
        if pte.frame is None:
            continue  # never materialized: restores lazily, for free
        mapping = pte.mapping
        slot = mapping_slot[id(mapping)]
        shared_frame = False
        if mapping.memobj is not None:
            obj_page = mapping.obj_page \
                + (vpn - (mapping.start >> PAGE_SHIFT))
            shared_frame = mapping.memobj.page(obj_page) is pte.frame
        if shared_frame:
            # Content lives in the backing object (volume or inline
            # capture); only the reference needs recording.
            pages.append([vpn, pte.prot, int(pte.cow), "obj", None,
                          slot])
        else:
            pages.append([vpn, pte.prot, int(pte.cow), "priv",
                          bytes(pte.frame.data).rstrip(b"\0"), slot])
    fds = [[fd, handle_index[id(proc.fds[fd])]]
           for fd in sorted(proc.fds)]
    handlers = [[signal.value, len(chain)]
                for signal, chain in
                sorted(proc.signal_handlers.items(),
                       key=lambda item: item[0].value)
                if chain]
    return [
        proc.pid, proc.ppid, proc.uid, proc.name, proc.state.value,
        proc.exit_code, proc.death_reason, int(proc.reaped), proc.cwd,
        proc.brk, proc._next_fd, proc.block_reason,
        "m" if proc.cpu is not None else "n",
        cpu,
        bytes(proc.stdout),
        [[key, value] for key, value in sorted(proc.environ.items())],
        handlers,
        fds,
        mappings,
        pages,
    ]


def capture_machine(kernel) -> list:
    """One kernel's complete state as a codec-encodable tree."""
    clock = kernel.clock
    backing = _backing_maps(kernel)
    objects: List[list] = []
    object_index: Dict[int, int] = {}
    # Open-file descriptions are shared across fork'd processes, so
    # they go through an identity table exactly like memory objects.
    handles: List[list] = []
    handle_index: Dict[int, int] = {}
    fs_keys = {id(fs): key for key, fs in _volume_table(kernel)}
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        for fd in sorted(proc.fds):
            handle = proc.fds[fd]
            if id(handle) in handle_index:
                continue
            handle_index[id(handle)] = len(handles)
            handles.append([fs_keys.get(id(handle.fs)),
                            handle.inode.number, handle.path,
                            handle.flags, handle.offset,
                            handle.refcount])
    procs = [_capture_process(kernel.processes[pid], backing, objects,
                              object_index, handle_index)
             for pid in sorted(kernel.processes)]
    return [
        STATE_MACHINE,
        [clock.cycles,
         [[name, clock.by_category[name]]
          for name in sorted(clock.by_category)],
         clock.elapsed, clock.ncores,
         [[core, clock.core_cycles[core]]
          for core in sorted(clock.core_cycles)]],
        kernel._next_pid,
        kernel.quantum,
        list(kernel._runqueue),
        sorted(kernel._wait_blocked),
        kernel.queues.backlog(),
        [[key, serialize_volume(fs)] for key, fs in
         _volume_table(kernel)],
        handles,
        objects,
        procs,
    ]


def capture_cluster(cluster) -> list:
    """A whole cluster at a round boundary: the global round counter,
    fabric traffic counters and in-flight count, every member
    machine's full state in node order, and — when the failure model
    is armed — the HA plane (fault windows, membership, generations,
    directory rows with leases)."""
    stats = cluster.fabric.stats
    state = [
        STATE_CLUSTER,
        cluster.round,
        cluster.nnodes,
        cluster.seed,
        [stats.frames_sent, stats.frames_delivered,
         cluster.fabric.pending(),
         [len(machine.nic.inbox) for machine in cluster.machines]],
        [capture_machine(machine.kernel)
         for machine in cluster.machines],
    ]
    ha = getattr(cluster, "ha", None)
    if ha is not None:
        state.append(ha.capture())
    return state


def state_digest(state: list) -> bytes:
    """sha256 over the canonical encoding: equal digests iff the
    captures are byte-identical."""
    return hashlib.sha256(encode_fields(state)).digest()


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------

_MACHINE_FIELDS = ["tag", "clock", "next_pid", "quantum", "runqueue",
                   "wait_blocked", "queue_backlog", "volumes", "handles",
                   "objects", "procs"]


def _diff_walk(path: str, a, b) -> Optional[str]:
    if type(a) is not type(b):
        return (f"{path}: type {type(a).__name__} vs "
                f"{type(b).__name__}")
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} vs {len(b)}"
        for index, (left, right) in enumerate(zip(a, b)):
            found = _diff_walk(f"{path}[{index}]", left, right)
            if found is not None:
                return found
        return None
    if a != b:
        return f"{path}: {a!r} vs {b!r}"
    return None


def diff_states(recorded: list, replayed: list) -> Optional[str]:
    """The first mismatching path between two state trees, or None.

    Top-level machine fields are named (``clock``, ``procs``, ...) so
    a divergence report says *what kind* of state drifted, not just
    where in a nested list it lives.
    """
    if (isinstance(recorded, list) and isinstance(replayed, list)
            and recorded[:1] == replayed[:1]
            and recorded[:1] in ([STATE_MACHINE], [STATE_CLUSTER])
            and len(recorded) == len(replayed)):
        names = (_MACHINE_FIELDS if recorded[0] == STATE_MACHINE
                 else ["tag", "round", "nnodes", "seed", "fabric",
                       "nodes"])
        for name, left, right in zip(names, recorded, replayed):
            found = _diff_walk(name, left, right)
            if found is not None:
                return found
        return None
    return _diff_walk("state", recorded, replayed)


# ---------------------------------------------------------------------------
# materialize
# ---------------------------------------------------------------------------

def _quiet_ambient():
    """Pending ambient arming requests (trace/inject/rr) stashed away,
    so the fresh kernel materialize boots does not consume or trigger
    them. Returns a restore callable."""
    from repro.inject import injector as _inject
    from repro.rr import recorder as _rr
    from repro.trace import tracer as _trace

    saved = (_trace._PENDING, _inject._PENDING, _rr._PENDING)
    _trace._PENDING = _inject._PENDING = _rr._PENDING = None

    def restore():
        _trace._PENDING, _inject._PENDING, _rr._PENDING = saved

    return restore


def materialize(state: list, costs=None, lazy: bool = True,
                scoped: bool = True):
    """A runnable kernel rebuilt from a machine state tree.

    Only machine-pure states qualify (see the module docstring): a
    live native process, a blocked process, or undrained message
    queues raise :class:`~repro.errors.RRError` and the caller should
    replay from boot instead. The returned kernel re-executes forward
    bit-identically to the original run — the Hypothesis round-trip
    property in ``tests/test_rr.py`` pins exactly that.
    """
    from repro.fs.vfs import OpenFile
    from repro.hw.cpu import Cpu
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.kernel.signals import Signal
    from repro.runtime.libshared import HemlockRuntime, attach_runtime
    from repro.trace import tracer as _trace
    from repro.vm.address_space import AddressSpace
    from repro.vm.pages import MemoryObject

    try:
        (tag, clock_row, next_pid, quantum, runqueue, wait_blocked,
         queue_backlog, volumes, handles, objects, procs) = state
    except (ValueError, TypeError):
        raise RRError("malformed machine state tree")
    if tag != STATE_MACHINE:
        raise RRError(
            f"cannot materialize a {tag!r} state: cluster states "
            f"replay from boot (round-based re-execution)")
    if queue_backlog:
        raise RRError(
            f"state has {queue_backlog} undrained message(s); message "
            f"queues are not serializable — replay from boot")
    for row in procs:
        state_tag, kind, block_reason = row[4], row[12], row[11]
        if kind == "n" and state_tag != ProcessState.ZOMBIE.value:
            raise RRError(
                f"process {row[0]} ({row[3]!r}) is a live native "
                f"process; generators are not serializable — replay "
                f"from boot")
        if state_tag == ProcessState.BLOCKED.value:
            raise RRError(
                f"process {row[0]} ({row[3]!r}) is blocked on "
                f"{block_reason!r}; kernel wait objects are not "
                f"serializable — replay from boot")

    restore_pending = _quiet_ambient()
    previous_tracer = _trace.TRACER
    _trace.set_tracer(None)
    try:
        cycles, categories, elapsed, ncores, core_cycles = clock_row
        kernel = Kernel(costs=costs, ncores=ncores)
        attach_runtime(kernel, lazy=lazy, scoped=scoped)
        volume_table = dict(_volume_table(kernel))
        for key, record in volumes:
            fs = volume_table.get(key)
            if fs is None:
                raise RRError(f"state names unknown volume {key!r}")
            restore_volume(fs, record)
        kernel.clock.cycles = cycles
        kernel.clock.by_category = {name: value
                                    for name, value in categories}
        kernel.clock.elapsed = elapsed
        kernel.clock.core_cycles = {core: value
                                    for core, value in core_cycles}
        kernel._next_pid = next_pid
        kernel.quantum = quantum
        kernel._runqueue = list(runqueue)
        kernel._wait_blocked = set(wait_blocked)

        restored_handles = []
        for volkey, ino, path, flags, offset, refcount in handles:
            fs = volume_table.get(volkey)
            inode = fs.inode_by_number(ino) if fs is not None else None
            if inode is None:
                raise RRError(
                    f"open file {path!r} names missing inode "
                    f"{volkey}:{ino}")
            handle = OpenFile(vfs=kernel.vfs, fs=fs, inode=inode,
                              path=path, flags=flags, offset=offset,
                              refcount=refcount)
            restored_handles.append(handle)

        inline_objects = []
        for name, size, pages in objects:
            memobj = MemoryObject(kernel.physmem, size, name=name)
            for index, data in pages:
                memobj._pages[index] = kernel.physmem.alloc(data)
            inline_objects.append(memobj)

        for row in procs:
            (pid, ppid, uid, name, state_tag, exit_code, death_reason,
             reaped, cwd, brk, next_fd, block_reason, kind, cpu_row,
             stdout, environ, _handlers, fds, mappings, pages) = row
            space = AddressSpace(kernel.physmem, name=f"pid{pid}")
            space.injector = kernel.injector
            proc = Process(pid, ppid, uid, space, name)
            # Core placement is pid % ncores, so rebinding from the pid
            # reproduces the original placement exactly.
            kernel._bind_core(proc)
            proc.state = _STATES[state_tag]
            proc.exit_code = exit_code
            proc.death_reason = death_reason
            proc.reaped = bool(reaped)
            proc.cwd = cwd
            proc.brk = brk
            proc._next_fd = next_fd
            proc.block_reason = block_reason
            proc.stdout = bytearray(stdout)
            proc.environ = {key: value for key, value in environ}
            if kind == "m":
                proc.cpu = Cpu(space)
                pc, executed, regs = cpu_row
                proc.cpu.pc = pc
                proc.cpu.instructions_executed = executed
                proc.cpu.regs[:] = regs
                # Reinstall the SIGSEGV chain (runtime first, then the
                # machine-program hook), matching exec's wiring;
                # zombies keep theirs too — terminate() never strips
                # handlers, so captures of dead processes carry them.
                HemlockRuntime(kernel, proc, lazy=lazy, scoped=scoped)
            mapping_objs = []
            for (start, npages, prot, flags, mname, obj_page,
                 ref) in mappings:
                memobj = None
                if ref[0] == "vol":
                    _, volkey, ino = ref
                    fs = volume_table.get(volkey)
                    inode = (fs.inode_by_number(ino)
                             if fs is not None else None)
                    if inode is None or inode.memobj is None:
                        raise RRError(
                            f"mapping {mname!r} names missing segment "
                            f"{volkey}:{ino}")
                    memobj = inode.memobj
                elif ref[0] == "obj":
                    memobj = inline_objects[ref[1]]
                mapping = space.map(start, npages * PAGE_SIZE,
                                    memobj=memobj,
                                    offset=obj_page * PAGE_SIZE,
                                    prot=prot, flags=flags, name=mname)
                mapping_objs.append(mapping)
            for vpn, prot, cow, page_kind, data, slot in pages:
                pte = space._pages[vpn]
                pte.prot = prot
                mapping = mapping_objs[slot]
                if page_kind == "obj":
                    obj_page = mapping.obj_page \
                        + (vpn - (mapping.start >> PAGE_SHIFT))
                    frame = mapping.memobj.ensure_page(obj_page)
                    pte.frame = kernel.physmem.retain(frame)
                else:
                    pte.frame = kernel.physmem.alloc(data)
                pte.cow = bool(cow)
            for fd, slot in fds:
                proc.fds[fd] = restored_handles[slot]
            kernel.processes[pid] = proc
        return kernel
    finally:
        _trace.set_tracer(previous_tracer)
        restore_pending()
