"""Record a run, replay it, and find the first divergence.

The oracle's contract: a replay armed with a recording's manifest must
reproduce the original run *bit-for-bit* — the same trace events at
the same cycles, the same per-category cycle totals per boot, the same
checkpoint digests, the same outcome. Any mismatch is nondeterminism
in the substrate (kernel, vm, disk, net, or inject plane) and is
reported as the first divergent event with its cycle, which is exactly
the information a bisection needs.

Two entry styles:

* ``*_script`` — the CLI path: the workload is a Python script run
  under ``runpy`` with a swapped ``argv``, mirroring ``reprochaos``;
* ``*_call`` — the test path: the workload is a callable, so suites
  can record inline workloads without touching the filesystem.
"""

from __future__ import annotations

import contextlib
import io
import os
import runpy
import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.rr.checkpoint import diff_states, state_digest
from repro.rr.recording import (
    RECORD_CAPACITY,
    Checkpoint,
    Recording,
    encode_plan,
    pack_event,
)

#: Trace kinds armed by default while recording: everything, so the
#: oracle sees faults, links, maps, messages, net frames, and disk
#: traffic alike.
DEFAULT_KINDS = None


@dataclass
class Divergence:
    """Where a replay first disagreed with its recording."""

    what: str            # event | event-count | cycles | checkpoint | outcome
    index: int           # event index / boot index / checkpoint index
    cycle: int           # simulated cycle of the divergence (-1: n/a)
    recorded: object
    replayed: object
    detail: str = ""

    def render(self) -> str:
        head = (f"first divergence: {self.what}[{self.index}] "
                f"at cycle {self.cycle}"
                if self.cycle >= 0
                else f"first divergence: {self.what}[{self.index}]")
        lines = [head,
                 f"  recorded: {self.recorded!r}",
                 f"  replayed: {self.replayed!r}"]
        if self.detail:
            lines.append(f"  {self.detail}")
        return "\n".join(lines)


@dataclass
class ReplayReport:
    """The oracle's verdict for one replay."""

    divergence: Optional[Divergence]
    events_compared: int = 0
    boots_compared: int = 0
    checkpoints_compared: int = 0
    outcome: str = ""

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        if self.ok:
            return (f"replay ok: {self.events_compared} event(s), "
                    f"{self.boots_compared} boot(s), "
                    f"{self.checkpoints_compared} checkpoint(s) "
                    f"bit-identical ({self.outcome})")
        return self.divergence.render()


@dataclass
class SeekResult:
    """What ``reprorr seek --cycle N`` established."""

    target_cycle: int
    checkpoint_cycle: Optional[int]   # None: replayed from boot
    digest_ok: bool
    suffix_identical: bool
    events: List[list] = field(default_factory=list)  # cycle >= target
    outcome: str = ""

    def render(self) -> str:
        origin = (f"checkpoint @cycle {self.checkpoint_cycle}"
                  if self.checkpoint_cycle is not None else "boot")
        verdict = ("bit-identical" if self.suffix_identical
                   else "DIVERGED")
        digest = ("digest verified" if self.digest_ok
                  else "DIGEST MISMATCH")
        return (f"seek to cycle {self.target_cycle}: restored from "
                f"{origin}, {digest}, {len(self.events)} event(s) from "
                f"cycle {self.target_cycle} onward {verdict} "
                f"({self.outcome})")


# ---------------------------------------------------------------------------
# one armed run
# ---------------------------------------------------------------------------

def _capture_env() -> dict:
    return {key: value for key, value in os.environ.items()
            if key.startswith("REPRO_")}


@contextlib.contextmanager
def _applied_env(env: dict):
    """The recorded ``REPRO_*`` environment, exactly: recorded keys
    set, extraneous ones removed, everything restored after."""
    saved = _capture_env()
    for key in saved:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)
    try:
        yield
    finally:
        for key in _capture_env():
            if key not in saved:
                del os.environ[key]
        os.environ.update(saved)


def _run_once(runner: Callable[[], None], manifest: dict) -> dict:
    """Execute *runner* with the manifest's arming; returns the
    observed run (outcome, events, boots, checkpoints, topology)."""
    from repro.inject.injector import cancel_injection, request_injection
    from repro.rr import recorder as _rr
    from repro.rr.recording import decode_plan
    from repro.trace import tracer as _trace
    from repro.trace.tracer import cancel_tracing, request_tracing

    plans = [decode_plan(row) for row in manifest.get("plans", [])]
    if plans:
        request_injection(plans, seed=manifest.get("inject_seed") or 0)
    request_tracing(kinds=manifest.get("kinds"),
                    capacity=manifest.get("capacity", RECORD_CAPACITY))
    _rr.request_recording(interval=manifest.get("interval"))
    outcome, detail, captured = "clean", "", io.StringIO()
    try:
        with _applied_env(manifest.get("env", {})):
            try:
                with contextlib.redirect_stdout(captured):
                    runner()
            except SystemExit as status:
                if status.code not in (None, 0):
                    outcome = "workload-failure"
                    detail = f"exit status {status.code}"
            except (SimulationError, AssertionError) as error:
                outcome = "workload-failure"
                detail = f"{type(error).__name__}: {error}"
            except Exception as error:  # noqa: BLE001 - oracle duty
                outcome = "kernel-death"
                detail = f"{type(error).__name__}: {error}"
    finally:
        tracer = _trace.TRACER
        events = [pack_event(event) for event in tracer.events()] \
            if tracer.enabled else []
        emitted = tracer.emitted if tracer.enabled else 0
        dropped = tracer.dropped if tracer.enabled else 0
        boots = []
        checkpoints = []
        nodes, net_seed = 0, None
        for recorder in _rr.CAMPAIGN:
            clock = recorder.kernel.clock
            boots.append((clock.cycles,
                          [[name, clock.by_category[name]]
                           for name in sorted(clock.by_category)]))
            for state, cycle, cursor, boot in recorder.checkpoints:
                checkpoints.append(Checkpoint(
                    boot=boot, cycle=cycle, cursor=cursor,
                    digest=state_digest(state), state=state))
            if recorder.cluster is not None:
                nodes = max(nodes, recorder.cluster.nnodes)
                net_seed = recorder.cluster.seed
        checkpoints.sort(key=lambda cp: (cp.boot, cp.cycle))
        _rr.cancel_recording()
        if plans:
            cancel_injection()
        cancel_tracing()
    return {
        "outcome": outcome, "detail": detail, "output":
        captured.getvalue(), "events": events, "emitted": emitted,
        "dropped": dropped, "boots": boots, "checkpoints": checkpoints,
        "nodes": nodes, "net_seed": net_seed,
    }


def _script_runner(script: str, argv: Sequence[str]):
    def run() -> None:
        saved_argv = sys.argv
        sys.argv = [script] + list(argv)
        try:
            runpy.run_path(script, run_name="__main__")
        finally:
            sys.argv = saved_argv
    return run


# ---------------------------------------------------------------------------
# record
# ---------------------------------------------------------------------------

def _record(runner: Callable[[], None], manifest: dict) -> Recording:
    observed = _run_once(runner, manifest)
    manifest = dict(manifest)
    manifest["nodes"] = observed["nodes"]
    manifest["net_seed"] = observed["net_seed"]
    return Recording(
        manifest=manifest,
        boots=observed["boots"],
        events=observed["events"],
        checkpoints=observed["checkpoints"],
        emitted=observed["emitted"],
        dropped=observed["dropped"],
        outcome=observed["outcome"],
    )


def _build_manifest(script, argv, interval, plans, inject_seed,
                    kinds, capacity) -> dict:
    return {
        "script": script,
        "argv": list(argv),
        "env": _capture_env(),
        "plans": [encode_plan(plan) for plan in plans],
        "inject_seed": inject_seed,
        "nodes": 0,
        "net_seed": None,
        "interval": interval,
        "kinds": list(kinds) if kinds is not None else None,
        "capacity": capacity,
    }


def record_script(script: str, argv: Sequence[str] = (), *,
                  interval: Optional[int] = None,
                  plans: Sequence = (), inject_seed: int = 0,
                  kinds=DEFAULT_KINDS,
                  capacity: int = RECORD_CAPACITY) -> Recording:
    """Record one run of *script* (the ``reprorr record`` path)."""
    from repro.rr.recorder import DEFAULT_INTERVAL

    manifest = _build_manifest(script, argv,
                               DEFAULT_INTERVAL if interval is None
                               else interval,
                               plans, inject_seed, kinds, capacity)
    return _record(_script_runner(script, argv), manifest)


def record_call(workload: Callable[[], None], *,
                interval: Optional[int] = None,
                plans: Sequence = (), inject_seed: int = 0,
                kinds=DEFAULT_KINDS,
                capacity: int = RECORD_CAPACITY) -> Recording:
    """Record one run of an inline *workload* callable."""
    from repro.rr.recorder import DEFAULT_INTERVAL

    manifest = _build_manifest(None, (),
                               DEFAULT_INTERVAL if interval is None
                               else interval,
                               plans, inject_seed, kinds, capacity)
    return _record(workload, manifest)


# ---------------------------------------------------------------------------
# replay + divergence
# ---------------------------------------------------------------------------

def _compare(recording: Recording, observed: dict) -> ReplayReport:
    recorded_events = recording.events
    replayed_events = observed["events"]
    for index, (left, right) in enumerate(zip(recorded_events,
                                              replayed_events)):
        if left != right:
            return ReplayReport(Divergence(
                "event", index, min(left[1], right[1]), left, right),
                events_compared=index)
    if len(recorded_events) != len(replayed_events):
        index = min(len(recorded_events), len(replayed_events))
        longer = (recorded_events if len(recorded_events) > index
                  else replayed_events)
        return ReplayReport(Divergence(
            "event-count", index, longer[index][1],
            len(recorded_events), len(replayed_events),
            detail=f"next unmatched event: {longer[index]!r}"),
            events_compared=index)
    if (recording.emitted, recording.dropped) \
            != (observed["emitted"], observed["dropped"]):
        return ReplayReport(Divergence(
            "event-count", -1, -1,
            (recording.emitted, recording.dropped),
            (observed["emitted"], observed["dropped"]),
            detail="emitted/dropped totals differ"),
            events_compared=len(recorded_events))
    for index, (left, right) in enumerate(zip(recording.boots,
                                              observed["boots"])):
        if list(left[1]) != list(right[1]) or left[0] != right[0]:
            return ReplayReport(Divergence(
                "cycles", index, -1, left, right),
                events_compared=len(recorded_events),
                boots_compared=index)
    if len(recording.boots) != len(observed["boots"]):
        return ReplayReport(Divergence(
            "cycles", min(len(recording.boots),
                          len(observed["boots"])), -1,
            len(recording.boots), len(observed["boots"]),
            detail="boot counts differ"),
            events_compared=len(recorded_events))
    for index, (left, right) in enumerate(zip(recording.checkpoints,
                                              observed["checkpoints"])):
        if (left.cycle, left.cursor, left.boot) \
                != (right.cycle, right.cursor, right.boot):
            return ReplayReport(Divergence(
                "checkpoint", index, right.cycle,
                (left.cycle, left.cursor, left.boot),
                (right.cycle, right.cursor, right.boot)),
                events_compared=len(recorded_events),
                boots_compared=len(recording.boots),
                checkpoints_compared=index)
        if left.digest != right.digest:
            return ReplayReport(Divergence(
                "checkpoint", index, left.cycle,
                left.digest.hex()[:16], right.digest.hex()[:16],
                detail=diff_states(left.state, right.state) or ""),
                events_compared=len(recorded_events),
                boots_compared=len(recording.boots),
                checkpoints_compared=index)
    if len(recording.checkpoints) != len(observed["checkpoints"]):
        return ReplayReport(Divergence(
            "checkpoint", min(len(recording.checkpoints),
                              len(observed["checkpoints"])), -1,
            len(recording.checkpoints), len(observed["checkpoints"]),
            detail="checkpoint counts differ"),
            events_compared=len(recorded_events))
    if recording.outcome != observed["outcome"]:
        return ReplayReport(Divergence(
            "outcome", 0, -1, recording.outcome, observed["outcome"],
            detail=observed["detail"]),
            events_compared=len(recorded_events))
    return ReplayReport(None,
                        events_compared=len(recorded_events),
                        boots_compared=len(recording.boots),
                        checkpoints_compared=len(recording.checkpoints),
                        outcome=observed["outcome"])


def replay_script(recording: Recording,
                  script: Optional[str] = None) -> ReplayReport:
    """Replay a script recording and report the first divergence."""
    from repro.errors import RRError

    target = script or recording.manifest.get("script")
    if not target:
        raise RRError("recording has no script; use replay_call")
    runner = _script_runner(target,
                            recording.manifest.get("argv", []))
    return _compare(recording, _run_once(runner, recording.manifest))


def replay_call(recording: Recording,
                workload: Callable[[], None]) -> ReplayReport:
    """Replay a call recording against the same workload callable."""
    return _compare(recording, _run_once(workload, recording.manifest))


# ---------------------------------------------------------------------------
# seek
# ---------------------------------------------------------------------------

def _seek(recording: Recording, cycle: int,
          observed: dict) -> SeekResult:
    checkpoint = recording.nearest_checkpoint(cycle)
    digest_ok = True
    if checkpoint is not None:
        digest_ok = False
        for replayed in observed["checkpoints"]:
            if (replayed.cycle, replayed.boot) \
                    == (checkpoint.cycle, checkpoint.boot):
                digest_ok = replayed.digest == checkpoint.digest
                break
    recorded_suffix = [event for event in recording.events
                       if event[1] >= cycle]
    replayed_suffix = [event for event in observed["events"]
                       if event[1] >= cycle]
    return SeekResult(
        target_cycle=cycle,
        checkpoint_cycle=(checkpoint.cycle if checkpoint is not None
                          else None),
        digest_ok=digest_ok,
        suffix_identical=recorded_suffix == replayed_suffix,
        events=replayed_suffix,
        outcome=observed["outcome"],
    )


def seek_script(recording: Recording, cycle: int,
                script: Optional[str] = None) -> SeekResult:
    """Re-execute to *cycle* and verify the restored state: the
    nearest checkpoint's digest must match and the trace from *cycle*
    onward must be bit-identical to the recording. Re-execution runs
    from boot (deterministically equivalent to restoring the
    checkpoint); :func:`repro.rr.checkpoint.materialize` is the true
    state-restore fast path for machine-pure workloads."""
    from repro.errors import RRError

    target = script or recording.manifest.get("script")
    if not target:
        raise RRError("recording has no script; use seek_call")
    runner = _script_runner(target,
                            recording.manifest.get("argv", []))
    return _seek(recording, cycle,
                 _run_once(runner, recording.manifest))


def seek_call(recording: Recording, cycle: int,
              workload: Callable[[], None]) -> SeekResult:
    return _seek(recording, cycle, _run_once(workload,
                                             recording.manifest))
