"""Ambient recording: the arming surface ``reprorr`` uses.

Mirrors the :mod:`repro.trace` / :mod:`repro.inject` pattern exactly:
:func:`request_recording` arms a pending configuration,
``Kernel.__init__`` consumes it by calling :func:`attach_kernel` (one
:class:`Recorder` per boot, collected in :data:`CAMPAIGN`), and
:func:`cancel_recording` disarms. ``Cluster`` additionally calls
:func:`attach_cluster` per member and :func:`on_cluster_round` per
scheduler round, so clustered machines checkpoint at round boundaries
— a globally consistent cut — instead of mid-round per-kernel clock
crossings.

Pay-for-use: with nothing armed, the only costs are one ``is None``
check per boot, one integer comparison per :meth:`Clock.charge
<repro.kernel.timing.Clock.charge>`, and one empty-list check per
cluster round. A fault-free plain boot stays pinned at its recorded
cycle total with recording off (the E11 benchmark asserts this).
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.timing import CHECKPOINT_NEVER

#: Default cycles between checkpoints when recording is armed.
DEFAULT_INTERVAL = 1_000_000

# Configuration captured by request_recording(), consumed per boot.
_PENDING: Optional[dict] = None

#: One Recorder per kernel booted while armed (attach order).
CAMPAIGN: List["Recorder"] = []


class Recorder:
    """Checkpoint collection for one booted kernel."""

    def __init__(self, kernel, interval: Optional[int]) -> None:
        self.kernel = kernel
        self.interval = interval
        self.checkpoints: List[tuple] = []  # (state, cycle, cursor, boot)
        self.cluster = None
        if interval:
            kernel.clock.on_checkpoint = self._on_clock
            kernel.clock.checkpoint_at = kernel.clock.cycles + interval

    # -- single-machine path ---------------------------------------------

    def _on_clock(self, clock) -> None:
        # Clustered members checkpoint at round boundaries instead;
        # leave the clock hook disarmed once the NIC is attached.
        if self.cluster is not None:
            return
        self.take_checkpoint()
        clock.checkpoint_at = clock.cycles + self.interval

    def take_checkpoint(self) -> None:
        """Capture this machine now (also the explicit-sync entry)."""
        from repro.rr.checkpoint import capture_machine

        self._store(capture_machine(self.kernel),
                    self.kernel.clock.cycles)

    # -- cluster path ----------------------------------------------------

    def attach_cluster(self, cluster) -> None:
        self.cluster = cluster
        self.kernel.clock.checkpoint_at = CHECKPOINT_NEVER

    def cluster_due(self) -> bool:
        return bool(self.interval) \
            and self.kernel.clock.cycles >= self._next_due

    def take_cluster_checkpoint(self) -> None:
        from repro.rr.checkpoint import capture_cluster

        self._store(capture_cluster(self.cluster),
                    self.kernel.clock.cycles)

    # -- shared ----------------------------------------------------------

    @property
    def _next_due(self) -> int:
        if not self.checkpoints:
            return self.interval or CHECKPOINT_NEVER
        return self.checkpoints[-1][1] + (self.interval
                                          or CHECKPOINT_NEVER)

    def _store(self, state: list, cycle: int) -> None:
        from repro.trace import tracer as _trace

        tracer = _trace.TRACER
        cursor = tracer.cursor() if tracer.enabled else 0
        boot = tracer.boot_index if tracer.enabled else 0
        self.checkpoints.append((state, cycle, cursor, boot))


def recording_active() -> bool:
    """Is a recording request currently armed?"""
    return _PENDING is not None


def request_recording(interval: Optional[int] = DEFAULT_INTERVAL) -> None:
    """Arm recording for every kernel booted until
    :func:`cancel_recording`. *interval* is the cycle spacing between
    checkpoints (None or 0 records the manifest and trace only)."""
    global _PENDING
    _PENDING = {"interval": interval}
    CAMPAIGN.clear()


def cancel_recording() -> None:
    """Disarm :func:`request_recording` (campaign data survives for
    the caller to package into a Recording)."""
    global _PENDING
    _PENDING = None


def attach_kernel(kernel) -> None:
    """Called from ``Kernel.__init__``: honour an armed request."""
    if _PENDING is None:
        return
    CAMPAIGN.append(Recorder(kernel, _PENDING["interval"]))


def attach_cluster(cluster, kernel) -> None:
    """Called from ``Cluster._attach`` for each member kernel: switch
    its recorder (if any) to round-boundary checkpointing."""
    for recorder in CAMPAIGN:
        if recorder.kernel is kernel:
            recorder.attach_cluster(cluster)


def on_cluster_round(cluster) -> None:
    """Called from ``Cluster.step`` after the per-machine slices: take
    one cluster-wide checkpoint when the lead member's clock crosses
    its interval. Node 0's recorder owns the cluster capture so one
    crossing yields one checkpoint, not N."""
    for recorder in CAMPAIGN:
        if recorder.cluster is cluster:
            if recorder.cluster_due():
                recorder.take_cluster_checkpoint()
            return
