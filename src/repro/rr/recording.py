"""The ``.rrr`` recording container.

A recording is everything needed to re-create a run bit-for-bit and to
check that the re-creation *was* bit-for-bit:

* **manifest** — the run's inputs: script path and argv, the
  ``REPRO_*`` environment, the armed fault plans and injection seed,
  the observed cluster topology, the checkpoint interval, and the
  tracer configuration;
* **boots** — one record per kernel booted during the run (chaos
  crash/recovery cycles boot several), with final total cycles and the
  sorted per-category breakdown;
* **events** — the full :mod:`repro.trace` stream, packed as plain
  field tuples (the divergence oracle's primary evidence);
* **checkpoints** — periodic full-machine state trees from
  :mod:`repro.rr.checkpoint`, each with its cycle, tracer cursor, and
  content digest.

The on-disk format mirrors :meth:`repro.disk.BlockDevice.save`: a
magic header, then the zlib-compressed TLV encoding of the payload
(:mod:`repro.disk.codec`), so identical runs produce identical files.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.disk.codec import decode_fields, encode_fields
from repro.errors import DiskFormatError, RRError
from repro.inject.plan import FaultKind, FaultPlan, Plane

RECORDING_VERSION = 1
_MAGIC = b"HMLKRRR1"

#: Default ring capacity while recording: large enough that the full
#: event stream of every example survives for the oracle to diff.
RECORD_CAPACITY = 1 << 20


def pack_event(event) -> list:
    """One trace event as a codec-encodable field list (stable order,
    matching :meth:`repro.trace.events.Event.to_dict`)."""
    return [int(event.kind), event.cycle, event.pid, event.addr,
            event.name, event.value, event.dur, event.boot]


def encode_plan(plan: FaultPlan) -> list:
    """A fault plan as constructor fields (floats go through ``repr``
    — the codec is int/str/bytes only and ``repr`` round-trips)."""
    return [plan.plane.value, plan.kind.value, plan.match, plan.site,
            plan.pid, repr(plan.probability), plan.max_faults,
            plan.after, plan.errno, int(plan.transient)]


def decode_plan(record: list) -> FaultPlan:
    try:
        (plane, kind, match, site, pid, probability, max_faults, after,
         errno, transient) = record
        return FaultPlan(plane=Plane.parse(plane), kind=FaultKind(kind),
                         match=match, site=site, pid=pid,
                         probability=float(probability),
                         max_faults=max_faults, after=after, errno=errno,
                         transient=bool(transient))
    except (ValueError, TypeError, KeyError) as error:
        raise RRError(f"malformed fault plan in recording: {error}")


@dataclass
class Checkpoint:
    """One captured machine (or cluster) state."""

    boot: int           # tracer boot index the capture belongs to
    cycle: int          # clock cycles at capture time
    cursor: int         # tracer sequence cursor at capture time
    digest: bytes       # sha256 over the encoded state tree
    state: list         # the state tree itself (codec-encodable)

    def to_fields(self) -> list:
        return [self.boot, self.cycle, self.cursor, self.digest,
                self.state]

    @classmethod
    def from_fields(cls, row: list) -> "Checkpoint":
        try:
            boot, cycle, cursor, digest, state = row
        except ValueError:
            raise RRError("malformed checkpoint row in recording")
        return cls(boot=boot, cycle=cycle, cursor=cursor, digest=digest,
                   state=state)


@dataclass
class Recording:
    """An in-memory recording (see the module docstring for layout)."""

    manifest: Dict[str, object] = field(default_factory=dict)
    boots: List[Tuple[int, List[list]]] = field(default_factory=list)
    events: List[list] = field(default_factory=list)
    checkpoints: List[Checkpoint] = field(default_factory=list)
    emitted: int = 0    # total events accepted by the tracer
    dropped: int = 0    # events lost to ring overflow (0 normally)
    outcome: str = ""   # clean | workload-failure | kernel-death

    # -- manifest conveniences -------------------------------------------

    @property
    def plans(self) -> List[FaultPlan]:
        return [decode_plan(row) for row in
                self.manifest.get("plans", [])]

    @property
    def interval(self) -> Optional[int]:
        return self.manifest.get("interval")

    def nearest_checkpoint(self, cycle: int) -> Optional[Checkpoint]:
        """The latest checkpoint at or before *cycle* (in the last
        recorded boot), or None if the run must replay from boot."""
        best = None
        for checkpoint in self.checkpoints:
            if checkpoint.cycle <= cycle \
                    and (best is None or checkpoint.cycle > best.cycle):
                best = checkpoint
        return best

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        manifest = self.manifest
        payload = encode_fields([
            RECORDING_VERSION,
            [
                manifest.get("script"),
                list(manifest.get("argv", [])),
                [[key, value] for key, value
                 in sorted(manifest.get("env", {}).items())],
                [list(row) for row in manifest.get("plans", [])],
                manifest.get("inject_seed"),
                manifest.get("nodes", 0),
                manifest.get("net_seed"),
                manifest.get("interval"),
                (None if manifest.get("kinds") is None
                 else [str(kind) for kind in manifest["kinds"]]),
                manifest.get("capacity", RECORD_CAPACITY),
            ],
            [[cycles, categories] for cycles, categories in self.boots],
            self.events,
            [checkpoint.to_fields() for checkpoint in self.checkpoints],
            self.emitted,
            self.dropped,
            self.outcome,
        ])
        return _MAGIC + zlib.compress(payload, level=6)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Recording":
        if blob[:len(_MAGIC)] != _MAGIC:
            raise RRError("not a reprorr recording (bad magic)")
        try:
            payload = zlib.decompress(blob[len(_MAGIC):])
            fields = decode_fields(payload)
            (version, manifest_row, boots, events, checkpoints, emitted,
             dropped, outcome) = fields
            (script, argv, env, plans, inject_seed, nodes, net_seed,
             interval, kinds, capacity) = manifest_row
        except (zlib.error, DiskFormatError, ValueError) as error:
            raise RRError(f"undecodable recording: {error}")
        if version != RECORDING_VERSION:
            raise RRError(f"unsupported recording version {version}")
        recording = cls(
            manifest={
                "script": script,
                "argv": list(argv),
                "env": {key: value for key, value in env},
                "plans": plans,
                "inject_seed": inject_seed,
                "nodes": nodes,
                "net_seed": net_seed,
                "interval": interval,
                "kinds": kinds,
                "capacity": capacity,
            },
            boots=[(cycles, categories) for cycles, categories in boots],
            events=events,
            checkpoints=[Checkpoint.from_fields(row)
                         for row in checkpoints],
            emitted=emitted,
            dropped=dropped,
            outcome=outcome,
        )
        return recording

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "Recording":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    def describe(self) -> str:
        """Human-readable summary (the ``reprorr info`` output)."""
        manifest = self.manifest
        lines = [
            f"script:      {manifest.get('script') or '<call>'}",
            f"argv:        {' '.join(manifest.get('argv', [])) or '-'}",
            f"plans:       {len(manifest.get('plans', []))} "
            f"(seed {manifest.get('inject_seed')})",
            f"cluster:     "
            f"{manifest.get('nodes') or 0} node(s)"
            + (f", seed {manifest.get('net_seed')}"
               if manifest.get("net_seed") is not None else ""),
            f"interval:    {manifest.get('interval') or 'off'}",
            f"boots:       {len(self.boots)}",
            f"events:      {len(self.events)} retained "
            f"({self.emitted} emitted, {self.dropped} dropped)",
            f"checkpoints: {len(self.checkpoints)}"
            + ("".join(f"\n  @cycle {cp.cycle} (boot {cp.boot}, "
                       f"cursor {cp.cursor}, "
                       f"digest {cp.digest.hex()[:16]})"
                       for cp in self.checkpoints)),
            f"outcome:     {self.outcome or '-'}",
        ]
        for cycles, categories in self.boots:
            lines.append(f"  boot: {cycles} cycles, "
                         + " ".join(f"{name}={value}"
                                    for name, value in categories))
        return "\n".join(lines)
