"""The Hemlock run-time library — the simulation's user-level C library.

* :mod:`libshared` — the SIGSEGV handler that implements lazy linking
  and pointer chasing, the wrapped ``signal()`` call, and the per-process
  runtime object that ties crt0, ldl, and the handler together;
* :mod:`shmalloc` — the per-segment heap allocator (§5 "Dynamic Storage
  Management"): space is allocated "from the heaps associated with
  individual segments, instead of a heap associated with the calling
  program", so heap state lives *in* the segment and is valid in every
  process;
* :mod:`views` — typed records, pointers, and strings over simulated
  memory, the stand-in for compiled C structure access; every load and
  store runs under the fault-handling machinery, so following a pointer
  into a not-yet-mapped segment transparently maps it.
"""

from repro.runtime.libshared import HemlockRuntime, attach_runtime
from repro.runtime.shmalloc import ArenaHeap, SegmentHeap
from repro.runtime.views import Mem, StructDef, StructView

__all__ = [
    "HemlockRuntime",
    "attach_runtime",
    "ArenaHeap",
    "SegmentHeap",
    "Mem",
    "StructDef",
    "StructView",
]
