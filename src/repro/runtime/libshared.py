"""libshared — the user-level half of Hemlock (§2).

The SIGSEGV handler here "serves two purposes: it cooperates with ldl to
implement lazy linking, and it allows the process to follow pointers
into segments that may or may not yet be mapped. When triggered, the
handler checks to see if the faulting address lies in the shared portion
of the process's address space. If so, it uses a (new) kernel call to
translate the address into a path name and, access rights permitting,
maps the named segment into the process's address space. If the address
lies in a module that has been set up for lazy linking, the handler
invokes ldl ... Otherwise, the handler opens and maps the file. It then
restarts the faulting instruction."

The runtime also wraps ``signal()``: a program-provided SIGSEGV handler
is invoked only when the dynamic linking system's handler cannot resolve
a fault.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import (
    FilesystemError,
    InjectedFaultError,
    SimulationError,
    SyscallError,
)
from repro.fs.vfs import O_CREAT, O_EXCL, O_RDONLY, O_RDWR, O_WRONLY
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, SignalHandler
from repro.kernel.signals import SigInfo, Signal
from repro.linker.jumptable import (
    patched_plt_entry,
    plt_entry_base,
    plt_symbol_at,
)
from repro.linker.ldl import LDL_MAX_RETRIES, Ldl
from repro.linker.segments import read_segment_meta
from repro.objfile.format import ObjectFile
from repro.runtime.views import Mem
from repro.sfs.sharedfs import MAX_FILE_SIZE
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.util.bits import align_up
from repro.vm.address_space import MAP_SHARED, PROT_RWX, PROT_RX
from repro.vm.faults import AccessKind
from repro.vm.layout import PAGE_SIZE


class HemlockRuntime:
    """Per-process runtime state: ldl + fault handler + library calls."""

    # Machine-code signal handlers return here; the address is never
    # mapped, so control transfer to it marks handler completion.
    HANDLER_RETURN_SENTINEL = 0x7FFE0000
    HANDLER_INSTRUCTION_BUDGET = 200_000

    def __init__(self, kernel: Kernel, proc: Process,
                 lazy: bool = True, scoped: bool = True,
                 verify: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.proc = proc
        self.ldl = Ldl(kernel, proc, lazy=lazy, scoped=scoped,
                       verify=verify)
        self.mem = Mem(kernel, proc)
        self.executable: Optional[ObjectFile] = None
        self.segments_mapped = 0
        proc.runtime = self
        proc.push_handler(Signal.SIGSEGV, self._segv_handler)
        if proc.cpu is not None:
            # Machine programs may register their own handler through
            # the wrapped signal() call (SYS_SIGNAL); it runs after the
            # dynamic linking system's handler declines (§2).
            proc.append_handler(Signal.SIGSEGV,
                                self._machine_program_handler)

    # ------------------------------------------------------------------
    # crt0-time start-up
    # ------------------------------------------------------------------

    def start(self, executable: ObjectFile) -> None:
        """The special crt0's pre-main work: run ldl."""
        self.executable = executable
        self.ldl.bootstrap(executable)

    def start_native(self, search_dirs: Optional[list] = None,
                     modules: Optional[list] = None) -> None:
        """Bootstrap for a native process (no machine image): builds a
        synthetic root whose scope is *search_dirs* + *modules*, so the
        process can link in dynamic modules and resolve symbols."""
        from repro.objfile.format import ObjectKind

        root = ObjectFile(f"{self.proc.name}:root", ObjectKind.EXECUTABLE)
        root.link_info.search_path = list(search_dirs or [])
        root.link_info.dynamic_modules = list(modules or [])
        self.start(root)

    def _ensure_root(self) -> None:
        if self.ldl.root is None:
            self.start_native()

    # ------------------------------------------------------------------
    # the SIGSEGV handler
    # ------------------------------------------------------------------

    def _segv_handler(self, proc: Process, info: SigInfo) -> bool:
        # A module set up for lazy linking? (private or public portion)
        try:
            if self.ldl.handle_fault(info.address):
                return True
        except InjectedFaultError as error:
            # The fault stops at the handler boundary: the victim's
            # fault stays unresolved (and kills the victim), but the
            # kernel and every other process are untouched.
            self._contain(error, "segv-handler")
            return False
        # On a clustered machine the coherence agent gets first claim on
        # public faults: it resolves remote segments and write-upgrades
        # of read-only replicas (present=True faults the classic path
        # below would refuse). None = not cluster-managed, fall through.
        coherence = self.kernel.coherence
        if coherence is not None \
                and self.kernel.is_public_address(info.address):
            handled = coherence.on_fault(proc, info)
            if handled is not None:
                return handled
        # A pointer into a shared segment not yet part of this address
        # space? Translate address -> path and map, rights permitting.
        if self.kernel.is_public_address(info.address) \
                and not info.present:
            return self._map_segment_at(info.address, info)
        return False

    def _contain(self, error: InjectedFaultError, where: str) -> None:
        self.kernel.note_contained(error, where)
        # Remembered so the victim's terminate reason names the real
        # cause instead of a bare "unresolved fault".
        self.proc.pending_fault_error = error

    def _map_segment_at(self, address: int, info: SigInfo) -> bool:
        attempt = 0
        while True:
            try:
                return self._map_segment_once(address, info)
            except InjectedFaultError as error:
                if error.transient and attempt < LDL_MAX_RETRIES:
                    attempt += 1
                    self.ldl.stats.transient_retries += 1
                    self.kernel.clock.backoff(attempt)
                    injector = self.kernel.injector
                    if injector is not None:
                        injector.note_retry()
                    continue
                self._contain(error, "segment-map")
                return False
            except SimulationError:
                return False

    def _map_segment_once(self, address: int, info: SigInfo) -> bool:
        sys = self.kernel.syscalls
        path, _offset = sys.addr_to_path(self.proc, address)

        # Is it a linked module segment? Then bring it in through ldl so
        # its symbols and pending relocations are honoured.
        try:
            read_segment_meta(self.kernel, self.proc, path)
            is_module = True
        except InjectedFaultError:
            raise
        except SimulationError:
            is_module = False
        if is_module:
            self._ensure_root()
            assert self.ldl.root is not None
            module = self.ldl.ensure_module_from_path(path,
                                                      self.ldl.root)
            self.ldl.link_module(module)
            self.segments_mapped += 1
            return True
        return self._map_plain_segment(path, info)

    def _map_plain_segment(self, path: str, info: SigInfo) -> bool:
        """Open and map a non-module segment file at its address."""
        sys = self.kernel.syscalls
        want_write = info.access is AccessKind.WRITE
        try:
            fd = sys.open(self.proc, path, O_RDWR)
            prot = PROT_RWX
        except (SyscallError, FilesystemError) as error:
            if getattr(error, "transient", False):
                raise  # let _map_segment_at retry with backoff
            if want_write:
                return False  # no write rights: the fault stands
            try:
                fd = sys.open(self.proc, path, O_RDONLY)
            except (SyscallError, FilesystemError) as error:
                if getattr(error, "transient", False):
                    raise
                return False
            prot = PROT_RX
        try:
            info_stat = sys.fstat(self.proc, fd)
            base = sys.path_to_addr(self.proc, path)
            length = align_up(max(info_stat.st_size, 1), PAGE_SIZE)
            sys.mmap(self.proc, base, length, prot, MAP_SHARED, fd,
                     name=path)
            self.segments_mapped += 1
            return True
        finally:
            sys.close(self.proc, fd)

    # ------------------------------------------------------------------
    # machine-code program handlers (registered via SYS_SIGNAL)
    # ------------------------------------------------------------------

    def _machine_program_handler(self, proc: Process,
                                 info: SigInfo) -> bool:
        """Run a program-registered machine-code SIGSEGV handler.

        The handler executes on the process's own CPU with the faulting
        address in ``a0`` and a sentinel return address in ``ra``; it
        reports resolution through ``v0`` (non-zero = retry the faulting
        instruction). Registers are saved and restored around the call,
        the way a real signal trampoline's sigcontext would.
        """
        handler_pc = getattr(proc, "machine_sig_handler", 0)
        cpu = proc.cpu
        if not handler_pc or cpu is None:
            return False
        from repro.hw import isa
        from repro.hw.cpu import Trap
        from repro.vm.faults import PageFaultError

        saved_regs = cpu.snapshot_regs()
        saved_pc = cpu.pc
        cpu.set_reg(isa.REG_A0, info.address)
        cpu.set_reg(isa.REG_RA, self.HANDLER_RETURN_SENTINEL)
        cpu.pc = handler_pc
        resolved = False
        try:
            for _ in range(self.HANDLER_INSTRUCTION_BUDGET):
                if cpu.pc == self.HANDLER_RETURN_SENTINEL:
                    resolved = cpu.regs[isa.REG_V0] != 0
                    break
                try:
                    cpu.step()
                except SyscallError:
                    break  # a failing syscall aborts the handler
                except Trap as trap:
                    from repro.hw.cpu import SyscallTrap

                    if isinstance(trap, SyscallTrap):
                        self.kernel.syscalls.dispatch_machine(proc)
                        if not proc.alive:
                            return False
                    else:
                        break
                except PageFaultError:
                    break  # a faulting handler cannot resolve anything
        finally:
            cpu.restore_regs(saved_regs)
            cpu.pc = saved_pc
        return resolved

    # ------------------------------------------------------------------
    # the wrapped signal() call
    # ------------------------------------------------------------------

    def signal(self, handler: SignalHandler) -> None:
        """Install a program-provided SIGSEGV handler.

        "When the dynamic linking system's fault handler is unable to
        resolve a fault, a program-provided handler for SIGSEGV is
        invoked, if one exists."
        """
        self.proc.append_handler(Signal.SIGSEGV, handler)

    # ------------------------------------------------------------------
    # segment library calls for applications
    # ------------------------------------------------------------------

    def create_segment(self, path: str, size: int,
                       exclusive: bool = True,
                       reservation: Optional[int] = None) -> int:
        """Create a shared segment file of *size* bytes; returns its
        globally agreed base address. The segment is NOT mapped — the
        first touch maps it via the fault handler.

        On a 64-bit kernel, *reservation* sets how much address space
        the segment may grow into (default 16 MiB); on the 32-bit
        prototype every segment gets the fixed 1 MiB slot and larger
        requests are rejected, per the paper's limits.
        """
        if not self.kernel.wide_addresses and size > MAX_FILE_SIZE:
            raise SyscallError("EFBIG", f"segment larger than "
                                        f"{MAX_FILE_SIZE} bytes")
        sys = self.kernel.syscalls
        flags = O_WRONLY | O_CREAT | (O_EXCL if exclusive else 0)
        if self.kernel.wide_addresses:
            span = max(reservation or 0, size)
            context = self.kernel.sfs.reserving(span) if span \
                else _null_context()
        else:
            context = _null_context()
        with context:
            fd = sys.open(self.proc, path, flags)
        try:
            sys.ftruncate(self.proc, fd, size)
            base = self.kernel.sfs.address_of_inode(
                sys.fstat(self.proc, fd).st_ino
            )
            sanitizer = self.kernel.sanitizer
            if sanitizer is not None:
                sanitizer.segment_created(self.kernel, self.proc, base)
            return base
        finally:
            sys.close(self.proc, fd)

    def segment_base(self, path: str) -> int:
        """Base address of an existing segment.

        On a clustered machine a path that does not resolve locally is
        looked up in the cluster directory, so a process can take the
        base of a segment published by another node and let the first
        touch fetch it."""
        try:
            return self.kernel.syscalls.path_to_addr(self.proc, path)
        except (SyscallError, FilesystemError):
            coherence = self.kernel.coherence
            if coherence is not None:
                from repro.fs.path import normalize

                base = coherence.lookup_path(
                    normalize(path, self.proc.cwd))
                if base is not None:
                    return base
            raise

    def delete_segment(self, path: str) -> None:
        """Explicit destruction (manual cleanup, §5 Garbage Collection).

        Any mapping in this process is removed first.
        """
        sys = self.kernel.syscalls
        base = None
        try:
            base = sys.path_to_addr(self.proc, path)
            mapping = self.proc.address_space.mapping_at(base)
            if mapping is not None:
                sys.munmap(self.proc, mapping.start,
                           mapping.end - mapping.start)
        except SyscallError:
            pass
        from repro.fs.path import normalize

        normalized = normalize(path, self.proc.cwd)
        self.ldl.forget(normalized)
        sys.unlink(self.proc, path)
        sanitizer = self.kernel.sanitizer
        if sanitizer is not None and base is not None:
            sanitizer.segment_closed(self.kernel, self.proc, base,
                                     normalized)

    def resolve_symbol(self, name: str) -> Optional[int]:
        """Language-level name -> address, through the linking DAG."""
        self._ensure_root()
        assert self.ldl.root is not None
        return self.ldl.scoped_resolve(self.ldl.root, name)

    # ------------------------------------------------------------------
    # the explicit dld / dlopen-style interface (§3)
    # ------------------------------------------------------------------
    #
    # "Several dynamic linkers, including the Free Software Foundation's
    # dld and those of SunOS and SVR4, provide library routines that
    # allow the user to link object modules into a running program."
    # Hemlock subsumes this style, but provides it for comparison: like
    # dld, dlopen resolves the new module's undefined references
    # (allowing them to point into the main program or other loaded
    # modules); like both, it does NOT resolve undefined references in
    # the main program — it "simply returns pointers to the
    # newly-available symbols" through dlsym.

    def dlopen(self, path: str, lazy: bool = False):
        """Explicitly link the module at *path* into this program.

        Returns an opaque module handle. With ``lazy=False`` (the
        dld/dlopen default) the module is fully linked immediately.
        """
        self._ensure_root()
        assert self.ldl.root is not None
        module = self.ldl.ensure_module_from_path(path, self.ldl.root)
        if not lazy:
            self.ldl.link_module(module)
        return module

    def dlsym(self, handle, name: str) -> Optional[int]:
        """Pointer to symbol *name* in the dlopen'ed *handle*, or None.

        Unlike Hemlock's transparent linking, the caller gets a raw
        pointer and must do its own indirection — the loss of
        "language-level naming, type checking, and scope rules" §3
        attributes to pointer-returning interfaces.
        """
        return handle.exports().get(name)

    # ------------------------------------------------------------------
    # jump-table (PLT) resolution — the SunOS-style baseline
    # ------------------------------------------------------------------

    def plt_resolve(self, trap_pc: int) -> int:
        """Resolve the PLT entry containing *trap_pc*; returns the entry
        base the CPU should restart at."""
        if self.executable is None:
            raise SimulationError("PLT resolve before runtime start")
        symbol = plt_symbol_at(self.executable, trap_pc)
        base = plt_entry_base(self.executable, trap_pc)
        assert self.ldl.root is not None
        target = self.ldl.scoped_resolve(self.ldl.root, symbol)
        if target is None:
            raise SimulationError(
                f"PLT: symbol {symbol!r} is undefined at the root"
            )
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.LINK_RESOLVE, name=symbol,
                        pid=self.proc.pid, addr=target)
        self.proc.address_space.write_bytes(base, patched_plt_entry(target),
                                            force=True)
        return base


def _null_context():
    class _Null:
        def __enter__(self):
            return None

        def __exit__(self, *exc):
            return None

    return _Null()


def attach_runtime(kernel: Kernel, lazy: bool = True,
                   scoped: bool = True,
                   verify: Optional[bool] = None) -> None:
    """Register the runtime with *kernel* so every exec'd machine
    program gets crt0/ldl behaviour automatically.

    *verify* arms ldl's reprolint gate (None = the REPRO_LINT env)."""

    def on_exec(proc: Process, image: ObjectFile) -> None:
        runtime = HemlockRuntime(kernel, proc, lazy=lazy, scoped=scoped,
                                 verify=verify)
        runtime.start(image)

    kernel.on_exec = on_exec


def runtime_for(kernel: Kernel, proc: Process,
                lazy: bool = True) -> HemlockRuntime:
    """The process's runtime, creating one for native processes that
    have not exec'd a machine image."""
    if isinstance(proc.runtime, HemlockRuntime):
        return proc.runtime
    return HemlockRuntime(kernel, proc, lazy=lazy)
