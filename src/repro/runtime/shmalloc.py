"""shmalloc — per-segment heap allocation (§5 "Dynamic Storage Management").

"We have developed a package designed to allocate space from the heaps
associated with individual segments, instead of a heap associated with
the calling program."

All allocator state (free list, block headers) lives inside the segment
itself, expressed as absolute virtual addresses — so any process mapping
the segment can allocate and free from the same heap, and the heap
survives across process lifetimes along with its segment.

Layout::

    heap_base: [magic u32][free_head u32]        8-byte heap header
    block:     [size u32 | used bit][next u32]   8-byte block header
               [payload ...]

Sizes are multiples of 8, so bit 0 of the size word marks "in use".
Free blocks are kept on an address-ordered list and coalesced on free.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import SimulationError
from repro.runtime.views import Mem

HEAP_MAGIC = 0x48454D4C  # "HEML"
HEADER_SIZE = 8
BLOCK_HEADER = 8
MIN_BLOCK = 16
ALIGN = 8


class SegmentHeapError(SimulationError):
    """Heap corruption or exhaustion."""


class SegmentHeap:
    """A heap living at ``[base, base + size)`` inside a segment."""

    def __init__(self, mem: Mem, base: int, size: int) -> None:
        if size < HEADER_SIZE + MIN_BLOCK:
            raise SegmentHeapError(f"heap of {size} bytes is too small")
        self.mem = mem
        self.base = base
        self.size = size

    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Format the heap (done once, by whoever creates the segment)."""
        first = self.base + HEADER_SIZE
        self.mem.store_u32(self.base, HEAP_MAGIC)
        self.mem.store_u32(self.base + 4, first)
        self.mem.store_u32(first, (self.size - HEADER_SIZE) & ~1)
        self.mem.store_u32(first + 4, 0)

    def is_initialized(self) -> bool:
        return self.mem.load_u32(self.base) == HEAP_MAGIC

    def ensure_initialized(self) -> None:
        if not self.is_initialized():
            self.initialize()

    # ------------------------------------------------------------------

    def alloc(self, nbytes: int) -> int:
        """Allocate *nbytes*; returns the payload's absolute address."""
        self._check_magic()
        need = max(_round_up(nbytes) + BLOCK_HEADER, MIN_BLOCK)
        prev = self.base + 4            # address of the link we came from
        block = self.mem.load_u32(prev)
        while block:
            size = self.mem.load_u32(block) & ~1
            next_free = self.mem.load_u32(block + 4)
            if size >= need:
                remainder = size - need
                if remainder >= MIN_BLOCK:
                    # Split: tail stays free.
                    tail = block + need
                    self.mem.store_u32(tail, remainder)
                    self.mem.store_u32(tail + 4, next_free)
                    self.mem.store_u32(prev, tail)
                    self.mem.store_u32(block, need | 1)
                else:
                    self.mem.store_u32(prev, next_free)
                    self.mem.store_u32(block, size | 1)
                return block + BLOCK_HEADER
            prev = block + 4
            block = next_free
        raise SegmentHeapError(
            f"heap at 0x{self.base:08x} exhausted allocating {nbytes} bytes"
        )

    def free(self, payload: int) -> None:
        """Return an allocation to the heap, coalescing neighbours."""
        self._check_magic()
        block = payload - BLOCK_HEADER
        header = self.mem.load_u32(block)
        if not header & 1:
            raise SegmentHeapError(f"double free at 0x{payload:08x}")
        size = header & ~1
        # Insert into the address-ordered free list.
        prev = self.base + 4
        cursor = self.mem.load_u32(prev)
        while cursor and cursor < block:
            prev = cursor + 4
            cursor = self.mem.load_u32(prev)
        self.mem.store_u32(block, size)
        self.mem.store_u32(block + 4, cursor)
        self.mem.store_u32(prev, block)
        # Coalesce with the successor, then with the predecessor.
        if cursor and block + size == cursor:
            cursor_size = self.mem.load_u32(cursor) & ~1
            self.mem.store_u32(block, size + cursor_size)
            self.mem.store_u32(block + 4, self.mem.load_u32(cursor + 4))
        if prev != self.base + 4:
            prev_block = prev - 4
            prev_size = self.mem.load_u32(prev_block) & ~1
            if prev_block + prev_size == block:
                self.mem.store_u32(prev_block,
                                   prev_size + (self.mem.load_u32(block)
                                                & ~1))
                self.mem.store_u32(prev_block + 4,
                                   self.mem.load_u32(block + 4))

    # ------------------------------------------------------------------

    def free_bytes(self) -> int:
        """Total bytes on the free list (payload + header)."""
        return sum(size for _, size in self.free_blocks())

    def free_blocks(self) -> Iterator[Tuple[int, int]]:
        """(address, size) of each free block, address-ordered."""
        self._check_magic()
        block = self.mem.load_u32(self.base + 4)
        guard = 0
        while block:
            guard += 1
            if guard > 1_000_000:
                raise SegmentHeapError("free list cycle")
            size = self.mem.load_u32(block)
            if size & 1:
                raise SegmentHeapError(
                    f"used block 0x{block:08x} on the free list"
                )
            yield block, size
            block = self.mem.load_u32(block + 4)

    def check(self) -> None:
        """Validate free-list invariants (ordering, bounds, no overlap)."""
        last_end = self.base + HEADER_SIZE
        for block, size in self.free_blocks():
            if block < last_end - 1:
                raise SegmentHeapError("free list out of order or overlap")
            if block + size > self.base + self.size:
                raise SegmentHeapError("free block beyond heap end")
            last_end = block + size

    def _check_magic(self) -> None:
        if self.mem.load_u32(self.base) != HEAP_MAGIC:
            raise SegmentHeapError(
                f"no heap at 0x{self.base:08x} (bad magic)"
            )


def _round_up(nbytes: int) -> int:
    if nbytes <= 0:
        nbytes = 1
    return (nbytes + ALIGN - 1) & ~(ALIGN - 1)
