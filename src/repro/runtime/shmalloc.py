"""shmalloc — per-segment heap allocation (§5 "Dynamic Storage Management").

"We have developed a package designed to allocate space from the heaps
associated with individual segments, instead of a heap associated with
the calling program."

All allocator state (free list, block headers) lives inside the segment
itself, expressed as absolute virtual addresses — so any process mapping
the segment can allocate and free from the same heap, and the heap
survives across process lifetimes along with its segment.

Layout::

    heap_base: [magic u32][free_head u32]        8-byte heap header
    block:     [size u32 | used bit][next u32]   8-byte block header
               [payload ...]

Sizes are multiples of 8, so bit 0 of the size word marks "in use".
Free blocks are kept on an address-ordered list and coalesced on free.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import SimulationError
from repro.runtime.views import Mem
from repro.sanitize import state as _san_state

HEAP_MAGIC = 0x48454D4C  # "HEML"
HEADER_SIZE = 8
BLOCK_HEADER = 8
MIN_BLOCK = 16
ALIGN = 8


class SegmentHeapError(SimulationError):
    """Heap corruption or exhaustion."""


class HeapExhaustedError(SegmentHeapError):
    """No free block large enough (the heap itself is well-formed)."""


class InvalidFreeError(SegmentHeapError):
    """free() of a pointer that is not an allocation of this heap."""


class DoubleFreeError(SegmentHeapError):
    """free() of an allocation that has already been freed."""


class SegmentHeap:
    """A heap living at ``[base, base + size)`` inside a segment."""

    def __init__(self, mem: Mem, base: int, size: int) -> None:
        if size < HEADER_SIZE + MIN_BLOCK:
            raise SegmentHeapError(f"heap of {size} bytes is too small")
        self.mem = mem
        self.base = base
        self.size = size

    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Format the heap (done once, by whoever creates the segment)."""
        first = self.base + HEADER_SIZE
        self.mem.store_u32(self.base, HEAP_MAGIC)
        self.mem.store_u32(self.base + 4, first)
        self.mem.store_u32(first, (self.size - HEADER_SIZE) & ~1)
        self.mem.store_u32(first + 4, 0)

    def is_initialized(self) -> bool:
        return self.mem.load_u32(self.base) == HEAP_MAGIC

    def ensure_initialized(self) -> None:
        if not self.is_initialized():
            self.initialize()

    # ------------------------------------------------------------------

    def alloc(self, nbytes: int) -> int:
        """Allocate *nbytes*; returns the payload's absolute address.

        A zero-byte request is legal and yields the minimum block (so
        distinct allocations keep distinct addresses); a negative
        request is always a caller bug and raises.
        """
        if nbytes < 0:
            raise SegmentHeapError(
                f"negative allocation of {nbytes} bytes"
            )
        sanitizer = _san_state.ACTIVE
        if sanitizer is None:
            return self._alloc(nbytes)
        sanitizer.allocator_enter()
        try:
            payload = self._alloc(nbytes)
            block_size = self.mem.load_u32(payload - BLOCK_HEADER) & ~1
        finally:
            sanitizer.allocator_exit()
        sanitizer.heap_alloc(self, payload, nbytes, block_size)
        return payload

    def _alloc(self, nbytes: int) -> int:
        self._check_magic()
        need = max(_round_up(nbytes) + BLOCK_HEADER, MIN_BLOCK)
        prev = self.base + 4            # address of the link we came from
        block = self.mem.load_u32(prev)
        while block:
            size = self.mem.load_u32(block) & ~1
            next_free = self.mem.load_u32(block + 4)
            if size >= need:
                remainder = size - need
                if remainder >= MIN_BLOCK:
                    # Split: tail stays free.
                    tail = block + need
                    self.mem.store_u32(tail, remainder)
                    self.mem.store_u32(tail + 4, next_free)
                    self.mem.store_u32(prev, tail)
                    self.mem.store_u32(block, need | 1)
                else:
                    self.mem.store_u32(prev, next_free)
                    self.mem.store_u32(block, size | 1)
                return block + BLOCK_HEADER
            prev = block + 4
            block = next_free
        raise HeapExhaustedError(
            f"heap at 0x{self.base:08x} exhausted allocating {nbytes} bytes"
        )

    def free(self, payload: int) -> None:
        """Return an allocation to the heap, coalescing neighbours.

        The pointer is validated against the heap's block tiling first:
        a pointer that was never returned by :meth:`alloc` raises
        :class:`InvalidFreeError` and an already-freed one raises
        :class:`DoubleFreeError` — instead of trusting whatever bytes
        sit at ``payload - 8`` and corrupting the free list.
        """
        sanitizer = _san_state.ACTIVE
        if sanitizer is None:
            self._free(payload)
            return
        sanitizer.allocator_enter()
        try:
            try:
                block_size = self._free(payload)
            except DoubleFreeError as error:
                sanitizer.heap_bad_free(self, payload, "double-free",
                                        str(error))
                raise
            except InvalidFreeError as error:
                sanitizer.heap_bad_free(self, payload, "invalid-free",
                                        str(error))
                raise
        finally:
            sanitizer.allocator_exit()
        sanitizer.heap_free(self, payload, block_size)

    def _free(self, payload: int) -> int:
        self._check_magic()
        block = payload - BLOCK_HEADER
        header = self._validate_block(block, payload)
        if not header & 1:
            raise DoubleFreeError(f"double free at 0x{payload:08x}")
        size = header & ~1
        # Insert into the address-ordered free list.
        prev = self.base + 4
        cursor = self.mem.load_u32(prev)
        while cursor and cursor < block:
            prev = cursor + 4
            cursor = self.mem.load_u32(prev)
        self.mem.store_u32(block, size)
        self.mem.store_u32(block + 4, cursor)
        self.mem.store_u32(prev, block)
        # Coalesce with the successor, then with the predecessor.
        if cursor and block + size == cursor:
            cursor_size = self.mem.load_u32(cursor) & ~1
            self.mem.store_u32(block, size + cursor_size)
            self.mem.store_u32(block + 4, self.mem.load_u32(cursor + 4))
        if prev != self.base + 4:
            prev_block = prev - 4
            prev_size = self.mem.load_u32(prev_block) & ~1
            if prev_block + prev_size == block:
                self.mem.store_u32(prev_block,
                                   prev_size + (self.mem.load_u32(block)
                                                & ~1))
                self.mem.store_u32(prev_block + 4,
                                   self.mem.load_u32(block + 4))
        return size

    def _validate_block(self, block: int, payload: int) -> int:
        """Check *block* starts an actual block of this heap's tiling;
        returns its header word."""
        for start, size, used in self.blocks():
            if start == block:
                return size | (1 if used else 0)
            if start > block:
                break
        raise InvalidFreeError(
            f"free of 0x{payload:08x}, which is not an allocation of "
            f"the heap at 0x{self.base:08x}"
        )

    # ------------------------------------------------------------------

    def free_bytes(self) -> int:
        """Total bytes on the free list (payload + header)."""
        return sum(size for _, size in self.free_blocks())

    def blocks(self) -> Iterator[Tuple[int, int, bool]]:
        """(address, size, used) of every block, walking the tiling.

        The used and free blocks of a well-formed heap tile
        ``[base + 8, base + size)`` exactly; a walk that steps out of
        bounds or hits a zero-size header is corruption."""
        self._check_magic()
        end = self.base + self.size
        block = self.base + HEADER_SIZE
        while block < end:
            header = self.mem.load_u32(block)
            size = header & ~1
            if size < MIN_BLOCK or block + size > end:
                raise SegmentHeapError(
                    f"corrupt block header at 0x{block:08x} "
                    f"(size {size})"
                )
            yield block, size, bool(header & 1)
            block += size

    def free_blocks(self) -> Iterator[Tuple[int, int]]:
        """(address, size) of each free block, address-ordered."""
        self._check_magic()
        block = self.mem.load_u32(self.base + 4)
        guard = 0
        while block:
            guard += 1
            if guard > 1_000_000:
                raise SegmentHeapError("free list cycle")
            size = self.mem.load_u32(block)
            if size & 1:
                raise SegmentHeapError(
                    f"used block 0x{block:08x} on the free list"
                )
            yield block, size
            block = self.mem.load_u32(block + 4)

    def check(self) -> None:
        """Validate free-list invariants (ordering, bounds, no overlap)
        and that the block tiling covers the heap exactly."""
        last_end = self.base + HEADER_SIZE
        for block, size in self.free_blocks():
            if block < last_end:
                raise SegmentHeapError("free list out of order or overlap")
            if block + size > self.base + self.size:
                raise SegmentHeapError("free block beyond heap end")
            last_end = block + size
        cursor = self.base + HEADER_SIZE
        for block, size, _used in self.blocks():
            if block != cursor:
                raise SegmentHeapError(
                    f"tiling gap before 0x{block:08x}"
                )
            cursor = block + size
        if cursor != self.base + self.size:
            raise SegmentHeapError(
                f"tiling stops at 0x{cursor:08x}, before the heap end"
            )

    def _check_magic(self) -> None:
        if self.mem.load_u32(self.base) != HEAP_MAGIC:
            raise SegmentHeapError(
                f"no heap at 0x{self.base:08x} (bad magic)"
            )


class ArenaHeap:
    """K per-core arenas tiling one heap region (repro.smp).

    A single shared free list would make every ``shmalloc`` call a
    cross-core ordering point; instead the region is split into
    ``ncores`` equal arenas (each a self-describing :class:`SegmentHeap`
    — all state stays inside the segment, so any process mapping it
    sees the same arenas). A core allocates from its home arena without
    coordination. Only when the home arena is exhausted does the caller
    take the *fallback lock* — a single global lock, so overflow
    allocations are serialized — and scan the remaining arenas in core
    order 0..K-1. Both the arena split and the fallback scan are pure
    functions of ``(base, size, ncores, core)``, so allocation addresses
    are bit-identical run to run.

    ``free`` dispatches by address: each arena owns a fixed stride of
    the region, so the owning free list is arithmetic, not a search.

    With ``ncores=1`` this degenerates to exactly one
    :class:`SegmentHeap` over the whole region.
    """

    def __init__(self, mem: Mem, base: int, size: int,
                 ncores: int = 1) -> None:
        if ncores < 1:
            raise SegmentHeapError(f"ncores must be >= 1, got {ncores}")
        stride = (size // ncores) & ~(ALIGN - 1)
        if stride < HEADER_SIZE + MIN_BLOCK:
            raise SegmentHeapError(
                f"{size} bytes is too small for {ncores} arenas"
            )
        self.mem = mem
        self.base = base
        self.size = size
        self.ncores = ncores
        self.stride = stride
        self.arenas = [
            SegmentHeap(mem, base + index * stride,
                        stride if index < ncores - 1
                        else size - (ncores - 1) * stride)
            for index in range(ncores)
        ]
        #: times each core overflowed its home arena (took the
        #: fallback lock); introspection only
        self.fallbacks = {core: 0 for core in range(ncores)}

    # ------------------------------------------------------------------

    def initialize(self) -> None:
        for arena in self.arenas:
            arena.initialize()

    def is_initialized(self) -> bool:
        return all(arena.is_initialized() for arena in self.arenas)

    def ensure_initialized(self) -> None:
        for arena in self.arenas:
            arena.ensure_initialized()

    # ------------------------------------------------------------------

    def alloc(self, nbytes: int, core: int = 0) -> int:
        """Allocate *nbytes* for *core*; home arena first, then the
        deterministic fallback scan."""
        home = core % self.ncores
        try:
            return self.arenas[home].alloc(nbytes)
        except HeapExhaustedError:
            pass
        self.fallbacks[home] += 1
        for other in range(self.ncores):
            if other == home:
                continue
            try:
                return self.arenas[other].alloc(nbytes)
            except HeapExhaustedError:
                continue
        raise HeapExhaustedError(
            f"all {self.ncores} arenas at 0x{self.base:08x} exhausted "
            f"allocating {nbytes} bytes"
        )

    def free(self, payload: int) -> None:
        self.arena_of(payload).free(payload)

    def arena_of(self, address: int) -> SegmentHeap:
        """The arena owning *address* (pure address arithmetic)."""
        if not self.base <= address < self.base + self.size:
            raise InvalidFreeError(
                f"0x{address:08x} is outside the arena region "
                f"0x{self.base:08x}-0x{self.base + self.size:08x}"
            )
        index = min((address - self.base) // self.stride, self.ncores - 1)
        return self.arenas[index]

    # ------------------------------------------------------------------

    def free_bytes(self) -> int:
        return sum(arena.free_bytes() for arena in self.arenas)

    def blocks(self) -> Iterator[Tuple[int, int, bool]]:
        for arena in self.arenas:
            for entry in arena.blocks():
                yield entry

    def check(self) -> None:
        for arena in self.arenas:
            arena.check()


def _round_up(nbytes: int) -> int:
    if nbytes == 0:
        nbytes = 1
    return (nbytes + ALIGN - 1) & ~(ALIGN - 1)
